"""System descriptions: the JSON recipe for building a runnable system.

A *system description* names the program file, the optional closing
step, the communication objects and the processes — everything needed
to rebuild a :class:`~repro.runtime.system.System` from scratch.  It is
the lingua franca of every front end: the ``repro search`` CLI takes
one, saved counterexample traces embed one (self-contained replay,
:mod:`repro.counterex.traceio`), and the job service
(:mod:`repro.service.jobs`) persists one per job so a worker process —
possibly on another machine, possibly days later — can reconstruct the
exact system a job talks about.

Errors raise :class:`DescriptionError` (a ``ValueError``): library
callers handle it; the CLI converts it to a clean exit.
"""

from __future__ import annotations

import json
import pathlib

from .closing import ClosingSpec, close_program
from .lang import parse_program
from .runtime import System

__all__ = [
    "SYSTEM_SCHEMA",
    "DescriptionError",
    "description_language",
    "load_description",
    "load_program",
    "program_from_source",
    "program_language",
    "system_from_description",
]

SYSTEM_SCHEMA = """\
System description JSON schema (a verifiable .py program can be passed
directly instead — the Python front end derives this description from
its Queue(...)/spawn(...) prelude; see docs/python_frontend.md):
{
  "program": "path/to/program.rc",   // .rc, .c or .py picks the front end
  "close": {                         // optional: close before running
    "env_params": {"main": ["x"]},
    "env_channels": ["inbox"],
    "env_shared": [],
    "object_bindings": {"worker.inbox": ["jobs"]},
    "optimize": true
  },
  "objects": [
    {"kind": "channel",   "name": "c",   "capacity": 2},
    {"kind": "semaphore", "name": "s",   "initial": 1},
    {"kind": "shared",    "name": "v",   "initial": 0},
    {"kind": "sink",      "name": "out"}
  ],
  "processes": [
    {"name": "p1", "proc": "main", "args": [3, {"object": "c"}]}
  ]
}
"""


class DescriptionError(ValueError):
    """A system description is malformed or references missing pieces."""


#: Program-file suffix -> front-end language.
PROGRAM_LANGUAGES = {".rc": "rc", ".c": "c", ".py": "python"}


def program_language(name: str) -> str:
    """The front-end language a program file name selects.

    Defaults to ``rc`` (names without a recognized suffix — synthetic
    sources, embedded trace payloads from older versions)."""
    suffix = pathlib.PurePath(str(name)).suffix
    return PROGRAM_LANGUAGES.get(suffix, "rc")


def description_language(description: dict) -> str:
    """The front-end language of a system description.

    Prefers the explicit ``language`` key (recorded by the loaders and
    front ends); falls back to the program file's suffix."""
    recorded = description.get("language")
    if recorded:
        return recorded
    return program_language(description.get("program", ""))


def load_program(path: pathlib.Path):
    """Parse the program file at ``path``.

    The suffix picks the front end: ``.rc`` is the mini-language,
    ``.c`` routes through the C front end, ``.py`` through the Python
    front end.  Unknown suffixes are an error naming the extension —
    not a silent guess at a format."""
    path = pathlib.Path(path)
    if path.suffix not in PROGRAM_LANGUAGES:
        supported = ", ".join(sorted(PROGRAM_LANGUAGES))
        raise DescriptionError(
            f"cannot load program {path.name!r}: unknown extension "
            f"{path.suffix or '(none)'!r} (supported: {supported})"
        )
    return program_from_source(path.name, path.read_text(), filename=str(path))


def program_from_source(name: str, text: str, filename: str | None = None):
    """Parse program ``text`` directly; ``name``'s suffix picks the
    front end (``.c`` → C, ``.py`` → Python, anything else → RC —
    the permissive default keeps old embedded trace payloads loading).
    """
    language = program_language(name)
    if language == "c":
        from .lang.cfront import c_to_program

        return c_to_program(text)
    if language == "python":
        from .lang.python import python_to_program

        return python_to_program(text, filename or name)
    return parse_program(text)


def load_description(description_path: pathlib.Path) -> dict:
    """Read a system description file.

    ``.json`` files hold the explicit description; a ``.py`` program is
    its own description — the Python front end derives objects,
    processes and the closing spec from the module prelude.  Other
    extensions are an error naming what was attempted."""
    path = pathlib.Path(description_path)
    if path.suffix == ".py":
        from .lang.python import PyFrontError, description_from_python

        try:
            return description_from_python(
                path.read_text(), path.name, filename=str(path)
            )
        except PyFrontError as err:
            raise DescriptionError(f"bad Python system description: {err}") from err
    if path.suffix and path.suffix != ".json":
        supported = ", ".join(sorted(PROGRAM_LANGUAGES))
        raise DescriptionError(
            f"cannot load system description {path.name!r}: unknown "
            f"extension {path.suffix!r} (expected a .json description or "
            f"a .py program; programs inside descriptions may be {supported})"
        )
    try:
        description = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        raise DescriptionError(
            f"bad JSON system description {path.name!r}: {err}\n\n{SYSTEM_SCHEMA}"
        ) from err
    if isinstance(description, dict):
        description.setdefault("language", program_language(description.get("program", "")))
    return description


def system_from_description(
    description: dict,
    base_dir: pathlib.Path | None,
    program_source: str | None = None,
    tracer=None,
) -> System:
    """Build a :class:`System` from a parsed description dict.

    ``program_source`` (used when replaying a self-contained trace file
    or running a self-contained job) supplies the program text
    directly; otherwise the description's ``program`` path is resolved
    against ``base_dir``.  ``tracer`` records the closing pipeline's
    phase spans.
    """
    if program_source is not None:
        program = program_from_source(description.get("program", ""), program_source)
    else:
        if base_dir is None:
            raise DescriptionError(
                "system description has no embedded program source"
            )
        program = load_program(pathlib.Path(base_dir) / description["program"])

    close_cfg = description.get("close")
    if close_cfg is not None:
        bindings: dict[tuple[str, str], list] = {}
        for key, objects in close_cfg.get("object_bindings", {}).items():
            proc_name, sep, param = str(key).partition(".")
            if not sep or not proc_name or not param:
                raise DescriptionError(
                    f"close.object_bindings keys must look like "
                    f"'proc.param', got {key!r}"
                )
            bindings[(proc_name, param)] = list(objects)
        spec = ClosingSpec.make(
            env_params=close_cfg.get("env_params", {}),
            env_channels=close_cfg.get("env_channels", ()),
            env_shared=close_cfg.get("env_shared", ()),
            object_bindings=bindings,
        )
        closed = close_program(
            program,
            spec,
            optimize=close_cfg.get("optimize", False),
            tracer=tracer,
        )
        system = System(closed.cfgs)
    else:
        system = System(program)

    refs = {}
    for obj in description.get("objects", []):
        kind = obj["kind"]
        name = obj["name"]
        if kind == "channel":
            refs[name] = system.add_channel(name, capacity=obj.get("capacity", 1))
        elif kind == "semaphore":
            refs[name] = system.add_semaphore(name, initial=obj.get("initial", 1))
        elif kind == "shared":
            refs[name] = system.add_shared(name, initial=obj.get("initial", 0))
        elif kind == "sink":
            refs[name] = system.add_env_sink(name)
        else:
            raise DescriptionError(f"unknown object kind {kind!r}")

    for proc in description.get("processes", []):
        proc_args = []
        for arg in proc.get("args", []):
            if isinstance(arg, dict) and "object" in arg:
                ref = refs.get(arg["object"])
                if ref is None:
                    raise DescriptionError(
                        f"process argument references unknown object {arg['object']!r}"
                    )
                proc_args.append(ref)
            else:
                proc_args.append(arg)
        system.add_process(proc["name"], proc["proc"], proc_args)
    return system
