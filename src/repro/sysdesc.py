"""System descriptions: the JSON recipe for building a runnable system.

A *system description* names the program file, the optional closing
step, the communication objects and the processes — everything needed
to rebuild a :class:`~repro.runtime.system.System` from scratch.  It is
the lingua franca of every front end: the ``repro search`` CLI takes
one, saved counterexample traces embed one (self-contained replay,
:mod:`repro.counterex.traceio`), and the job service
(:mod:`repro.service.jobs`) persists one per job so a worker process —
possibly on another machine, possibly days later — can reconstruct the
exact system a job talks about.

Errors raise :class:`DescriptionError` (a ``ValueError``): library
callers handle it; the CLI converts it to a clean exit.
"""

from __future__ import annotations

import json
import pathlib

from .closing import ClosingSpec, close_program
from .lang import parse_program
from .runtime import System

__all__ = [
    "SYSTEM_SCHEMA",
    "DescriptionError",
    "load_description",
    "load_program",
    "program_from_source",
    "system_from_description",
]

SYSTEM_SCHEMA = """\
System description JSON schema:
{
  "program": "path/to/program.rc",
  "close": {                         // optional: close before running
    "env_params": {"main": ["x"]},
    "env_channels": ["inbox"],
    "env_shared": [],
    "optimize": true
  },
  "objects": [
    {"kind": "channel",   "name": "c",   "capacity": 2},
    {"kind": "semaphore", "name": "s",   "initial": 1},
    {"kind": "shared",    "name": "v",   "initial": 0},
    {"kind": "sink",      "name": "out"}
  ],
  "processes": [
    {"name": "p1", "proc": "main", "args": [3, {"object": "c"}]}
  ]
}
"""


class DescriptionError(ValueError):
    """A system description is malformed or references missing pieces."""


def load_program(path: pathlib.Path):
    """Parse the program file at ``path`` (RC source, or C via the
    ``.c`` front end)."""
    text = path.read_text()
    if path.suffix == ".c":
        from .lang.cfront import c_to_program

        return c_to_program(text)
    return parse_program(text)


def program_from_source(name: str, text: str):
    """Parse program ``text`` directly; ``name`` picks the front end
    (a ``.c`` suffix routes through the C front end)."""
    if name.endswith(".c"):
        from .lang.cfront import c_to_program

        return c_to_program(text)
    return parse_program(text)


def load_description(description_path: pathlib.Path) -> dict:
    """Read and JSON-parse a system description file."""
    try:
        return json.loads(pathlib.Path(description_path).read_text())
    except json.JSONDecodeError as err:
        raise DescriptionError(
            f"bad system description: {err}\n\n{SYSTEM_SCHEMA}"
        ) from err


def system_from_description(
    description: dict,
    base_dir: pathlib.Path | None,
    program_source: str | None = None,
    tracer=None,
) -> System:
    """Build a :class:`System` from a parsed description dict.

    ``program_source`` (used when replaying a self-contained trace file
    or running a self-contained job) supplies the program text
    directly; otherwise the description's ``program`` path is resolved
    against ``base_dir``.  ``tracer`` records the closing pipeline's
    phase spans.
    """
    if program_source is not None:
        program = program_from_source(description.get("program", ""), program_source)
    else:
        if base_dir is None:
            raise DescriptionError(
                "system description has no embedded program source"
            )
        program = load_program(pathlib.Path(base_dir) / description["program"])

    close_cfg = description.get("close")
    if close_cfg is not None:
        spec = ClosingSpec.make(
            env_params=close_cfg.get("env_params", {}),
            env_channels=close_cfg.get("env_channels", ()),
            env_shared=close_cfg.get("env_shared", ()),
        )
        closed = close_program(
            program,
            spec,
            optimize=close_cfg.get("optimize", False),
            tracer=tracer,
        )
        system = System(closed.cfgs)
    else:
        system = System(program)

    refs = {}
    for obj in description.get("objects", []):
        kind = obj["kind"]
        name = obj["name"]
        if kind == "channel":
            refs[name] = system.add_channel(name, capacity=obj.get("capacity", 1))
        elif kind == "semaphore":
            refs[name] = system.add_semaphore(name, initial=obj.get("initial", 1))
        elif kind == "shared":
            refs[name] = system.add_shared(name, initial=obj.get("initial", 0))
        elif kind == "sink":
            refs[name] = system.add_env_sink(name)
        else:
            raise DescriptionError(f"unknown object kind {kind!r}")

    for proc in description.get("processes", []):
        proc_args = []
        for arg in proc.get("args", []):
            if isinstance(arg, dict) and "object" in arg:
                ref = refs.get(arg["object"])
                if ref is None:
                    raise DescriptionError(
                        f"process argument references unknown object {arg['object']!r}"
                    )
                proc_args.append(ref)
            else:
                proc_args.append(arg)
        system.add_process(proc["name"], proc["proc"], proc_args)
    return system
