"""The :class:`ControlFlowGraph` container and graph utilities."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator

from .nodes import Arc, CfgNode, Guard, NodeKind


class CfgError(Exception):
    """Structural misuse of a control-flow graph."""


@dataclass
class ControlFlowGraph:
    """The control-flow graph ``G_j = (N_j, A_j)`` of one procedure.

    Invariants (checked by :meth:`validate`):

    * exactly one START node, with no incoming arcs;
    * RETURN/EXIT nodes have no outgoing arcs;
    * every other node has at least one outgoing arc;
    * out-arc guards are consistent with the node kind (a single
      AlwaysGuard for straight-line nodes; Bool/Case/Default guards for
      COND; TossGuard for TOSS).
    """

    proc_name: str
    params: tuple[str, ...] = ()
    nodes: dict[int, CfgNode] = field(default_factory=dict)
    arcs: list[Arc] = field(default_factory=list)
    start_id: int = -1
    _next_id: int = 0
    _succ: dict[int, list[Arc]] = field(default_factory=dict)
    _pred: dict[int, list[Arc]] = field(default_factory=dict)

    # -- construction --------------------------------------------------------

    def new_node(self, kind: NodeKind, **payload) -> CfgNode:
        node = CfgNode(id=self._next_id, kind=kind, **payload)
        self._next_id += 1
        self.nodes[node.id] = node
        self._succ[node.id] = []
        self._pred[node.id] = []
        if kind is NodeKind.START:
            if self.start_id != -1:
                raise CfgError(f"{self.proc_name}: duplicate START node")
            self.start_id = node.id
        return node

    def add_arc(self, src: int, dst: int, guard: Guard) -> Arc:
        if src not in self.nodes or dst not in self.nodes:
            raise CfgError(f"{self.proc_name}: arc endpoints must be existing nodes")
        arc = Arc(src, dst, guard)
        self.arcs.append(arc)
        self._succ[src].append(arc)
        self._pred[dst].append(arc)
        return arc

    # -- queries ---------------------------------------------------------------

    @property
    def start(self) -> CfgNode:
        if self.start_id == -1:
            raise CfgError(f"{self.proc_name}: graph has no START node")
        return self.nodes[self.start_id]

    def successors(self, node_id: int) -> list[Arc]:
        return self._succ[node_id]

    def predecessors(self, node_id: int) -> list[Arc]:
        return self._pred[node_id]

    def node_count(self) -> int:
        return len(self.nodes)

    def arc_count(self) -> int:
        return len(self.arcs)

    def nodes_of_kind(self, *kinds: NodeKind) -> list[CfgNode]:
        wanted = set(kinds)
        return [node for node in self.nodes.values() if node.kind in wanted]

    def out_degree(self, node_id: int) -> int:
        return len(self._succ[node_id])

    def max_out_degree(self) -> int:
        """The static degree of branching (Section 1's metric)."""
        if not self.nodes:
            return 0
        return max(len(arcs) for arcs in self._succ.values())

    def reachable_from_start(self) -> set[int]:
        """Node ids reachable from the START node."""
        seen: set[int] = set()
        stack = [self.start_id]
        while stack:
            node_id = stack.pop()
            if node_id in seen:
                continue
            seen.add(node_id)
            for arc in self._succ[node_id]:
                if arc.dst not in seen:
                    stack.append(arc.dst)
        return seen

    def prune_unreachable(self) -> int:
        """Drop nodes unreachable from START; returns how many were removed."""
        reachable = self.reachable_from_start()
        dead = [node_id for node_id in self.nodes if node_id not in reachable]
        for node_id in dead:
            del self.nodes[node_id]
            del self._succ[node_id]
            del self._pred[node_id]
        if dead:
            dead_set = set(dead)
            self.arcs = [
                arc for arc in self.arcs if arc.src not in dead_set and arc.dst not in dead_set
            ]
            for node_id in self.nodes:
                self._succ[node_id] = [a for a in self._succ[node_id] if a.dst not in dead_set]
                self._pred[node_id] = [a for a in self._pred[node_id] if a.src not in dead_set]
        return len(dead)

    # -- validation --------------------------------------------------------------

    def validate(self) -> None:
        """Check the structural invariants; raise :class:`CfgError` if broken."""
        from .nodes import AlwaysGuard, BoolGuard, CaseGuard, DefaultGuard, TossGuard

        if self.start_id == -1:
            raise CfgError(f"{self.proc_name}: no START node")
        if self._pred[self.start_id]:
            raise CfgError(f"{self.proc_name}: START node has incoming arcs")
        for node in self.nodes.values():
            out = self._succ[node.id]
            if node.kind in (NodeKind.RETURN, NodeKind.EXIT):
                if out:
                    raise CfgError(
                        f"{self.proc_name}: termination node {node.id} has outgoing arcs"
                    )
                continue
            if not out:
                raise CfgError(f"{self.proc_name}: node {node.id} ({node.kind}) has no out-arcs")
            if node.kind in (NodeKind.START, NodeKind.ASSIGN, NodeKind.CALL):
                if len(out) != 1 or not isinstance(out[0].guard, AlwaysGuard):
                    raise CfgError(
                        f"{self.proc_name}: node {node.id} ({node.kind}) must have a "
                        "single unconditional out-arc"
                    )
            elif node.kind is NodeKind.COND:
                guards = [arc.guard for arc in out]
                if all(isinstance(g, BoolGuard) for g in guards):
                    expected = {g.expected for g in guards}  # type: ignore[union-attr]
                    if expected != {True, False}:
                        raise CfgError(
                            f"{self.proc_name}: COND node {node.id} must cover both "
                            "true and false branches"
                        )
                elif all(isinstance(g, (CaseGuard, DefaultGuard)) for g in guards):
                    defaults = [g for g in guards if isinstance(g, DefaultGuard)]
                    if len(defaults) != 1:
                        raise CfgError(
                            f"{self.proc_name}: switch COND node {node.id} needs exactly "
                            "one default arc"
                        )
                    values = [g.value for g in guards if isinstance(g, CaseGuard)]
                    if len(values) != len(set(values)):
                        raise CfgError(
                            f"{self.proc_name}: switch COND node {node.id} has duplicate "
                            "case guards"
                        )
                else:
                    raise CfgError(
                        f"{self.proc_name}: COND node {node.id} has inconsistent guards"
                    )
            elif node.kind is NodeKind.TOSS:
                guards = [arc.guard for arc in out]
                if not all(isinstance(g, TossGuard) for g in guards):
                    raise CfgError(
                        f"{self.proc_name}: TOSS node {node.id} must have toss guards"
                    )
                values = sorted(g.value for g in guards)  # type: ignore[union-attr]
                if values != list(range(node.bound + 1)):
                    raise CfgError(
                        f"{self.proc_name}: TOSS node {node.id} guards must cover "
                        f"0..{node.bound}, got {values}"
                    )

    # -- iteration -----------------------------------------------------------------

    def __iter__(self) -> Iterator[CfgNode]:
        return iter(self.nodes.values())


def copy_cfg(cfg: ControlFlowGraph) -> ControlFlowGraph:
    """A structural copy (fresh node objects, same ids)."""
    from dataclasses import replace

    out = ControlFlowGraph(proc_name=cfg.proc_name, params=cfg.params)
    out.start_id = cfg.start_id
    out._next_id = cfg._next_id
    for node_id, node in cfg.nodes.items():
        out.nodes[node_id] = replace(node)
        out._succ[node_id] = []
        out._pred[node_id] = []
    for arc in cfg.arcs:
        out.add_arc(arc.src, arc.dst, arc.guard)
    return out
