"""Build control-flow graphs from core-form RC procedures.

The builder uses the classic "dangling arcs" scheme: translating a
statement list yields the set of loose ends ``(node_id, guard)`` to be
wired to whatever comes next.  ``break``/``continue`` are resolved
against an enclosing-loop stack.  A synthetic ``return`` is appended when
control can fall off the end of the body, so every path ends in a
termination statement (as the paper's model requires).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from ..lang.normalize import normalize_program
from .graph import CfgError, ControlFlowGraph
from .nodes import (
    ALWAYS,
    BoolGuard,
    CaseGuard,
    DefaultGuard,
    Guard,
    NodeKind,
)

#: A dangling out-edge: the source node and the guard its arc must carry.
Dangling = tuple[int, Guard]


@dataclass
class _LoopContext:
    """Records where break/continue inside the current loop must jump."""

    head_id: int
    breaks: list[Dangling]


class _Builder:
    def __init__(self, proc: ast.Proc):
        self._proc = proc
        self._cfg = ControlFlowGraph(proc_name=proc.name, params=proc.params)
        self._loops: list[_LoopContext] = []

    def build(self) -> ControlFlowGraph:
        start = self._cfg.new_node(NodeKind.START, location=self._proc.location)
        dangling = self._build_block(self._proc.body, [(start.id, ALWAYS)])
        if dangling:
            implicit = self._cfg.new_node(NodeKind.RETURN, location=self._proc.location)
            self._connect(dangling, implicit.id)
        self._cfg.prune_unreachable()
        self._cfg.validate()
        return self._cfg

    # -- wiring ----------------------------------------------------------------

    def _connect(self, dangling: list[Dangling], target: int) -> None:
        for src, guard in dangling:
            self._cfg.add_arc(src, target, guard)

    def _build_block(self, stmts: tuple[ast.Stmt, ...], incoming: list[Dangling]) -> list[Dangling]:
        current = incoming
        for stmt in stmts:
            if not current:
                # The rest of the block is unreachable (after return/break
                # etc.); skip building dead nodes.
                break
            current = self._build_stmt(stmt, current)
        return current

    # -- statements ---------------------------------------------------------------

    def _build_stmt(self, stmt: ast.Stmt, incoming: list[Dangling]) -> list[Dangling]:
        if isinstance(stmt, ast.VarDecl):
            node = self._cfg.new_node(
                NodeKind.ASSIGN,
                location=stmt.location,
                target=ast.Name(stmt.name, stmt.location),
                value=stmt.init if stmt.init is not None else (
                    None if stmt.array_size is not None else ast.IntLit(0, stmt.location)
                ),
                array_size=stmt.array_size,
            )
            self._connect(incoming, node.id)
            return [(node.id, ALWAYS)]

        if isinstance(stmt, ast.Assign):
            node = self._cfg.new_node(
                NodeKind.ASSIGN, location=stmt.location, target=stmt.target, value=stmt.value
            )
            self._connect(incoming, node.id)
            return [(node.id, ALWAYS)]

        if isinstance(stmt, ast.CallStmt):
            node = self._cfg.new_node(
                NodeKind.CALL,
                location=stmt.location,
                callee=stmt.callee,
                args=stmt.args,
                result=stmt.result,
            )
            self._connect(incoming, node.id)
            return [(node.id, ALWAYS)]

        if isinstance(stmt, ast.If):
            cond = self._cfg.new_node(NodeKind.COND, location=stmt.location, expr=stmt.cond)
            self._connect(incoming, cond.id)
            then_out = self._build_block(stmt.then_body, [(cond.id, BoolGuard(True))])
            else_out = self._build_block(stmt.else_body, [(cond.id, BoolGuard(False))])
            return then_out + else_out

        if isinstance(stmt, ast.While):
            cond = self._cfg.new_node(NodeKind.COND, location=stmt.location, expr=stmt.cond)
            self._connect(incoming, cond.id)
            context = _LoopContext(head_id=cond.id, breaks=[])
            self._loops.append(context)
            body_out = self._build_block(stmt.body, [(cond.id, BoolGuard(True))])
            self._loops.pop()
            self._connect(body_out, cond.id)
            return [(cond.id, BoolGuard(False))] + context.breaks

        if isinstance(stmt, ast.Switch):
            cond = self._cfg.new_node(NodeKind.COND, location=stmt.location, expr=stmt.subject)
            self._connect(incoming, cond.id)
            out: list[Dangling] = []
            for case in stmt.cases:
                out += self._build_block(case.body, [(cond.id, CaseGuard(case.value))])
            out += self._build_block(stmt.default, [(cond.id, DefaultGuard())])
            return out

        if isinstance(stmt, ast.Return):
            node = self._cfg.new_node(NodeKind.RETURN, location=stmt.location, value=stmt.value)
            self._connect(incoming, node.id)
            return []

        if isinstance(stmt, ast.Exit):
            node = self._cfg.new_node(NodeKind.EXIT, location=stmt.location)
            self._connect(incoming, node.id)
            return []

        if isinstance(stmt, ast.Break):
            if not self._loops:
                raise CfgError(f"{self._proc.name}: 'break' outside of a loop")
            self._loops[-1].breaks.extend(incoming)
            return []

        if isinstance(stmt, ast.Continue):
            if not self._loops:
                raise CfgError(f"{self._proc.name}: 'continue' outside of a loop")
            self._connect(incoming, self._loops[-1].head_id)
            return []

        if isinstance(stmt, ast.Skip):
            # skip is pure control; it needs no node of its own.
            return incoming

        if isinstance(stmt, ast.For):
            raise CfgError(
                f"{self._proc.name}: 'for' must be desugared before CFG construction "
                "(run lang.normalize first)"
            )

        raise CfgError(f"{self._proc.name}: unknown statement {type(stmt).__name__}")


def build_cfg(proc: ast.Proc) -> ControlFlowGraph:
    """Build the CFG of one core-form procedure."""
    return _Builder(proc).build()


def build_cfgs(program: ast.Program, normalized: bool = False) -> dict[str, ControlFlowGraph]:
    """Build CFGs for every procedure of ``program``.

    Unless ``normalized`` is true the program is first normalized to core
    form (see :mod:`repro.lang.normalize`).
    """
    if not normalized:
        program = normalize_program(program)
    return {name: build_cfg(proc) for name, proc in program.procs.items()}
