"""Graphviz (DOT) export of control-flow graphs.

Handy for eyeballing transformations — the figures_2_and_3 example dumps
the before/after graphs from the paper in this format.
"""

from __future__ import annotations

from .graph import ControlFlowGraph
from .nodes import NodeKind

_SHAPES = {
    NodeKind.START: "circle",
    NodeKind.ASSIGN: "box",
    NodeKind.COND: "diamond",
    NodeKind.CALL: "box",
    NodeKind.RETURN: "doublecircle",
    NodeKind.EXIT: "doublecircle",
    NodeKind.TOSS: "diamond",
}


def _escape(text: str) -> str:
    return text.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(cfg: ControlFlowGraph, highlight: set[int] | None = None) -> str:
    """Render ``cfg`` as a DOT digraph.

    ``highlight`` node ids are drawn filled (the examples use it to show
    which nodes the closing algorithm marked).
    """
    highlight = highlight or set()
    lines = [f'digraph "{_escape(cfg.proc_name)}" {{']
    lines.append("    node [fontname=monospace];")
    for node in cfg.nodes.values():
        shape = _SHAPES[node.kind]
        style = ' style=filled fillcolor="lightblue"' if node.id in highlight else ""
        label = _escape(f"{node.id}: {node.describe()}")
        lines.append(f'    n{node.id} [shape={shape} label="{label}"{style}];')
    for arc in cfg.arcs:
        label = arc.guard.describe()
        attr = "" if label == "always" else f' [label="{_escape(label)}"]'
        lines.append(f"    n{arc.src} -> n{arc.dst}{attr};")
    lines.append("}")
    return "\n".join(lines) + "\n"
