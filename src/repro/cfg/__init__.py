"""Control-flow graphs: the ``G_j = (N_j, A_j)`` representation of
Section 4, plus construction from RC ASTs and DOT export."""

from .builder import build_cfg, build_cfgs
from .dot import to_dot
from .graph import CfgError, ControlFlowGraph, copy_cfg
from .nodes import (
    ALWAYS,
    AlwaysGuard,
    Arc,
    BoolGuard,
    CaseGuard,
    CfgNode,
    DefaultGuard,
    Guard,
    NodeKind,
    TossGuard,
)

__all__ = [
    "ALWAYS",
    "AlwaysGuard",
    "Arc",
    "BoolGuard",
    "CaseGuard",
    "CfgError",
    "CfgNode",
    "ControlFlowGraph",
    "DefaultGuard",
    "Guard",
    "NodeKind",
    "TossGuard",
    "build_cfg",
    "build_cfgs",
    "copy_cfg",
    "to_dot",
]
