"""Control-flow graph node and arc definitions.

A procedure ``p_j`` is represented by ``G_j = (N_j, A_j)`` exactly as in
Section 4 of the paper: nodes are the program statements; each arc is
labelled with a boolean guard; for every node the guards on its out-arcs
are mutually exclusive and their disjunction is a tautology.

Node kinds map onto the paper's four statement types:

* ``ASSIGN``   — assignment statements (including variable declarations,
  which initialise their variable);
* ``COND``     — conditional statements (``if``/``while``/``switch``
  heads, all lowered to a guard expression with labelled out-arcs);
* ``CALL``     — procedure-call statements (including the built-in
  visible operations: ``send``, ``recv``, ``sem_p``, ..., ``VS_assert``);
* ``RETURN`` / ``EXIT`` — termination statements;
* ``START``    — the unique start node (uses and defines nothing);
* ``TOSS``     — a conditional testing ``VS_toss(k)``, the node kind
  introduced by Step 4 of the closing algorithm.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from ..lang import ast
from ..lang.errors import SYNTHETIC, SourceLocation


class NodeKind(enum.Enum):
    """The statement kind a CFG node represents."""
    START = "start"
    ASSIGN = "assign"
    COND = "cond"
    CALL = "call"
    RETURN = "return"
    EXIT = "exit"
    TOSS = "toss"


# ---------------------------------------------------------------------------
# Arc guards
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Guard:
    """Base class for arc labels."""

    def describe(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class AlwaysGuard(Guard):
    """The trivially-true label on the single out-arc of non-branching nodes."""

    def describe(self) -> str:
        return "always"


@dataclass(frozen=True, slots=True)
class BoolGuard(Guard):
    """Branch of a two-way conditional: taken when the node's expression
    evaluates to ``expected``."""

    expected: bool

    def describe(self) -> str:
        return "true" if self.expected else "false"


@dataclass(frozen=True, slots=True)
class CaseGuard(Guard):
    """Branch of a switch: taken when the subject equals ``value``."""

    value: int | str

    def describe(self) -> str:
        return f"case {self.value!r}"


@dataclass(frozen=True, slots=True)
class DefaultGuard(Guard):
    """The default branch of a switch (no case label matched)."""

    def describe(self) -> str:
        return "default"


@dataclass(frozen=True, slots=True)
class TossGuard(Guard):
    """Branch of a TOSS node: taken when ``VS_toss`` returned ``value``."""

    value: int

    def describe(self) -> str:
        return f"toss == {self.value}"


ALWAYS = AlwaysGuard()


# ---------------------------------------------------------------------------
# Nodes and arcs
# ---------------------------------------------------------------------------


@dataclass(slots=True)
class CfgNode:
    """One statement of a procedure, as a CFG node.

    The payload fields used depend on ``kind``:

    ========  =====================================================
    kind      payload
    ========  =====================================================
    START     —
    ASSIGN    ``target`` (lvalue expr), ``value`` (expr) or
              ``array_size`` for array declarations
    COND      ``expr`` (the guard subject)
    CALL      ``callee``, ``args`` (atom exprs), ``result`` (lvalue
              or None)
    RETURN    ``value`` (expr or None)
    EXIT      —
    TOSS      ``bound`` (the ``n`` of ``VS_toss(n)``)
    ========  =====================================================
    """

    id: int
    kind: NodeKind
    location: SourceLocation = SYNTHETIC
    target: ast.Expr | None = None
    value: ast.Expr | None = None
    array_size: int | None = None
    expr: ast.Expr | None = None
    callee: str | None = None
    args: tuple[ast.Expr, ...] = ()
    result: ast.Expr | None = None
    bound: int | None = None

    def describe(self) -> str:
        """A one-line human-readable rendering (used by dot export/tests)."""
        from ..lang.pretty import pretty_expr

        if self.kind is NodeKind.START:
            return "start"
        if self.kind is NodeKind.ASSIGN:
            if self.array_size is not None:
                return f"{pretty_expr(self.target)} = new_array({self.array_size})"
            return f"{pretty_expr(self.target)} = {pretty_expr(self.value)}"
        if self.kind is NodeKind.COND:
            return f"cond {pretty_expr(self.expr)}"
        if self.kind is NodeKind.CALL:
            args = ", ".join(pretty_expr(arg) for arg in self.args)
            call = f"{self.callee}({args})"
            if self.result is not None:
                return f"{pretty_expr(self.result)} = {call}"
            return call
        if self.kind is NodeKind.RETURN:
            if self.value is not None:
                return f"return {pretty_expr(self.value)}"
            return "return"
        if self.kind is NodeKind.EXIT:
            return "exit"
        if self.kind is NodeKind.TOSS:
            return f"cond VS_toss({self.bound})"
        raise AssertionError(f"unknown node kind {self.kind}")


@dataclass(frozen=True, slots=True)
class Arc:
    """A control-flow arc ``src -> dst`` labelled with ``guard``."""

    src: int
    dst: int
    guard: Guard

    def describe(self) -> str:
        return f"{self.src} -[{self.guard.describe()}]-> {self.dst}"
