"""Static analyses: node accesses, may-alias (Andersen), define-use
graphs (reaching definitions).  These feed the closing algorithm of
:mod:`repro.closing` and the partial-order reduction of
:mod:`repro.verisoft`."""

from .accesses import Definition, NodeAccess, node_access
from .alias import AliasAnalysis, ObjLoc, PointsToResult, VarLoc, analyze_aliases
from .defuse import DefUseArc, DefUseGraph, compute_defuse

__all__ = [
    "AliasAnalysis",
    "DefUseArc",
    "DefUseGraph",
    "Definition",
    "NodeAccess",
    "ObjLoc",
    "PointsToResult",
    "VarLoc",
    "analyze_aliases",
    "compute_defuse",
    "node_access",
]
