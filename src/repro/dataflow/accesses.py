"""Per-node *use* and *define* sets.

Section 4 of the paper: "a variable v is **used** in node n if the value
of v may be required during some execution of the statement corresponding
to n", and "**defined** in n if the value of v may be modified".  We
compute these at variable granularity:

* writing ``a[i]`` or ``r.f`` is a *weak* definition of ``a``/``r`` (some
  part of the variable may change) and uses ``i``;
* writing ``*p`` uses ``p`` and weakly defines every variable ``p`` may
  point to (supplied by the may-alias analysis);
* a direct ``x = e`` is a *strong* definition (it kills previous
  definitions of ``x`` in the reaching-definitions dataflow);
* passing ``&x`` to a user procedure both *uses* and *weakly defines*
  ``x`` (the callee may read or write through the pointer).

The paper assumes every assignment defines exactly one variable per
execution; weak/strong is the static reflection of that (a ``*p = e``
writes one location dynamically but several are statically possible).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.nodes import CfgNode, NodeKind
from ..lang import ast
from ..runtime.ops import BUILTIN_OPERATIONS


@dataclass(frozen=True, slots=True)
class Definition:
    """A definition of ``var`` at some node; ``strong`` kills earlier defs."""

    var: str
    strong: bool


@dataclass(frozen=True, slots=True)
class NodeAccess:
    """The use/def sets of one CFG node."""

    uses: frozenset[str]
    defs: tuple[Definition, ...]

    def defined_vars(self) -> set[str]:
        return {definition.var for definition in self.defs}


def _expr_uses(expr: ast.Expr | None) -> set[str]:
    if expr is None:
        return set()
    return ast.expr_names(expr)


def _lvalue_access(target: ast.Expr, points_to: dict[str, set[str]]) -> tuple[set[str], list[Definition]]:
    """uses and defs of writing through lvalue ``target``.

    ``points_to`` maps pointer variable names (within this procedure) to
    the local variables they may reference; pointers that may reach
    unknown/non-local storage should already be reflected there by the
    caller (see :mod:`repro.dataflow.alias`).
    """
    if isinstance(target, ast.Name):
        return set(), [Definition(target.ident, strong=True)]
    if isinstance(target, ast.Index):
        base_uses, base_defs = _lvalue_access(target.base, points_to)
        weak = [Definition(d.var, strong=False) for d in base_defs]
        uses = base_uses | _expr_uses(target.index)
        # Reading parts of the base may be needed to locate the element.
        uses |= {d.var for d in base_defs}
        return uses, weak
    if isinstance(target, ast.Field):
        base_uses, base_defs = _lvalue_access(target.base, points_to)
        weak = [Definition(d.var, strong=False) for d in base_defs]
        uses = base_uses | {d.var for d in base_defs}
        return uses, weak
    if isinstance(target, ast.Unary) and target.op == "*":
        uses = _expr_uses(target.operand)
        pointer_names = ast.expr_names(target.operand)
        targets: set[str] = set()
        for name in pointer_names:
            targets |= points_to.get(name, set())
        weak = [Definition(var, strong=False) for var in sorted(targets)]
        return uses, weak
    raise ValueError(f"invalid lvalue {type(target).__name__}")


def node_access(node: CfgNode, points_to: dict[str, set[str]] | None = None) -> NodeAccess:
    """Compute the :class:`NodeAccess` of ``node``.

    ``points_to`` is the procedure-local slice of the may-alias result;
    when omitted, dereferencing writes define nothing locally (callers
    doing real analysis must supply it).
    """
    points_to = points_to or {}

    if node.kind in (NodeKind.START, NodeKind.EXIT, NodeKind.TOSS):
        # Start nodes use and define nothing (paper assumption);
        # termination statements define nothing; TOSS tests a fresh
        # nondeterministic value only.
        return NodeAccess(frozenset(), ())

    if node.kind is NodeKind.ASSIGN:
        if node.array_size is not None:
            __, defs = _lvalue_access(node.target, points_to)
            return NodeAccess(frozenset(), tuple(defs))
        target_uses, defs = _lvalue_access(node.target, points_to)
        uses = target_uses | _expr_uses(node.value)
        return NodeAccess(frozenset(uses), tuple(defs))

    if node.kind is NodeKind.COND:
        return NodeAccess(frozenset(_expr_uses(node.expr)), ())

    if node.kind is NodeKind.RETURN:
        return NodeAccess(frozenset(_expr_uses(node.value)), ())

    if node.kind is NodeKind.CALL:
        uses: set[str] = set()
        defs: list[Definition] = []
        is_builtin = node.callee in BUILTIN_OPERATIONS
        for arg in node.args:
            if isinstance(arg, ast.Unary) and arg.op == "&":
                # Address-of argument: the callee may read or write the
                # pointed-to variable.  Built-in operations never do.
                inner = ast.expr_names(arg.operand)
                uses |= inner
                if not is_builtin:
                    defs.extend(Definition(var, strong=False) for var in sorted(inner))
            else:
                uses |= _expr_uses(arg)
                if not is_builtin and isinstance(arg, ast.Name):
                    # A pointer-valued variable argument: the callee may
                    # write through it into whatever it points to.
                    pointees = points_to.get(arg.ident, set())
                    defs.extend(Definition(var, strong=False) for var in sorted(pointees))
        if node.result is not None:
            result_uses, result_defs = _lvalue_access(node.result, points_to)
            uses |= result_uses
            defs.extend(result_defs)
        return NodeAccess(frozenset(uses), tuple(defs))

    raise ValueError(f"unknown node kind {node.kind}")
