"""Backward liveness analysis over control-flow graphs.

Used by the optional dead-store-elimination pass
(:mod:`repro.closing.dce`): closing erases the *uses* of
environment-dependent data, which often leaves behind assignments (and
declarations) whose values can no longer be observed.

A variable is live at a node if some path from the node reaches a use of
it that is not preceded by a *strong* definition.  Weak definitions
(through pointers, into containers, by callees via escaped pointers) do
not kill, and any variable whose address is taken is conservatively kept
live everywhere (a pointer access could observe it).
"""

from __future__ import annotations

from collections import deque

from ..cfg.graph import ControlFlowGraph
from ..lang import ast
from .accesses import node_access


def address_taken_vars(cfg: ControlFlowGraph) -> set[str]:
    """Variables whose address is taken anywhere in the procedure."""
    taken: set[str] = set()

    def scan(expr: ast.Expr | None) -> None:
        if expr is None:
            return
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Unary) and node.op == "&":
                base = node.operand
                while isinstance(base, (ast.Index, ast.Field)):
                    base = base.base
                if isinstance(base, ast.Name):
                    taken.add(base.ident)

    for node in cfg:
        scan(node.target)
        scan(node.value)
        scan(node.expr)
        scan(node.result)
        for arg in node.args:
            scan(arg)
    return taken


class LivenessResult:
    """Live-variable sets at node entry and exit."""

    def __init__(
        self,
        live_in: dict[int, frozenset[str]],
        live_out: dict[int, frozenset[str]],
        pinned: frozenset[str],
    ):
        self.live_in = live_in
        self.live_out = live_out
        #: Variables kept live everywhere (address taken).
        self.pinned = pinned

    def is_dead_after(self, node_id: int, var: str) -> bool:
        return var not in self.live_out[node_id] and var not in self.pinned


def compute_liveness(
    cfg: ControlFlowGraph, points_to: dict[str, set[str]] | None = None
) -> LivenessResult:
    """Standard backward may-liveness with weak defs not killing."""
    points_to = points_to or {}
    pinned = frozenset(address_taken_vars(cfg))

    uses: dict[int, frozenset[str]] = {}
    kills: dict[int, frozenset[str]] = {}
    for node in cfg:
        access = node_access(node, points_to)
        uses[node.id] = access.uses
        kills[node.id] = frozenset(
            d.var for d in access.defs if d.strong
        )

    live_in: dict[int, set[str]] = {n: set() for n in cfg.nodes}
    live_out: dict[int, set[str]] = {n: set() for n in cfg.nodes}
    worklist: deque[int] = deque(cfg.nodes)
    queued = set(cfg.nodes)
    while worklist:
        node_id = worklist.popleft()
        queued.discard(node_id)
        out: set[str] = set()
        for arc in cfg.successors(node_id):
            out |= live_in[arc.dst]
        live_out[node_id] = out
        new_in = uses[node_id] | (out - kills[node_id])
        if new_in != live_in[node_id]:
            live_in[node_id] = new_in
            for arc in cfg.predecessors(node_id):
                if arc.src not in queued:
                    queued.add(arc.src)
                    worklist.append(arc.src)

    return LivenessResult(
        {n: frozenset(s) for n, s in live_in.items()},
        {n: frozenset(s) for n, s in live_out.items()},
        pinned,
    )
