"""Interprocedural may-alias (points-to) analysis, Andersen style.

Section 4 of the paper requires define-use computation, which "relies on
a (conservative) solution to the aliasing problem" [CWZ90, Lan91, Deu94,
Ruf95].  This module provides a flow-insensitive, context-insensitive,
inclusion-based (Andersen) analysis over the whole program.

Two kinds of abstract locations are tracked in one constraint system:

* :class:`VarLoc` ``(proc, var)`` — a local variable or parameter of one
  procedure (RC has no globals; processes share data only through
  communication objects);
* :class:`ObjLoc` ``name`` — a communication object.  Object *references*
  flow like pointers (``c = channel('ctl'); send(c, v)``), and values
  *transmitted through* an object (``send(ch, p)`` / ``recv(ch)``) flow
  through the object's location, so pointers mailed between processes
  are tracked soundly.

Containers are collapsed: an array/record variable is one location, and
storing into ``a[i]`` / ``r.f`` adds to the points-to set of ``a`` / ``r``.

The solver is the textbook worklist algorithm with complex constraints
(loads/stores through pointers re-evaluated as points-to sets grow).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import ControlFlowGraph
from ..cfg.nodes import CfgNode, NodeKind
from ..lang import ast
from ..runtime.ops import BUILTIN_OPERATIONS


@dataclass(frozen=True, slots=True)
class VarLoc:
    proc: str
    var: str

    def __repr__(self) -> str:
        return f"{self.proc}::{self.var}"


@dataclass(frozen=True, slots=True)
class ObjLoc:
    name: str

    def __repr__(self) -> str:
        return f"obj::{self.name}"


Loc = VarLoc | ObjLoc


class PointsToResult:
    """The solved points-to relation."""

    def __init__(self, pts: dict[Loc, set[Loc]], object_names: set[str]):
        self._pts = pts
        self.object_names = object_names

    def points_to(self, loc: Loc) -> set[Loc]:
        return self._pts.get(loc, set())

    def var_points_to(self, proc: str, var: str) -> set[Loc]:
        return self.points_to(VarLoc(proc, var))

    def local_pointer_map(self, proc: str) -> dict[str, set[str]]:
        """For each variable of ``proc``: the *local* variables it may
        point to (the slice :func:`repro.dataflow.accesses.node_access`
        needs for ``*p = e`` defs)."""
        out: dict[str, set[str]] = {}
        for loc, targets in self._pts.items():
            if isinstance(loc, VarLoc) and loc.proc == proc:
                local = {
                    t.var for t in targets if isinstance(t, VarLoc) and t.proc == proc
                }
                if local:
                    out[loc.var] = local
        return out

    def nonlocal_pointees(self, proc: str, var: str) -> set[VarLoc]:
        """Locations *outside* ``proc`` that ``var`` may point to —
        writes through such pointers escape the procedure."""
        return {
            t
            for t in self.var_points_to(proc, var)
            if isinstance(t, VarLoc) and t.proc != proc
        }

    def objects_of(self, proc: str, expr: ast.Expr) -> set[str] | None:
        """Communication objects an operation's object argument may
        denote.  Returns ``None`` for "unknown — could be any object"."""
        if isinstance(expr, ast.StrLit):
            return {expr.value}
        if isinstance(expr, ast.Name):
            pts = self.var_points_to(proc, expr.ident)
            objects = {t.name for t in pts if isinstance(t, ObjLoc)}
            if objects:
                return objects
            return None
        return None


class _Solver:
    """Inclusion-constraint solver."""

    def __init__(self):
        self.pts: dict[Loc, set[Loc]] = {}
        # subset edges: copy constraints src ⊆ dst
        self.edges: dict[Loc, set[Loc]] = {}
        # complex constraints, re-run when pts(p) grows:
        self.load_from: dict[Loc, set[Loc]] = {}  # dst ⊇ pts(l) for l in pts(p)
        self.store_to: dict[Loc, set[Loc]] = {}  # pts(l) ⊇ pts(src) for l in pts(p)
        self.worklist: list[Loc] = []

    def _set(self, loc: Loc) -> set[Loc]:
        found = self.pts.get(loc)
        if found is None:
            found = set()
            self.pts[loc] = found
        return found

    def add_base(self, dst: Loc, target: Loc) -> None:
        """dst may point to target (``p = &x``)."""
        if target not in self._set(dst):
            self._set(dst).add(target)
            self.worklist.append(dst)

    def add_copy(self, src: Loc, dst: Loc) -> None:
        """pts(src) ⊆ pts(dst) (``p = q``)."""
        if src == dst:
            return
        self.edges.setdefault(src, set()).add(dst)
        if self._set(src):
            self.worklist.append(src)

    def add_load(self, pointer: Loc, dst: Loc) -> None:
        """∀ l ∈ pts(pointer): pts(l) ⊆ pts(dst) (``x = *p``)."""
        self.load_from.setdefault(pointer, set()).add(dst)
        if self._set(pointer):
            self.worklist.append(pointer)

    def add_store(self, pointer: Loc, src: Loc) -> None:
        """∀ l ∈ pts(pointer): pts(src) ⊆ pts(l) (``*p = q``)."""
        self.store_to.setdefault(pointer, set()).add(src)
        if self._set(pointer):
            self.worklist.append(pointer)

    def solve(self) -> None:
        while self.worklist:
            loc = self.worklist.pop()
            pointees = self._set(loc)
            # Resolve complex constraints hanging off this location.
            for dst in self.load_from.get(loc, ()):  # dst ⊇ pts(l), l ∈ pts(loc)
                for pointee in list(pointees):
                    self.add_copy(pointee, dst)
            for src in self.store_to.get(loc, ()):  # pts(l) ⊇ pts(src)
                for pointee in list(pointees):
                    self.add_copy(src, pointee)
            # Propagate along copy edges.
            for dst in self.edges.get(loc, ()):  # pts(dst) ⊇ pts(loc)
                dst_set = self._set(dst)
                missing = pointees - dst_set
                if missing:
                    dst_set |= missing
                    self.worklist.append(dst)


def _base_var(expr: ast.Expr) -> str | None:
    """The root variable of a (possibly nested) lvalue, if any."""
    while True:
        if isinstance(expr, ast.Name):
            return expr.ident
        if isinstance(expr, (ast.Index, ast.Field)):
            expr = expr.base
        elif isinstance(expr, ast.Unary) and expr.op == "*":
            expr = expr.operand
        else:
            return None


class AliasAnalysis:
    """Builds and solves the constraint system for a whole program."""

    def __init__(self, cfgs: dict[str, ControlFlowGraph]):
        self._cfgs = cfgs
        self._solver = _Solver()
        self._object_names: set[str] = set()

    def run(self) -> PointsToResult:
        for proc, cfg in self._cfgs.items():
            for node in cfg:
                self._constrain_node(proc, cfg, node)
        self._solver.solve()
        return PointsToResult(self._solver.pts, self._object_names)

    # -- constraint generation ----------------------------------------------------

    def _rvalue_into(self, proc: str, expr: ast.Expr, dst: Loc) -> None:
        """Add constraints so that pointer values of ``expr`` flow to ``dst``."""
        if isinstance(expr, ast.Name):
            self._solver.add_copy(VarLoc(proc, expr.ident), dst)
        elif isinstance(expr, ast.Unary) and expr.op == "&":
            base = _base_var(expr.operand)
            if base is not None:
                self._solver.add_base(dst, VarLoc(proc, base))
            # &*p (pointer round-trip): copy p itself.
            if isinstance(expr.operand, ast.Unary) and expr.operand.op == "*":
                self._rvalue_into(proc, expr.operand.operand, dst)
        elif isinstance(expr, ast.Unary) and expr.op == "*":
            inner = _base_var(expr.operand)
            if inner is not None:
                self._solver.add_load(VarLoc(proc, inner), dst)
        elif isinstance(expr, (ast.Index, ast.Field)):
            base = _base_var(expr)
            if base is not None:
                # Collapsed container load: pts(base) ⊆ pts(dst).
                self._solver.add_copy(VarLoc(proc, base), dst)
        # Literals / arithmetic produce no pointers.

    def _lvalue_store(self, proc: str, target: ast.Expr, source: ast.Expr) -> None:
        """Constraints for ``target = source``."""
        if isinstance(target, ast.Name):
            self._rvalue_into(proc, source, VarLoc(proc, target.ident))
            return
        if isinstance(target, (ast.Index, ast.Field)):
            base = _base_var(target)
            if base is not None:
                # Collapsed container store: pointees of source join
                # pts(base).
                self._rvalue_into(proc, source, VarLoc(proc, base))
            return
        if isinstance(target, ast.Unary) and target.op == "*":
            pointer = _base_var(target.operand)
            if pointer is not None:
                # pts(l) ⊇ pointees(source) for every l ∈ pts(pointer):
                # funnel the source through a synthetic temp, then store.
                temp = VarLoc(proc, f"<store:{id(target)}>")
                self._rvalue_into(proc, source, temp)
                self._solver.add_store(VarLoc(proc, pointer), temp)
            return

    def _constrain_node(self, proc: str, cfg: ControlFlowGraph, node: CfgNode) -> None:
        if node.kind is NodeKind.ASSIGN:
            if node.array_size is None and node.value is not None:
                self._lvalue_store(proc, node.target, node.value)
            return
        if node.kind is not NodeKind.CALL:
            return

        spec = BUILTIN_OPERATIONS.get(node.callee)
        if spec is not None:
            self._constrain_builtin(proc, node, spec)
            return

        callee_cfg = self._cfgs.get(node.callee)
        if callee_cfg is None:
            # Environment (extern) call: its result carries no pointers to
            # system memory (the env cannot forge addresses), so nothing
            # flows.
            return
        callee = node.callee
        for param, arg in zip(callee_cfg.params, node.args):
            self._rvalue_into(proc, arg, VarLoc(callee, param))
        if node.result is not None:
            result_loc = self._result_loc(proc, node.result)
            if result_loc is not None:
                for ret in callee_cfg.nodes_of_kind(NodeKind.RETURN):
                    if ret.value is not None:
                        self._rvalue_into(callee, ret.value, result_loc)

    def _result_loc(self, proc: str, result: ast.Expr) -> Loc | None:
        base = _base_var(result)
        if base is None:
            return None
        if isinstance(result, ast.Unary) and result.op == "*":
            # `*p = f(...)`: flow into everything p points to.
            temp = VarLoc(proc, f"<callres:{id(result)}>")
            self._solver.add_store(VarLoc(proc, base), temp)
            return temp
        return VarLoc(proc, base)

    def _constrain_builtin(self, proc: str, node: CfgNode, spec) -> None:
        if spec.name in ("channel", "semaphore", "shared") and node.args:
            arg = node.args[0]
            if isinstance(arg, ast.StrLit) and node.result is not None:
                self._object_names.add(arg.value)
                result_loc = self._result_loc(proc, node.result)
                if result_loc is not None:
                    self._solver.add_base(result_loc, ObjLoc(arg.value))
            return

        if spec.object_arg is None:
            return
        # Resolve the object(s) this operation may touch.
        obj_arg = node.args[spec.object_arg] if spec.object_arg < len(node.args) else None
        obj_locs: list[Loc] = []
        if isinstance(obj_arg, ast.StrLit):
            self._object_names.add(obj_arg.value)
            obj_locs = [ObjLoc(obj_arg.value)]
        elif isinstance(obj_arg, ast.Name):
            # Values transmitted through a dynamically-determined object
            # flow through whatever ObjLocs the variable may hold — the
            # solver resolves this via load/store through the variable.
            obj_locs = [VarLoc(proc, obj_arg.ident)]

        for obj in obj_locs:
            for value_index in spec.value_args:
                if value_index < len(node.args):
                    if isinstance(obj, ObjLoc):
                        temp = VarLoc(proc, f"<xmit:{node.id}>")
                        self._rvalue_into(proc, node.args[value_index], temp)
                        self._solver.add_copy(temp, obj)
                    else:
                        temp = VarLoc(proc, f"<xmit:{node.id}>")
                        self._rvalue_into(proc, node.args[value_index], temp)
                        self._solver.add_store(obj, temp)
            if spec.returns_value and node.result is not None:
                result_loc = self._result_loc(proc, node.result)
                if result_loc is not None:
                    if isinstance(obj, ObjLoc):
                        self._solver.add_copy(obj, result_loc)
                    else:
                        self._solver.add_load(obj, result_loc)


def analyze_aliases(cfgs: dict[str, ControlFlowGraph]) -> PointsToResult:
    """Run the may-alias analysis over a whole program."""
    return AliasAnalysis(cfgs).run()
