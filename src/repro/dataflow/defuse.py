"""Define-use graphs ``G~_j`` (Section 4 of the paper).

"If a node n defines a variable v and a node n' uses variable v, and if
there is a control-flow path from n to n' along which v is not defined,
then there is an arc (n, n') in G~_j labelled with v."

We compute this with the classic reaching-definitions worklist over the
CFG.  *Strong* definitions kill earlier definitions of the same
variable; *weak* definitions (through pointers, into containers, via
``&x`` call arguments) do not kill — which is exactly the "along which v
is not defined" condition interpreted conservatively (a path through a
may-definition might not actually redefine v).

Parameters are modelled as defined at the START node: the paper treats
them as fresh variables initialised when the procedure is called.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass

from ..cfg.graph import ControlFlowGraph
from .accesses import NodeAccess, node_access


@dataclass(frozen=True, slots=True)
class DefUseArc:
    """Definition of ``var`` at ``def_node`` may reach its use at ``use_node``."""

    def_node: int
    use_node: int
    var: str


class DefUseGraph:
    """The define-use graph of one procedure."""

    def __init__(
        self,
        proc_name: str,
        arcs: set[DefUseArc],
        accesses: dict[int, NodeAccess],
        reaching_in: dict[int, frozenset[tuple[str, int]]],
    ):
        self.proc_name = proc_name
        self.arcs = arcs
        self.accesses = accesses
        #: node -> set of (var, def_node) pairs reaching the node's entry.
        self.reaching_in = reaching_in
        self._out: dict[int, list[DefUseArc]] = {}
        self._in: dict[int, list[DefUseArc]] = {}
        for arc in arcs:
            self._out.setdefault(arc.def_node, []).append(arc)
            self._in.setdefault(arc.use_node, []).append(arc)

    def uses_fed_by(self, node_id: int) -> list[DefUseArc]:
        """Arcs out of ``node_id`` (its definitions feeding later uses)."""
        return self._out.get(node_id, [])

    def defs_feeding(self, node_id: int) -> list[DefUseArc]:
        """Arcs into ``node_id`` (definitions its uses may read)."""
        return self._in.get(node_id, [])

    def arc_count(self) -> int:
        return len(self.arcs)


def compute_defuse(
    cfg: ControlFlowGraph, points_to: dict[str, set[str]] | None = None
) -> DefUseGraph:
    """Compute the define-use graph of ``cfg``.

    ``points_to`` is the procedure-local pointer map (see
    :meth:`repro.dataflow.alias.PointsToResult.local_pointer_map`);
    without it, ``*p = e`` statements define nothing locally.
    """
    accesses: dict[int, NodeAccess] = {}
    gen: dict[int, set[tuple[str, int]]] = {}
    kill_vars: dict[int, set[str]] = {}
    for node in cfg:
        access = node_access(node, points_to)
        accesses[node.id] = access
        gen[node.id] = {(definition.var, node.id) for definition in access.defs}
        kill_vars[node.id] = {
            definition.var for definition in access.defs if definition.strong
        }
    # Parameters are defined at START.
    start = cfg.start_id
    gen[start] |= {(param, start) for param in cfg.params}

    # Worklist reaching-definitions.
    reaching_in: dict[int, set[tuple[str, int]]] = {n: set() for n in cfg.nodes}
    reaching_out: dict[int, set[tuple[str, int]]] = {n: set() for n in cfg.nodes}
    worklist: deque[int] = deque(cfg.nodes)
    queued: set[int] = set(cfg.nodes)
    while worklist:
        node_id = worklist.popleft()
        queued.discard(node_id)
        in_set: set[tuple[str, int]] = set()
        for arc in cfg.predecessors(node_id):
            in_set |= reaching_out[arc.src]
        reaching_in[node_id] = in_set
        killed = kill_vars[node_id]
        out_set = {pair for pair in in_set if pair[0] not in killed} | gen[node_id]
        if out_set != reaching_out[node_id]:
            reaching_out[node_id] = out_set
            for arc in cfg.successors(node_id):
                if arc.dst not in queued:
                    queued.add(arc.dst)
                    worklist.append(arc.dst)

    arcs: set[DefUseArc] = set()
    for node in cfg:
        used = accesses[node.id].uses
        if not used:
            continue
        for var, def_node in reaching_in[node.id]:
            if var in used:
                arcs.add(DefUseArc(def_node, node.id, var))
    frozen_in = {n: frozenset(s) for n, s in reaching_in.items()}
    return DefUseGraph(cfg.proc_name, arcs, accesses, frozen_in)
