"""The async job service: searches as durable on-disk jobs.

A **job** is a search you can walk away from: submitted as a
self-contained record (system description + embedded program source +
options snapshot), executed by a ``repro serve`` worker loop, streaming
live :class:`~repro.verisoft.stats.SearchStats` heartbeats to disk,
checkpointing its frontier on a timer, and surviving stop requests and
process kills — resuming picks up the persisted
:class:`~repro.service.frontier.SearchCheckpoint` and completes the
search with a final report identical to an uninterrupted run.

Disk layout (one directory per job under the store root)::

    <root>/<job_id>/
        job.json       identity, state, system payload, options snapshot
        frontier.json  suspended/periodic SearchCheckpoint (absent when done)
        stats.json     latest streamed SearchStats heartbeat
        STOP           stop request marker (repro stop); removed on resume
        result.json    final summary + counters (done/failed jobs)
        run.json       run manifest (repro.obs), done jobs
        traces/        one replayable JSON trace per recorded violation

Job states: ``queued`` → ``running`` → ``done`` | ``stopped`` |
``failed``; ``stopped`` and ``failed`` jobs go back to ``queued`` via
:meth:`JobStore.resume`.  State transitions are plain atomic file
rewrites — the store is a directory, not a daemon, so ``repro jobs``
can inspect it while a server runs.
"""

from __future__ import annotations

import json
import os
import pathlib
import sys
import time
import uuid
from dataclasses import dataclass, field
from typing import Any, Callable

from ..sysdesc import description_language, system_from_description
from .frontier import SearchCheckpoint, load_frontier, save_frontier
from .scheduler import work_stealing_search

__all__ = ["Job", "JobStore", "run_job"]

#: The states a job moves through.
JOB_STATES = ("queued", "running", "stopped", "done", "failed")


def _now() -> float:
    return time.time()


def _write_json(path: pathlib.Path, payload: dict) -> None:
    """Atomic write-then-rename, like the frontier format — readers
    (and crashes) never observe a half-written document."""
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(payload, indent=2) + "\n")
    tmp.replace(path)


@dataclass
class Job:
    """One persisted job (the in-memory view of ``job.json``)."""

    id: str
    directory: pathlib.Path
    name: str = ""
    state: str = "queued"
    created: float = 0.0
    updated: float = 0.0
    #: Self-contained system payload:
    #: ``{"description": <dict>, "program_source": <text>}``.
    system: dict = field(default_factory=dict)
    #: :meth:`~repro.verisoft.search.SearchOptions.as_dict` snapshot.
    options: dict = field(default_factory=dict)
    error: str | None = None

    @property
    def job_path(self) -> pathlib.Path:
        return self.directory / "job.json"

    @property
    def frontier_path(self) -> pathlib.Path:
        return self.directory / "frontier.json"

    @property
    def stats_path(self) -> pathlib.Path:
        return self.directory / "stats.json"

    @property
    def stop_path(self) -> pathlib.Path:
        return self.directory / "STOP"

    @property
    def result_path(self) -> pathlib.Path:
        return self.directory / "result.json"

    @property
    def manifest_path(self) -> pathlib.Path:
        return self.directory / "run.json"

    @property
    def traces_dir(self) -> pathlib.Path:
        return self.directory / "traces"

    def save(self) -> None:
        self.updated = _now()
        _write_json(
            self.job_path,
            {
                "id": self.id,
                "name": self.name,
                "state": self.state,
                "created": self.created,
                "updated": self.updated,
                "system": self.system,
                "options": self.options,
                "error": self.error,
            },
        )

    @classmethod
    def load(cls, directory: pathlib.Path) -> "Job":
        doc = json.loads((directory / "job.json").read_text())
        return cls(
            id=doc["id"],
            directory=directory,
            name=doc.get("name", ""),
            state=doc.get("state", "queued"),
            created=doc.get("created", 0.0),
            updated=doc.get("updated", 0.0),
            system=doc.get("system", {}),
            options=doc.get("options", {}),
            error=doc.get("error"),
        )

    def set_state(self, state: str, *, error: str | None = None) -> None:
        assert state in JOB_STATES, state
        self.state = state
        self.error = error
        self.save()

    def build_system(self):
        """Reconstruct the job's :class:`~repro.runtime.system.System`
        from the embedded payload (no external files needed)."""
        return system_from_description(
            self.system.get("description", {}),
            None,
            program_source=self.system.get("program_source"),
        )

    def search_options(self):
        """The job's :class:`~repro.verisoft.search.SearchOptions`,
        forced onto the work-stealing scheduler (the only driver that
        can suspend/resume)."""
        from ..verisoft.search import SearchOptions

        options = SearchOptions(**self.options)
        options.strategy = "parallel"
        options.scheduler = "steal"
        return options

    def latest_stats(self) -> dict | None:
        """The last streamed heartbeat (``None`` before the first)."""
        try:
            return json.loads(self.stats_path.read_text())
        except (OSError, json.JSONDecodeError):
            return None

    def describe(self) -> str:
        line = f"{self.id}  {self.state:<8}"
        if self.name:
            line += f"  {self.name}"
        beat = self.latest_stats()
        if beat and "stats" in beat:
            stats = beat["stats"]
            line += (
                f"  paths={stats.get('paths_explored', 0)}"
                f" states={stats.get('states_visited', 0)}"
            )
        if self.error:
            line += f"  error: {self.error.splitlines()[0]}"
        return line


class JobStore:
    """An on-disk queue of jobs — a directory of job directories."""

    def __init__(self, root: str | pathlib.Path):
        self.root = pathlib.Path(root)
        self.root.mkdir(parents=True, exist_ok=True)

    def submit(
        self,
        description: dict,
        options,
        *,
        program_source: str | None = None,
        base_dir: pathlib.Path | None = None,
        name: str = "",
    ) -> Job:
        """Create a queued job from a system description.

        The program source is embedded (read from ``base_dir`` /
        ``description["program"]`` unless passed directly), making the
        job self-contained: a server on another machine needs nothing
        but the store directory.  ``options`` is a
        :class:`~repro.verisoft.search.SearchOptions` (or a dict
        snapshot of one)."""
        if program_source is None:
            if base_dir is None:
                raise ValueError(
                    "submit needs program_source or base_dir to embed the program"
                )
            program_source = (
                pathlib.Path(base_dir) / description["program"]
            ).read_text()
        options_dict = options if isinstance(options, dict) else options.as_dict()
        job_id = f"job-{uuid.uuid4().hex[:12]}"
        directory = self.root / job_id
        directory.mkdir()
        job = Job(
            id=job_id,
            directory=directory,
            name=name or description.get("program", ""),
            state="queued",
            created=_now(),
            system={"description": description, "program_source": program_source},
            options=options_dict,
        )
        job.save()
        return job

    def get(self, job_id: str) -> Job:
        directory = self.root / job_id
        if not (directory / "job.json").exists():
            raise KeyError(f"no such job: {job_id}")
        return Job.load(directory)

    def jobs(self) -> list[Job]:
        """Every job in the store, oldest first."""
        out = []
        for directory in sorted(self.root.iterdir()):
            if (directory / "job.json").exists():
                out.append(Job.load(directory))
        out.sort(key=lambda job: (job.created, job.id))
        return out

    def claim_next(self) -> Job | None:
        """Atomically claim the oldest queued job (``None`` when idle).

        The claim is an ``O_EXCL`` marker file, so two server loops
        polling one store never run the same job."""
        for job in self.jobs():
            if job.state != "queued":
                continue
            claim = job.directory / ".claim"
            try:
                fd = os.open(claim, os.O_CREAT | os.O_EXCL | os.O_WRONLY)
            except FileExistsError:
                continue
            os.close(fd)
            return job
        return None

    def request_stop(self, job_id: str) -> Job:
        """Ask a running job to suspend to its frontier checkpoint
        (honoured at the next path boundary; a no-op for finished
        jobs)."""
        job = self.get(job_id)
        job.stop_path.touch()
        return job

    def resume(self, job_id: str) -> Job:
        """Re-queue a stopped (or failed) job; its persisted frontier —
        if any — is picked up by the next server that claims it."""
        job = self.get(job_id)
        if job.state not in ("stopped", "failed"):
            raise ValueError(
                f"job {job_id} is {job.state}; only stopped/failed jobs resume"
            )
        if job.stop_path.exists():
            job.stop_path.unlink()
        claim = job.directory / ".claim"
        if claim.exists():
            claim.unlink()
        job.set_state("queued")
        return job


def store_snapshots(store: JobStore) -> list[dict]:
    """Job snapshots for the metrics exporter: id, name, state and the
    latest streamed stats heartbeat (``None`` before the first)."""
    snapshots = []
    for job in store.jobs():
        beat = job.latest_stats()
        snapshots.append(
            {
                "id": job.id,
                "name": job.name,
                "state": job.state,
                "stats": (beat or {}).get("stats"),
            }
        )
    return snapshots


def export_metrics(store: JobStore, metrics_out) -> None:
    """Refresh the Prometheus textfile; never sinks the run."""
    if metrics_out is None:
        return
    from ..obs import write_metrics

    try:
        write_metrics(store_snapshots(store), metrics_out)
    except OSError:
        pass


def run_job(
    store: JobStore,
    job: Job,
    *,
    checkpoint_interval: float = 5.0,
    stop_poll_interval: float = 0.2,
    kill_worker_after_paths: int | None = None,
    log: Callable[[str], None] | None = None,
    metrics_out=None,
) -> Job:
    """Execute one claimed job to completion or suspension.

    Drives :func:`~repro.service.scheduler.work_stealing_search` with
    the service hooks wired to the job directory: the STOP marker is
    the suspend signal (polled at most every ``stop_poll_interval``
    seconds), the frontier is checkpointed every
    ``checkpoint_interval`` seconds while running (and at suspension),
    and every progress tick streams a ``stats.json`` heartbeat.  On
    completion the job directory gains ``result.json``, a ``run.json``
    manifest and one replayable trace file per recorded violation.
    """
    from ..verisoft.stats import SearchStats

    def say(message: str) -> None:
        if log is not None:
            log(message)

    try:
        system = job.build_system()
        options = job.search_options()
    except Exception as err:
        job.set_state("failed", error=f"{type(err).__name__}: {err}")
        say(f"{job.id}: failed to build system: {err}")
        return job

    initial: SearchCheckpoint | None = None
    if job.frontier_path.exists():
        initial = load_frontier(job.frontier_path)
        say(f"{job.id}: resuming from frontier ({len(initial.pending)} pending leases)")

    # Stale STOP markers (e.g. the server died before honouring one)
    # must not instantly re-suspend the fresh run.
    if job.stop_path.exists():
        job.stop_path.unlink()

    last_poll = [0.0, False]

    def should_suspend() -> bool:
        now = time.monotonic()
        if now - last_poll[0] >= stop_poll_interval:
            last_poll[0] = now
            last_poll[1] = job.stop_path.exists()
        return last_poll[1]

    def heartbeat(stats: SearchStats) -> None:
        _write_json(
            job.stats_path,
            {"state": "running", "updated": _now(), "stats": stats.json_dict()},
        )
        export_metrics(store, metrics_out)

    def on_checkpoint(checkpoint: SearchCheckpoint) -> None:
        save_frontier(job.frontier_path, checkpoint)

    options.progress = heartbeat
    job.set_state("running")
    say(f"{job.id}: running")
    try:
        report = work_stealing_search(
            system,
            options,
            initial=initial,
            should_suspend=should_suspend,
            on_checkpoint=on_checkpoint,
            checkpoint_interval=checkpoint_interval,
            kill_worker_after_paths=kill_worker_after_paths,
        )
    except Exception as err:
        job.set_state("failed", error=f"{type(err).__name__}: {err}")
        say(f"{job.id}: failed: {err}")
        return job

    if report.stats is not None:
        _write_json(
            job.stats_path,
            {"state": "final", "updated": _now(), "stats": report.stats.json_dict()},
        )

    if report.checkpoint is not None:
        # Suspended: persist the frontier, acknowledge the stop.
        save_frontier(job.frontier_path, report.checkpoint)
        if job.stop_path.exists():
            job.stop_path.unlink()
        job.set_state("stopped")
        say(
            f"{job.id}: stopped ({len(report.checkpoint.pending)} pending leases "
            "checkpointed)"
        )
        return job

    # Completed: traces, result, manifest — the job directory is the
    # run's full artifact set.
    from ..counterex import save_report_traces
    from ..obs import build_manifest, write_manifest

    language = description_language(job.system.get("description", {}))
    artifacts = save_report_traces(
        job.traces_dir,
        report,
        system=system,
        system_payload=job.system,
        language=language,
    )
    source = None
    source_text = job.system.get("program_source")
    if source_text:
        source = {
            "path": job.system.get("description", {}).get("program"),
            "text": source_text,
        }
    _write_json(
        job.result_path,
        {
            "ok": report.ok,
            "summary": report.summary(),
            "distinct_states": report.distinct_states,
            "stats": report.stats.json_dict() if report.stats is not None else None,
            "groups": [
                {"kind": group.kind, "count": group.count}
                for group in report.triage()
            ],
            "worker_summary": report.worker_summary,
        },
    )
    manifest = build_manifest(
        argv=["repro", "serve", job.id],
        options=options,
        report=report,
        system=system,
        artifacts=[str(path) for path in artifacts],
        language=language,
        source=source,
        extra={"job": {"id": job.id, "name": job.name}},
    )
    write_manifest(job.manifest_path, manifest)
    if job.frontier_path.exists():
        job.frontier_path.unlink()
    job.set_state("done")
    say(f"{job.id}: done — {report.summary()}")
    return job


def serve(
    store: JobStore,
    *,
    once: bool = False,
    poll_interval: float = 1.0,
    log: Callable[[str], None] | None = None,
    max_jobs: int | None = None,
    metrics_out=None,
) -> int:
    """The server loop: claim queued jobs and run them.

    ``once`` drains the queue and returns instead of polling forever;
    ``max_jobs`` caps the number of jobs executed (testing hook).
    ``metrics_out`` keeps a Prometheus textfile updated: rewritten on
    every heartbeat of the running job and at every state change (see
    :mod:`repro.obs.metrics`).  Returns the number of jobs run."""
    ran = 0
    export_metrics(store, metrics_out)
    while True:
        job = store.claim_next()
        if job is None:
            export_metrics(store, metrics_out)
            if once:
                return ran
            time.sleep(poll_interval)
            continue
        export_metrics(store, metrics_out)
        run_job(store, job, log=log, metrics_out=metrics_out)
        export_metrics(store, metrics_out)
        ran += 1
        if max_jobs is not None and ran >= max_jobs:
            return ran


def _default_log(message: str) -> None:  # pragma: no cover - CLI plumbing
    print(message, file=sys.stderr)
