"""The exploration service: durable, sharded, resumable searches.

The VeriSoft substrate (:mod:`repro.verisoft`) is a library — a search
lives and dies inside one Python process.  This package turns it into a
*service*:

* :mod:`repro.service.frontier` — the versioned on-disk **frontier
  checkpoint** format.  A suspended search's pending subtree leases
  (picklable :class:`~repro.verisoft.parallel.ChoicePrefix` snapshots,
  POR context included) plus its completed per-lease report blocks are
  serialized as one JSON document, so in-progress work can be shipped
  between machines and resumed bit-identically on either execution
  engine.

* :mod:`repro.service.scheduler` — the **work-stealing scheduler**.
  Subtree leases are handed to worker processes from a shared queue;
  idle workers steal from busy ones (a busy worker suspends
  cooperatively and donates its unexplored siblings as new leases),
  dead workers are detected by heartbeat/liveness monitoring and their
  leases re-queued.  Merged reports are counter-for-counter identical
  to the sequential search, modulo the backtracking-cost group.

* :mod:`repro.service.jobs` — the **async job service**: an on-disk
  :class:`~repro.service.jobs.JobStore` plus the ``repro submit`` /
  ``repro serve`` / ``repro jobs`` / ``repro stop`` / ``repro resume``
  CLI.  Jobs stream :class:`~repro.verisoft.stats.SearchStats`
  heartbeats to disk, persist run manifests and counterexample traces
  as native artifacts, and survive process restarts via frontier
  checkpoints.
"""

from .frontier import (
    FRONTIER_FORMAT,
    FRONTIER_VERSION,
    FrontierFormatError,
    SearchCheckpoint,
    load_frontier,
    prefix_from_json,
    prefix_to_json,
    report_from_json,
    report_to_json,
    save_frontier,
)
from .jobs import Job, JobStore, run_job
from .scheduler import work_stealing_search

__all__ = [
    "FRONTIER_FORMAT",
    "FRONTIER_VERSION",
    "FrontierFormatError",
    "Job",
    "JobStore",
    "SearchCheckpoint",
    "load_frontier",
    "prefix_from_json",
    "prefix_to_json",
    "report_from_json",
    "report_to_json",
    "run_job",
    "save_frontier",
    "work_stealing_search",
]
