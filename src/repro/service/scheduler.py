"""The work-stealing scheduler: adaptive sharded exploration.

The static parallel driver (:mod:`repro.verisoft.parallel`) partitions
the choice tree *once*, by cutting every path at a fixed prefix depth —
simple and exactly mergeable, but a skewed tree leaves workers idle
while one unlucky worker grinds through a giant subtree.  This module
keeps the same stateless-subtree unit of work and makes the partition
*adaptive*:

* Work is handed out as **subtree leases** — fully pinned
  :class:`~repro.verisoft.parallel.ChoicePrefix` snapshots (POR context
  included).  The initial lease is the whole tree.

* When workers go idle and no leases are pending, the coordinator
  raises a shared **steal budget**; a busy worker polls it between
  paths (the explorer's ``yield_check`` hook), suspends cooperatively,
  and commits its lease: the partial report *plus* every unexplored
  sibling subtree of its DFS stack
  (:func:`~repro.verisoft.parallel.harvest_residual`), which become new
  leases for the idle workers.

* The unit of completion is the lease: a lease either commits
  atomically (report + residuals, which losslessly partition the
  uncovered remainder) or it did not happen.  A worker that **dies**
  mid-lease (detected by process liveness plus the
  :mod:`repro.obs` heartbeat stream) therefore loses nothing but time:
  its lease is re-queued verbatim and a replacement worker is spawned.

* A **stop request** (``should_suspend``) is the same mechanism turned
  on every worker at once: all in-flight leases commit, and the pending
  leases plus completed blocks are returned as a
  :class:`~repro.service.frontier.SearchCheckpoint` on
  ``report.checkpoint`` — resumable later, on any machine, on either
  execution engine, via the ``initial`` parameter.

**Determinism.**  Completed lease blocks are kept unmerged and sorted
by :func:`~repro.verisoft.parallel.prefix_key` at the end — sequential
DFS visit order, regardless of which worker finished what when — so
the merged report is counter-for-counter identical to the sequential
search, modulo the backtracking-cost group (``replays``/
``replayed_transitions``/``restores``/``undo_entries``/
``checkpoint_memory_bytes``) and the timing-dependent stealing
counters (``leases``/``steals``/``leases_requeued``).

Caveats shared with the static driver: per-lease budgets make
``max_paths``/``max_transitions`` truncate slightly differently (never
later) than sequential; ``state_cache`` stores are private per lease.
``options.tracer`` is not supported here (no spans are recorded);
checkpoints are only produced for clean suspensions, not for
budget-truncated runs.
"""

from __future__ import annotations

import heapq
import multiprocessing
import os
import queue as queue_mod
import signal
import sys
import time
from typing import TYPE_CHECKING, Any, Callable

from ..runtime.system import System
from ..statespace.stores import make_store
from ..verisoft.explorer import Explorer
from ..verisoft.parallel import (
    ChoicePrefix,
    _merge_events,
    _thaw,
    harvest_residual,
    prefix_key,
    warn_oversubscription,
)
from ..verisoft.results import ExplorationReport
from ..verisoft.stats import SearchStats
from .frontier import SearchCheckpoint, canonical_fingerprint, pending_key

if TYPE_CHECKING:  # pragma: no cover
    from ..verisoft.search import SearchOptions

__all__ = ["explore_lease", "work_stealing_search"]


# ---------------------------------------------------------------------------
# One lease: the unit of work and of completion
# ---------------------------------------------------------------------------


def explore_lease(
    system: System,
    prefix: ChoicePrefix | None,
    *,
    yield_check: Callable[[], bool] | None = None,
    heartbeat_queue: Any | None = None,
    lease_index: int = 0,
    max_depth: int = 100,
    backtrack: str = "restore",
    engine: str = "walk",
    por: bool = True,
    sleep_sets: bool = True,
    count_states: bool = False,
    stop_on_first: bool = False,
    max_paths: int | None = None,
    max_transitions: int | None = None,
    time_budget: float | None = None,
    max_events: int = 25,
    state_cache: str = "off",
    cache_bits: int = 24,
    profile: bool = False,
    coverage: bool = False,
    heartbeat_interval: float = 0.5,
) -> tuple[ExplorationReport, list[ChoicePrefix], frozenset | None]:
    """Explore the subtree leased by ``prefix`` (``None`` = whole tree).

    Returns ``(report, residuals, fingerprints)``.  When ``yield_check``
    suspended the DFS, ``residuals`` holds the unexplored sibling
    subtrees as new fully pinned prefixes (sequential DFS order) and
    ``report`` covers exactly the paths completed — together they
    partition the lease losslessly.  ``residuals`` is empty for a lease
    run to exhaustion.  Fingerprints (``count_states``) come back
    canonicalized (:func:`~repro.service.frontier.canonical_fingerprint`)
    so they survive checkpoint round-trips.

    Unlike the static driver's frontier prefixes, a lease prefix pins an
    *untried* decision at its tip, so the explorer runs in
    ``prefix_mode="resume"``: the tip's out-edge and everything below it
    is fresh, counted ground.
    """
    profiler = None
    if profile:
        from ..obs import HotSpotProfiler

        profiler = HotSpotProfiler()
    collector = None
    if coverage:
        from ..obs import CoverageCollector

        collector = CoverageCollector(system)

    progress = None
    send = None
    if heartbeat_queue is not None:
        from ..obs import Heartbeat

        pid = os.getpid()

        def send(kind: str, states: int, transitions: int) -> None:
            try:  # a closed/full queue must never sink the worker
                heartbeat_queue.put_nowait(
                    Heartbeat(kind, pid, lease_index, states, transitions, time.time())
                )
            except Exception:
                pass

        def progress(stats: SearchStats) -> None:
            send(
                "beat",
                stats.states_visited,
                stats.transitions_executed + stats.replayed_transitions,
            )

        send("start", 0, 0)

    fingerprints: set[Any] | None = set() if count_states else None
    explorer = Explorer(
        system,
        max_depth=max_depth,
        backtrack=backtrack,
        engine=engine,
        por=por,
        sleep_sets=sleep_sets,
        state_store=make_store(state_cache, cache_bits=cache_bits),
        count_states=count_states,
        stop_on_first=stop_on_first,
        max_paths=max_paths,
        max_transitions=max_transitions,
        time_budget=time_budget,
        max_events=max_events,
        initial_stack=_thaw(prefix) if prefix is not None else None,
        prefix_mode="resume",
        yield_check=yield_check,
        fingerprint_set=fingerprints,
        progress=progress,
        progress_interval=heartbeat_interval,
        on_step=profiler,
        coverage=collector,
        phase_profile=profiler.phases if profiler is not None else None,
    )
    report = explorer.run()
    residuals: list[ChoicePrefix] = []
    if explorer.suspended and explorer.final_stack is not None:
        residuals = harvest_residual(explorer.final_stack, explorer.final_base)
    if send is not None:
        replayed = report.stats.replayed_transitions if report.stats else 0
        send("done", report.states_visited, report.transitions_executed + replayed)
    report.profile = profiler
    report.coverage = collector
    canonical = (
        None
        if fingerprints is None
        else frozenset(canonical_fingerprint(fp) for fp in fingerprints)
    )
    return report, residuals, canonical


# ---------------------------------------------------------------------------
# Worker process
# ---------------------------------------------------------------------------


def _worker_main(
    worker_id: int,
    system_or_factory: Any,
    worker_kwargs: dict[str, Any],
    task_queue: Any,
    result_queue: Any,
    heartbeat_queue: Any,
    steal_budget: Any,
    suspend_flag: Any,
    kill_after_paths: int | None,
) -> None:
    """Worker loop: take a lease, explore it, commit the result.

    ``steal_budget`` (a shared int) is the coordinator's standing steal
    request: a dirty read keeps the common case to one attribute load
    per path, and a claim takes the lock and decrements.  At most one
    steal is honoured per lease — once this lease has donated, further
    yields would thrash it into confetti.  ``suspend_flag`` set means
    *everyone* suspends (stop request / checkpoint).

    ``kill_after_paths`` is the crash-recovery test hook: SIGKILL our
    own process mid-lease after that many completed paths, simulating a
    worker lost to the OOM killer — nothing is committed, exercising
    the coordinator's lease re-queue path.
    """
    system = system_or_factory() if callable(system_or_factory) else system_or_factory
    paths_seen = 0
    while True:
        task = task_queue.get()
        if task is None:
            return
        seq, prefix = task
        stolen = False

        def yield_check() -> bool:
            nonlocal paths_seen, stolen
            paths_seen += 1
            if kill_after_paths is not None and paths_seen >= kill_after_paths:
                os.kill(os.getpid(), signal.SIGKILL)
            if suspend_flag.value:
                return True
            if not stolen and steal_budget.value > 0:
                with steal_budget.get_lock():
                    if steal_budget.value > 0:
                        steal_budget.value -= 1
                        stolen = True
                        return True
            return False

        try:
            report, residuals, fps = explore_lease(
                system,
                prefix,
                yield_check=yield_check,
                heartbeat_queue=heartbeat_queue,
                lease_index=seq,
                **worker_kwargs,
            )
        except Exception as err:  # commit the failure; don't strand the lease
            result_queue.put((worker_id, seq, err, [], None, False))
            continue
        result_queue.put(
            (worker_id, seq, report, residuals, fps, stolen and bool(residuals))
        )


class _WorkerHandle:
    """Coordinator-side record of one worker process."""

    __slots__ = ("process", "task_queue", "assigned", "label", "leases_done", "stolen_from")

    def __init__(self, process, task_queue, label: str):
        self.process = process
        self.task_queue = task_queue
        self.assigned: tuple[tuple[int, ...], int, ChoicePrefix | None] | None = None
        self.label = label
        self.leases_done = 0
        self.stolen_from = 0


# ---------------------------------------------------------------------------
# Deterministic merge
# ---------------------------------------------------------------------------


def _merge_lease_blocks(
    blocks: list[tuple[tuple[int, ...], ExplorationReport]],
    *,
    max_events: int,
    fingerprints: set[str] | None,
) -> ExplorationReport:
    """Merge completed lease blocks in sequential DFS order.

    Every explored path of a suspended lease precedes (in DFS order)
    every path of its harvested residuals, and a parent block's key is
    a strict tuple-prefix of its residuals' keys — so sorting blocks by
    key reproduces the sequential search's event order exactly, and
    there is no frontier pseudo-path accounting to undo (lease prefixes
    pin untried decisions; no path is ever cut short)."""
    ordered = sorted(blocks, key=lambda entry: entry[0])
    merged = ExplorationReport()
    for _, report in ordered:
        merged.states_visited += report.states_visited
        merged.transitions_executed += report.transitions_executed
        merged.toss_points += report.toss_points
        merged.paths_explored += report.paths_explored
        merged.max_depth_reached = max(
            merged.max_depth_reached, report.max_depth_reached
        )
        merged.truncated = merged.truncated or report.truncated
        merged.incomplete = merged.incomplete or report.incomplete

    _merge_events(
        merged.deadlocks, (r.deadlocks for _, r in ordered), max_events, keep_count=False
    )
    _merge_events(
        merged.violations, (r.violations for _, r in ordered), max_events, keep_count=True
    )
    _merge_events(
        merged.crashes, (r.crashes for _, r in ordered), max_events, keep_count=True
    )
    _merge_events(
        merged.divergences, (r.divergences for _, r in ordered), max_events, keep_count=True
    )

    if fingerprints is not None:
        merged.distinct_states = len(fingerprints)

    profiles = [r.profile for _, r in ordered if r.profile is not None]
    if profiles:
        from ..obs import HotSpotProfiler

        merged.profile = HotSpotProfiler.merged(profiles)

    coverages = [r.coverage for _, r in ordered if r.coverage is not None]
    if coverages:
        from ..obs import CoverageCollector

        merged.coverage = CoverageCollector.merged(coverages)

    merged.stats = SearchStats.merged(
        [r.stats for _, r in ordered if r.stats is not None], strategy="parallel"
    )
    if merged.coverage is not None:
        merged.stats.coverage_nodes = merged.coverage.nodes_covered
        merged.stats.coverage_nodes_total = merged.coverage.nodes_total
    return merged


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


def work_stealing_search(
    system: System,
    options: "SearchOptions | None" = None,
    *,
    system_factory: Callable[[], System] | None = None,
    initial: SearchCheckpoint | None = None,
    should_suspend: Callable[[], bool] | None = None,
    on_checkpoint: Callable[[SearchCheckpoint], None] | None = None,
    checkpoint_interval: float | None = None,
    kill_worker_after_paths: int | None = None,
    **overrides,
) -> ExplorationReport:
    """Explore ``system`` with work-stealing worker processes.

    ``options`` is a :class:`~repro.verisoft.search.SearchOptions`
    (individual fields may be overridden by keyword); ``jobs <= 1``
    runs the same lease loop in-process (the determinism baseline —
    identical merge, no multiprocessing primitives).

    Service hooks:

    * ``initial`` — resume a suspended search from its
      :class:`~repro.service.frontier.SearchCheckpoint` (the system
      fingerprint is verified first).
    * ``should_suspend`` — polled by the coordinator (and, in-process,
      between paths); returning true suspends every worker, commits all
      in-flight leases and returns a report with ``report.checkpoint``
      set.  The counters/events of that report cover the explored
      region only and ``incomplete`` is flagged.
    * ``on_checkpoint`` / ``checkpoint_interval`` — periodic *live*
      checkpoints: every interval the coordinator snapshots completed
      blocks plus pending **and assigned** leases (an assigned lease's
      partial work is uncommitted, so writing it as pending is
      consistent) and hands the checkpoint to the callback.  The search
      keeps running.
    * ``kill_worker_after_paths`` — crash-test hook, forwarded to the
      *first* worker only (see :func:`_worker_main`).
    """
    from ..verisoft.search import SearchOptions

    if options is None:
        options = SearchOptions(strategy="parallel", scheduler="steal")
    if overrides:
        from dataclasses import replace

        options = replace(options, **overrides)

    jobs = options.jobs or os.cpu_count() or 1
    started = time.monotonic()
    deadline = None if options.time_budget is None else started + options.time_budget

    def _warn(message: str) -> None:
        warn = getattr(options.progress, "warn", None)
        if warn is not None:
            warn(message)
        else:
            print(f"warning: {message}", file=sys.stderr)

    # Judged on the *requested* job count, once, before any fan-out —
    # exactly like the static driver (the jobs=0 default never warns).
    warn_oversubscription(options.jobs, _warn)

    # Resolve the effective modes up front (the per-lease explorers
    # resolve them identically) so stats are right even if the search
    # suspends before any lease completes.
    resolved_backtrack = (
        "restore"
        if options.backtrack == "restore" and system.journalable()
        else "replay"
    )
    resolved_engine = (
        "walk"
        if options.engine == "compiled" and system.compiled_program() is None
        else options.engine
    )

    # -- seed the lease pool (fresh root lease, or a checkpoint) ----------
    pending: list[tuple[tuple[int, ...], int, ChoicePrefix | None]] = []
    blocks: list[tuple[tuple[int, ...], ExplorationReport]] = []
    fingerprints: set[str] | None = set() if options.count_states else None
    lease_seq = 0
    leases = steals = requeued = 0
    if initial is not None:
        initial.check_system(system)
        for prefix in initial.pending:
            heapq.heappush(pending, (pending_key(prefix), lease_seq, prefix))
            lease_seq += 1
        blocks = list(initial.completed)
        if fingerprints is not None:
            fingerprints |= initial.fingerprints
        leases, steals, requeued = (
            initial.leases,
            initial.steals,
            initial.leases_requeued,
        )
    else:
        heapq.heappush(pending, ((), 0, None))
        lease_seq = 1
        leases = 1

    worker_kwargs = dict(
        max_depth=options.max_depth,
        backtrack=options.backtrack,
        engine=options.engine,
        por=options.por,
        sleep_sets=options.sleep_sets_active,
        count_states=options.count_states,
        stop_on_first=options.stop_on_first,
        max_paths=options.max_paths,
        max_transitions=options.max_transitions,
        time_budget=None if deadline is None else max(0.0, deadline - time.monotonic()),
        max_events=options.max_events,
        state_cache=options.state_cache,
        cache_bits=options.cache_bits,
        profile=options.profile,
        coverage=options.coverage,
        heartbeat_interval=options.progress_interval,
    )

    # Live coverage gauge: incrementally merged at block commit so
    # heartbeats don't re-merge every shard on each tick.  The *final*
    # report's coverage is still rebuilt from scratch by
    # ``_merge_lease_blocks`` (the counter-exact path).
    live_coverage = None
    if options.coverage:
        from ..obs import CoverageCollector

        live_coverage = CoverageCollector(system)

    suspended = False
    stop_early = False
    expired = False
    worker_summary: dict[str, dict] = {}

    def commit(
        key: tuple[int, ...],
        report: ExplorationReport,
        residuals: list[ChoicePrefix],
        lease_fps: frozenset | None,
        was_steal: bool,
    ) -> None:
        nonlocal lease_seq, leases, steals
        blocks.append((key, report))
        if live_coverage is not None and report.coverage is not None:
            live_coverage.add(report.coverage)
        if fingerprints is not None and lease_fps:
            fingerprints.update(lease_fps)
        for residual in residuals:
            heapq.heappush(pending, (prefix_key(residual), lease_seq, residual))
            lease_seq += 1
            leases += 1
        if was_steal:
            steals += 1

    def build_checkpoint(
        extra_pending: list[tuple[tuple[int, ...], int, ChoicePrefix | None]] = (),
    ) -> SearchCheckpoint:
        entries = sorted([*pending, *extra_pending], key=lambda e: (e[0], e[1]))
        return SearchCheckpoint(
            fingerprint=system.fingerprint(),
            options=options.as_dict(),
            pending=[prefix for _, _, prefix in entries],
            completed=list(blocks),
            fingerprints=set() if fingerprints is None else set(fingerprints),
            leases=leases,
            steals=steals,
            leases_requeued=requeued,
        )

    def live_stats() -> SearchStats:
        live = SearchStats.merged(
            [r.stats for _, r in blocks if r.stats is not None],
            strategy="parallel",
            backtrack=resolved_backtrack,
            engine=resolved_engine,
            jobs=jobs,
            prefixes=leases,
            leases=leases,
            steals=steals,
            leases_requeued=requeued,
        )
        live.wall_time = time.monotonic() - started
        # Gauges for the heartbeat stream: coverage so far and frontier
        # depth.  ``frontier_pending`` is a live-only gauge — the final
        # merged stats keep it at 0 (the frontier is drained), so
        # cross-driver parity checks are unaffected.
        if live_coverage is not None:
            live.coverage_nodes = live_coverage.nodes_covered
            live.coverage_nodes_total = live_coverage.nodes_total
        live.frontier_pending = len(pending)
        return live

    next_checkpoint = (
        None if checkpoint_interval is None else started + checkpoint_interval
    )

    def checkpoint_tick(
        extra_pending: list[tuple[tuple[int, ...], int, ChoicePrefix | None]],
    ) -> None:
        nonlocal next_checkpoint
        if next_checkpoint is None or on_checkpoint is None:
            return
        now = time.monotonic()
        if now < next_checkpoint:
            return
        next_checkpoint = now + checkpoint_interval
        on_checkpoint(build_checkpoint(extra_pending))

    # ------------------------------------------------------------------
    # In-process lease loop (jobs <= 1): the determinism baseline
    # ------------------------------------------------------------------
    if jobs <= 1:
        target_system = system_factory() if system_factory is not None else system
        worker_summary["w0"] = {"leases": 0, "stolen_from": 0, "alive": True}
        next_tick = started + options.progress_interval
        while pending:
            if should_suspend is not None and should_suspend():
                suspended = True
                break
            if deadline is not None and time.monotonic() > deadline:
                expired = True
                break
            key, seq, prefix = heapq.heappop(pending)
            report, residuals, lease_fps = explore_lease(
                target_system,
                prefix,
                yield_check=should_suspend,
                lease_index=seq,
                **worker_kwargs,
            )
            commit(key, report, residuals, lease_fps, was_steal=False)
            worker_summary["w0"]["leases"] += 1
            checkpoint_tick([])
            if options.progress is not None:
                now = time.monotonic()
                if now >= next_tick:
                    options.progress(live_stats())
                    next_tick = now + options.progress_interval
            if options.stop_on_first and not report.ok:
                stop_early = True
                break
            totals = sum(r.paths_explored for _, r in blocks)
            if options.max_paths is not None and totals >= options.max_paths:
                break
            if (
                options.max_transitions is not None
                and sum(r.transitions_executed for _, r in blocks)
                >= options.max_transitions
            ):
                break
    else:
        # --------------------------------------------------------------
        # Multiprocess coordinator
        # --------------------------------------------------------------
        result_queue: Any = multiprocessing.Queue()
        heartbeat_queue: Any = None
        monitor = None
        if options.progress is not None or options.stall_timeout is not None:
            from ..obs import HeartbeatMonitor

            heartbeat_queue = multiprocessing.Queue()
            monitor = HeartbeatMonitor(
                stall_timeout=options.stall_timeout, on_warn=_warn
            )
        steal_budget = multiprocessing.Value("i", 0)
        suspend_flag = multiprocessing.Value("i", 0)

        workers: dict[int, _WorkerHandle] = {}
        #: seq -> pending-heap entry of every assigned-but-uncommitted
        #: lease.  A result whose seq is absent is a late duplicate (its
        #: lease was already re-queued after a presumed death) and is
        #: discarded — commits are exactly-once.
        inflight: dict[int, tuple[tuple[int, ...], int, ChoicePrefix | None]] = {}
        next_worker_id = 0
        respawns = 0
        max_respawns = 2 * jobs + 2
        system_payload = system_factory if system_factory is not None else system

        def spawn(kill_after: int | None = None) -> int:
            nonlocal next_worker_id
            wid = next_worker_id
            next_worker_id += 1
            task_queue: Any = multiprocessing.Queue()
            process = multiprocessing.Process(
                target=_worker_main,
                args=(
                    wid,
                    system_payload,
                    worker_kwargs,
                    task_queue,
                    result_queue,
                    heartbeat_queue,
                    steal_budget,
                    suspend_flag,
                    kill_after,
                ),
                daemon=True,
            )
            process.start()
            workers[wid] = _WorkerHandle(process, task_queue, f"w{wid}")
            return wid

        for i in range(jobs):
            spawn(kill_worker_after_paths if i == 0 else None)

        tick = max(0.05, min(options.progress_interval, 1.0))
        next_tick = started + options.progress_interval
        worker_error: Exception | None = None

        def drain_results(block_for: float | None = None) -> int:
            """Fold every queued result into the coordinator state;
            optionally block up to ``block_for`` seconds for the first."""
            nonlocal stop_early, worker_error
            handled = 0
            timeout = block_for
            while True:
                try:
                    if timeout is not None:
                        msg = result_queue.get(timeout=timeout)
                    else:
                        msg = result_queue.get_nowait()
                except queue_mod.Empty:
                    return handled
                timeout = None
                handled += 1
                wid, seq, payload, residuals, fps, was_steal = msg
                handle = workers.get(wid)
                if handle is not None and handle.assigned is not None and handle.assigned[1] == seq:
                    handle.assigned = None
                entry = inflight.pop(seq, None)
                if entry is None:
                    continue  # late duplicate of a re-queued lease
                if isinstance(payload, Exception):
                    # A deterministic explorer failure would repeat on
                    # re-queue: surface it instead of spinning.
                    worker_error = payload
                    stop_early = True
                    continue
                if handle is not None:
                    handle.leases_done += 1
                    if was_steal:
                        handle.stolen_from += 1
                commit(entry[0], payload, residuals, fps, was_steal)
                if options.stop_on_first and not payload.ok:
                    stop_early = True

        def progress_tick() -> None:
            nonlocal next_tick
            if monitor is not None:
                monitor.drain(heartbeat_queue)
                monitor.check_stalls()
            if options.progress is None:
                return
            now = time.monotonic()
            if now < next_tick:
                return
            next_tick = now + options.progress_interval
            worker_lines = getattr(options.progress, "worker_lines", None)
            if worker_lines is not None and monitor is not None:
                worker_lines(monitor.lines())
            live = live_stats()
            if monitor is not None:
                inflight_states, inflight_transitions = monitor.inflight()
                live.states_visited += inflight_states
                live.transitions_executed += inflight_transitions
            options.progress(live)

        try:
            while True:
                idle = [
                    wid
                    for wid, handle in sorted(workers.items())
                    if handle.assigned is None and handle.process.is_alive()
                ]
                # Assign pending leases to known-idle workers only — the
                # coordinator always knows who holds what, so a death
                # never loses a lease.
                for wid in idle:
                    if not pending:
                        break
                    entry = heapq.heappop(pending)
                    workers[wid].assigned = entry
                    inflight[entry[1]] = entry
                    workers[wid].task_queue.put((entry[1], entry[2]))
                busy = [w for w in workers.values() if w.assigned is not None]
                idle_count = sum(
                    1
                    for w in workers.values()
                    if w.assigned is None and w.process.is_alive()
                )
                if not pending and not busy:
                    break
                # Steal request: only when the queue is dry and hands are
                # empty.  The value is *set* (not added to) each tick, so
                # grants never accumulate across ticks.
                steal_budget.value = idle_count if (not pending and busy) else 0

                drain_results(block_for=tick)
                progress_tick()
                checkpoint_tick([w.assigned for w in busy if w.assigned is not None])

                if stop_early:
                    break
                if should_suspend is not None and should_suspend():
                    suspended = True
                    break
                if deadline is not None and time.monotonic() > deadline:
                    expired = True
                    break
                if (
                    options.max_paths is not None
                    and sum(r.paths_explored for _, r in blocks) >= options.max_paths
                ):
                    break
                if (
                    options.max_transitions is not None
                    and sum(r.transitions_executed for _, r in blocks)
                    >= options.max_transitions
                ):
                    break

                # Liveness: a dead worker's uncommitted lease is re-queued
                # verbatim (commits are atomic — partial work is never
                # merged) and a replacement is spawned.
                for wid, handle in list(workers.items()):
                    if handle.process.is_alive():
                        continue
                    drain_results()  # a commit may have raced the death
                    worker_summary[handle.label] = {
                        "leases": handle.leases_done,
                        "stolen_from": handle.stolen_from,
                        "alive": False,
                    }
                    if handle.assigned is not None:
                        inflight.pop(handle.assigned[1], None)
                        heapq.heappush(pending, handle.assigned)
                        handle.assigned = None
                        requeued += 1
                        _warn(
                            f"worker {handle.label} died mid-lease; "
                            "lease re-queued"
                        )
                    del workers[wid]
                    if respawns < max_respawns and (pending or any(
                        w.assigned is not None for w in workers.values()
                    )):
                        respawns += 1
                        spawn()

                if not workers and pending:
                    # Every worker is gone and respawning is exhausted:
                    # finish the remaining leases in-process rather than
                    # abandoning the search.
                    target_system = (
                        system_factory() if system_factory is not None else system
                    )
                    while pending:
                        key, seq, prefix = heapq.heappop(pending)
                        report, residuals, lease_fps = explore_lease(
                            target_system, prefix, lease_index=seq, **worker_kwargs
                        )
                        commit(key, report, residuals, lease_fps, was_steal=False)
                    break

            if suspended:
                # Stop everything: workers suspend cooperatively between
                # paths and commit their leases; anything that does not
                # commit within the grace period is re-queued uncommitted.
                suspend_flag.value = 1
                grace = time.monotonic() + 10.0
                while (
                    any(w.assigned is not None for w in workers.values())
                    and time.monotonic() < grace
                ):
                    drain_results(block_for=tick)
                    for handle in workers.values():
                        if handle.assigned is not None and not handle.process.is_alive():
                            inflight.pop(handle.assigned[1], None)
                            heapq.heappush(pending, handle.assigned)
                            handle.assigned = None
                            requeued += 1
                for handle in workers.values():
                    if handle.assigned is not None:
                        inflight.pop(handle.assigned[1], None)
                        heapq.heappush(pending, handle.assigned)
                        handle.assigned = None
                        requeued += 1
        finally:
            suspend_flag.value = 1
            for handle in workers.values():
                try:
                    handle.task_queue.put_nowait(None)
                except Exception:
                    pass
            drain_results()
            deadline_join = time.monotonic() + 5.0
            for handle in workers.values():
                handle.process.join(max(0.1, deadline_join - time.monotonic()))
                if handle.process.is_alive():
                    handle.process.terminate()
                    handle.process.join(1.0)
                worker_summary[handle.label] = {
                    "leases": handle.leases_done,
                    "stolen_from": handle.stolen_from,
                    "alive": not handle.process.exitcode
                    or handle.process.exitcode >= 0,
                }
            if monitor is not None:
                monitor.drain(heartbeat_queue)
            if heartbeat_queue is not None:
                heartbeat_queue.close()
            result_queue.close()

        if worker_error is not None:
            raise worker_error

    # ------------------------------------------------------------------
    # Merge
    # ------------------------------------------------------------------
    merged = _merge_lease_blocks(
        blocks, max_events=options.max_events, fingerprints=fingerprints
    )
    if expired:
        merged.incomplete = True
        merged.truncated = True
    if options.max_paths is not None or options.max_transitions is not None:
        totals_paths = merged.paths_explored
        if options.max_paths is not None and totals_paths >= options.max_paths:
            merged.truncated = True
        if (
            options.max_transitions is not None
            and merged.transitions_executed >= options.max_transitions
        ):
            merged.truncated = True
    if suspended:
        merged.incomplete = True
        merged.checkpoint = build_checkpoint()

    merged.stats.strategy = "parallel"
    merged.stats.backtrack = resolved_backtrack
    merged.stats.engine = resolved_engine
    merged.stats.jobs = jobs
    merged.stats.prefixes = leases
    merged.stats.leases = leases
    merged.stats.steals = steals
    merged.stats.leases_requeued = requeued
    merged.stats.wall_time = time.monotonic() - started
    merged.options = options
    merged.worker_summary = dict(sorted(worker_summary.items())) or None
    if options.state_cache != "off":
        merged.stats.state_cache = options.state_cache
        merged.state_caching = {
            **(options.state_caching_info() or {}),
            "per_worker_stores": True,
        }
    return merged
