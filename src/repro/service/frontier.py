"""The versioned on-disk frontier-checkpoint format.

A work-stealing search (:mod:`repro.service.scheduler`) decomposes its
remaining work into **subtree leases** — fully pinned
:class:`~repro.verisoft.parallel.ChoicePrefix` snapshots carrying the
choice stack, the pinned decisions and the partial-order-reduction
context (sleep sets, explored-sibling signatures).  A
:class:`SearchCheckpoint` is the suspended search in one JSON document:

* the **pending leases** — the prefixes of every subtree not yet
  explored, in sequential DFS order;
* the **completed blocks** — one partial
  :class:`~repro.verisoft.results.ExplorationReport` per finished
  lease, keyed by the lease's DFS position
  (:func:`~repro.verisoft.parallel.prefix_key`), kept *unmerged* so the
  final merge reproduces sequential event order exactly no matter how
  many suspend/resume cycles the search went through;
* the **state fingerprints** seen so far (``count_states`` searches),
  canonicalized to strings so the distinct-state union survives JSON;
* the **search options** snapshot and the **system fingerprint**
  (:meth:`repro.runtime.system.System.fingerprint`), so resuming
  against a changed program or changed knobs fails loudly instead of
  producing a report that is half one search and half another.

Because the sleep-set context travels inside the pinned points and the
runtime is deterministic, a checkpoint written by a ``walk``-engine
search resumes bit-identically on the ``compiled`` engine and vice
versa — the engine is a throughput lever, not part of the format.

Version policy (same contract as :mod:`repro.counterex.traceio`):
``version`` is a single integer, bumped on any change that older
readers would misinterpret.  Readers accept exactly the versions they
know; unknown versions raise :class:`FrontierFormatError` instead of
guessing.  New *optional* keys may be added without a bump — readers
must ignore unknown keys.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any

from ..counterex.traceio import (
    choices_from_json,
    choices_to_json,
    steps_from_json,
    steps_to_json,
    violation_from_json,
    violation_to_json,
)
from ..runtime.fingerprint import decode_canonical
from ..verisoft.parallel import ChoicePrefix, PrefixPoint, prefix_key
from ..verisoft.por import TransitionSig
from ..verisoft.results import ExplorationReport, Trace
from ..verisoft.stats import SearchStats

#: Magic format tag of every frontier-checkpoint file.
FRONTIER_FORMAT = "repro-frontier"
#: Current (and only) frontier-format version this build reads and writes.
FRONTIER_VERSION = 1

__all__ = [
    "FRONTIER_FORMAT",
    "FRONTIER_VERSION",
    "FrontierFormatError",
    "SearchCheckpoint",
    "load_frontier",
    "prefix_from_json",
    "prefix_to_json",
    "report_from_json",
    "report_to_json",
    "save_frontier",
]


class FrontierFormatError(ValueError):
    """A frontier checkpoint is malformed or of an unsupported version."""


# ---------------------------------------------------------------------------
# Prefix (de)serialization
# ---------------------------------------------------------------------------


def _sig_to_json(sig: TransitionSig | None) -> list | None:
    if sig is None:
        return None
    return [sig.process, sig.node_id, sig.op, sig.obj, sig.local]


def _sig_from_json(payload: list | None) -> TransitionSig | None:
    if payload is None:
        return None
    process, node_id, op, obj, local = payload
    return TransitionSig(process, node_id, op, obj, bool(local))


def prefix_to_json(prefix: ChoicePrefix) -> list:
    """A :class:`~repro.verisoft.parallel.ChoicePrefix` as JSON: one
    object per pinned point, POR context (sleep set, sibling
    signatures) included.  Sleep sets are emitted sorted so equal
    prefixes serialize byte-identically."""
    out: list = []
    for point in prefix.points:
        # Alternatives are plain scalars: process names for schedule
        # points, toss values (ints) for toss points — JSON-native.
        out.append(
            {
                "kind": point.kind,
                "alternatives": list(point.alternatives),
                "index": point.index,
                "sleep": sorted(
                    (_sig_to_json(sig) for sig in point.sleep),
                    key=lambda entry: [str(part) for part in entry],
                ),
                "sigs": [_sig_to_json(sig) for sig in point.sigs],
            }
        )
    return out


def prefix_from_json(payload: list) -> ChoicePrefix:
    """Inverse of :func:`prefix_to_json`."""
    points = []
    for entry in payload:
        points.append(
            PrefixPoint(
                kind=entry["kind"],
                alternatives=tuple(entry["alternatives"]),
                index=entry["index"],
                sleep=frozenset(
                    _sig_from_json(sig) for sig in entry.get("sleep", ())
                ),
                sigs=tuple(_sig_from_json(sig) for sig in entry.get("sigs", ())),
            )
        )
    return ChoicePrefix(tuple(points))


# ---------------------------------------------------------------------------
# Report-block (de)serialization
# ---------------------------------------------------------------------------

_EVENT_LISTS = ("deadlocks", "violations", "crashes", "divergences")


def _event_to_json(event: Any) -> dict:
    return {
        "violation": violation_to_json(event),
        "choices": choices_to_json(event.trace.choices),
        "steps": steps_to_json(event.trace.steps),
    }


def _event_from_json(payload: dict) -> Any:
    trace = Trace(
        choices_from_json(payload["choices"]),
        steps_from_json(payload.get("steps", [])),
    )
    return violation_from_json(payload["violation"], trace)


def report_to_json(report: ExplorationReport) -> dict:
    """One lease's partial report as JSON: the counters, the recorded
    events (reusing the counterexample trace codecs of
    :mod:`repro.counterex.traceio`) and the full
    :class:`~repro.verisoft.stats.SearchStats` snapshot."""
    doc: dict[str, Any] = {
        "states_visited": report.states_visited,
        "transitions_executed": report.transitions_executed,
        "toss_points": report.toss_points,
        "paths_explored": report.paths_explored,
        "max_depth_reached": report.max_depth_reached,
        "truncated": report.truncated,
        "incomplete": report.incomplete,
    }
    for name in _EVENT_LISTS:
        doc[name] = [_event_to_json(event) for event in getattr(report, name)]
    if report.stats is not None:
        doc["stats"] = report.stats.as_dict()
    return doc


def report_from_json(payload: dict) -> ExplorationReport:
    """Inverse of :func:`report_to_json`."""
    report = ExplorationReport(
        states_visited=payload.get("states_visited", 0),
        transitions_executed=payload.get("transitions_executed", 0),
        toss_points=payload.get("toss_points", 0),
        paths_explored=payload.get("paths_explored", 0),
        max_depth_reached=payload.get("max_depth_reached", 0),
        truncated=payload.get("truncated", False),
        incomplete=payload.get("incomplete", False),
    )
    for name in _EVENT_LISTS:
        getattr(report, name).extend(
            _event_from_json(entry) for entry in payload.get(name, ())
        )
    if "stats" in payload:
        report.stats = SearchStats(**payload["stats"])
    return report


# ---------------------------------------------------------------------------
# The checkpoint
# ---------------------------------------------------------------------------


def canonical_fingerprint(value: Any) -> str:
    """The canonical string form of a state fingerprint.

    State fingerprints are nested tuples of primitives — hashable but
    not JSON-stable (tuples come back as lists).  ``repr`` is injective
    on them, so unioning canonical strings counts distinct states
    exactly as unioning the raw values would; the scheduler
    canonicalizes every fingerprint at lease-commit time so suspend/
    resume cycles never mix representations.

    The explorer now collects fingerprints as canonical *bytes*
    (:meth:`~repro.runtime.system.Run.state_key`); those decode back to
    the structural tuple first, so the wire form — and therefore every
    frontier checkpoint written before the incremental-fingerprint
    change — stays bit-identical (``FRONTIER_VERSION`` unchanged)."""
    if isinstance(value, bytes):
        value = decode_canonical(value)
    return repr(value)


@dataclass
class SearchCheckpoint:
    """A suspended work-stealing search, losslessly.

    Invariant: ``pending`` and ``completed`` partition the search's
    choice tree — every subtree is either below exactly one pending
    lease or accounted in exactly one completed block.  Resuming the
    checkpoint (feeding it back to
    :func:`~repro.service.scheduler.work_stealing_search`) therefore
    completes the search with a final report identical to an
    uninterrupted run.
    """

    #: System fingerprint at suspension time; resuming against a system
    #: with a different fingerprint raises :class:`FrontierFormatError`.
    fingerprint: str | None = None
    #: :meth:`~repro.verisoft.search.SearchOptions.as_dict` snapshot of
    #: the suspended search's options.
    options: dict = field(default_factory=dict)
    #: Unexplored subtree leases, each a fully pinned
    #: :class:`~repro.verisoft.parallel.ChoicePrefix` (``None`` is the
    #: whole-tree root lease of a search suspended before any work).
    pending: list[ChoicePrefix | None] = field(default_factory=list)
    #: Completed per-lease report blocks as ``(key, report)`` pairs,
    #: where ``key`` is the lease's
    #: :func:`~repro.verisoft.parallel.prefix_key` (``()`` for the root
    #: lease).  Kept unmerged — see the module docstring.
    completed: list[tuple[tuple[int, ...], ExplorationReport]] = field(
        default_factory=list
    )
    #: Canonicalized state fingerprints seen so far (``count_states``
    #: searches only; see :func:`canonical_fingerprint`).
    fingerprints: set[str] = field(default_factory=set)
    #: Lifetime work-stealing counters, carried across resume cycles.
    leases: int = 0
    steals: int = 0
    leases_requeued: int = 0
    version: int = FRONTIER_VERSION

    def done(self) -> bool:
        """No pending leases: the checkpoint is a finished search."""
        return not self.pending

    def to_json(self) -> dict:
        """The complete JSON document (dict form)."""
        return {
            "format": FRONTIER_FORMAT,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "options": self.options,
            "pending": [
                None if prefix is None else prefix_to_json(prefix)
                for prefix in self.pending
            ],
            "completed": [
                {"key": list(key), "report": report_to_json(report)}
                for key, report in self.completed
            ],
            "fingerprints": sorted(self.fingerprints),
            "leases": self.leases,
            "steals": self.steals,
            "leases_requeued": self.leases_requeued,
        }

    @classmethod
    def from_json(cls, doc: dict) -> "SearchCheckpoint":
        """Parse and validate a JSON document."""
        if not isinstance(doc, dict) or doc.get("format") != FRONTIER_FORMAT:
            raise FrontierFormatError(
                f"not a {FRONTIER_FORMAT} file (format tag: {doc.get('format')!r})"
                if isinstance(doc, dict)
                else "not a frontier checkpoint: top level must be a JSON object"
            )
        version = doc.get("version")
        if version != FRONTIER_VERSION:
            raise FrontierFormatError(
                f"unsupported frontier format version {version!r} "
                f"(this build reads version {FRONTIER_VERSION})"
            )
        if "pending" not in doc or "completed" not in doc:
            raise FrontierFormatError(
                "frontier checkpoint lacks 'pending' or 'completed'"
            )
        return cls(
            fingerprint=doc.get("fingerprint"),
            options=doc.get("options", {}),
            pending=[
                None if entry is None else prefix_from_json(entry)
                for entry in doc["pending"]
            ],
            completed=[
                (tuple(entry["key"]), report_from_json(entry["report"]))
                for entry in doc["completed"]
            ],
            fingerprints=set(doc.get("fingerprints", ())),
            leases=doc.get("leases", 0),
            steals=doc.get("steals", 0),
            leases_requeued=doc.get("leases_requeued", 0),
            version=version,
        )

    def check_system(self, system) -> None:
        """Raise unless ``system`` matches the checkpointed fingerprint
        (a prefix of choices is only meaningful against the exact
        program it was recorded from)."""
        if self.fingerprint is None:
            return
        actual = system.fingerprint()
        if actual != self.fingerprint:
            raise FrontierFormatError(
                "frontier checkpoint was recorded from a different system "
                f"(checkpoint fingerprint {self.fingerprint}, "
                f"current {actual}); refusing to resume"
            )

    def sorted_completed(self) -> list[tuple[tuple[int, ...], ExplorationReport]]:
        """The completed blocks in sequential DFS order (lexicographic
        on lease keys; a suspended lease's own partial block is a strict
        tuple-prefix of its residuals' keys, so it sorts first)."""
        return sorted(self.completed, key=lambda entry: entry[0])


def pending_key(prefix: ChoicePrefix | None) -> tuple[int, ...]:
    """DFS-order key of a pending lease (root lease sorts first)."""
    return () if prefix is None else prefix_key(prefix)


def save_frontier(
    path: str | pathlib.Path, checkpoint: SearchCheckpoint
) -> pathlib.Path:
    """Atomically write ``checkpoint`` as JSON; returns the path.

    Write-then-rename, so a reader (or a crash) never observes a
    half-written frontier — the job service checkpoints *live* searches
    on a timer."""
    path = pathlib.Path(path)
    tmp = path.with_name(path.name + ".tmp")
    tmp.write_text(json.dumps(checkpoint.to_json(), indent=2) + "\n")
    tmp.replace(path)
    return path


def load_frontier(path: str | pathlib.Path) -> SearchCheckpoint:
    """Read and validate a frontier checkpoint."""
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        raise FrontierFormatError(f"{path}: not valid JSON: {err}") from err
    return SearchCheckpoint.from_json(doc)
