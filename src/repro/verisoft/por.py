"""Partial-order reduction: persistent sets and sleep sets.

VeriSoft's state-space search is tractable *because* of partial-order
methods [God96]; this module provides the two reductions it uses:

**Persistent sets.**  At a global state only a *persistent* subset of
the enabled transitions needs exploring.  A set ``T`` of transitions is
persistent in ``s`` if nothing the other processes can do from ``s``
(without executing a member of ``T``) is dependent with any member of
``T``.  We compute persistent sets from (a) the *dynamic* next visible
operation of every process and (b) a *static over-approximation* of the
set of communication objects each process may still touch (its
*footprint*, a CFG/call-graph reachability computed once per process at
launch).  Starting from one enabled process, we close the candidate set
under "some outside process's footprint intersects the objects of the
candidates' next operations", and take the smallest closure over all
enabled seeds.

Purely local transitions — ``VS_assert`` and sends to an
:class:`~repro.runtime.objects.EnvSink` (the most general environment
accepts anything, and no process can observe a sink) — conflict with
nothing, so a process whose next operation is local forms a singleton
persistent set: the classic best case.

**Sleep sets.**  Orthogonally, a sleep set carries already-explored
sibling transitions into a successor state and prunes them there if they
are independent with the transition taken.  Dependency is judged by the
object touched: operations on distinct objects are independent;
``VS_assert``/sink operations are independent with everything.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..cfg.graph import ControlFlowGraph
from ..cfg.nodes import NodeKind
from ..dataflow.alias import PointsToResult
from ..lang import ast
from ..runtime.objects import EnvSink
from ..runtime.ops import BUILTIN_OPERATIONS
from ..runtime.process import Process, ProcessStatus
from ..runtime.system import Run
from ..runtime.values import ObjectRef

#: Sentinel meaning "may touch any object".
ANY_OBJECT = "<any>"


# ---------------------------------------------------------------------------
# Static object footprints
# ---------------------------------------------------------------------------


def _object_arg_names(
    proc: str,
    node,
    launch_env: dict[str, set[str]],
    points_to: "PointsToResult | None",
) -> set[str]:
    """Which objects might the visible operation at ``node`` touch?

    Resolves string atoms directly, top-level parameters through the
    launch environment, and other variables through the may-alias
    analysis (``c = channel('ctl'); send(c, v)``); anything unresolvable
    degrades to :data:`ANY_OBJECT`.
    """
    spec = BUILTIN_OPERATIONS.get(node.callee)
    if spec is None or spec.object_arg is None:
        return set()
    arg = node.args[spec.object_arg] if spec.object_arg < len(node.args) else None
    if isinstance(arg, ast.StrLit):
        return {arg.value}
    if isinstance(arg, ast.Name):
        if arg.ident in launch_env:
            return set(launch_env[arg.ident])
        if points_to is not None:
            resolved = points_to.objects_of(proc, arg)
            if resolved is not None:
                return resolved
    return {ANY_OBJECT}


def process_footprint(
    cfgs: dict[str, ControlFlowGraph],
    top_proc: str,
    launch_args: dict[str, object],
    points_to: "PointsToResult | None" = None,
) -> set[str]:
    """Objects a process may ever touch, over-approximated statically.

    ``launch_args`` maps the top-level procedure's parameters to their
    actual launch values, so channels passed at process creation are
    resolved exactly; object references flowing through other variables
    resolve through ``points_to`` (the program-wide may-alias result)
    when supplied.  Anything still unresolved falls back to
    :data:`ANY_OBJECT`.
    """
    launch_env: dict[str, set[str]] = {}
    for param, value in launch_args.items():
        if isinstance(value, ObjectRef):
            launch_env[param] = {value.name}
    footprint: set[str] = set()
    visited_procs: set[str] = set()
    worklist = [top_proc]
    top = True
    while worklist:
        proc = worklist.pop()
        if proc in visited_procs:
            continue
        visited_procs.add(proc)
        cfg = cfgs.get(proc)
        if cfg is None:
            continue
        env = launch_env if top else {}
        top = False
        for node in cfg:
            if node.kind is not NodeKind.CALL:
                continue
            if node.callee in BUILTIN_OPERATIONS:
                footprint |= _object_arg_names(proc, node, env, points_to)
            elif node.callee in cfgs:
                worklist.append(node.callee)
    return footprint


# ---------------------------------------------------------------------------
# Transition signatures and independence
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class TransitionSig:
    """Identity of a process's pending transition, for sleep sets."""

    process: str
    node_id: int
    op: str
    obj: str | None
    local: bool  # VS_assert / env-sink op: conflicts with nothing


#: Interned signatures: plain-tuple field key → ``(sig, dense id)``.
#: The search hot loop keys its persistent-set memo on tuples of the
#: dense ids — an int-tuple hash instead of re-hashing dataclasses
#: every state — and the tuple key keeps the lookup itself at C speed
#: (no dataclass construction or ``__hash__`` on the hit path).
_SIG_IDS: dict[tuple, tuple] = {}


def intern_signature(process: Process, request) -> tuple:
    """Build, intern and cache the signature entry for a pending request.

    Returns ``(request, sig, sig_id)`` and stores it on the process;
    requests are immutable and compared by identity, so the cache stays
    valid until the process actually moves (including across restores,
    which reinstall the *same* request object).
    """
    if request.obj is None:
        fields = (process.name, request.node_id, request.op, None, True)
    else:
        local = isinstance(request.obj, EnvSink) and not request.obj.visible_in_state
        fields = (process.name, request.node_id, request.op, request.obj.name, local)
    interned = _SIG_IDS.get(fields)
    if interned is None:
        interned = (TransitionSig(*fields), len(_SIG_IDS))
        _SIG_IDS[fields] = interned
    entry = (request, interned[0], interned[1])
    process._sig_entry = entry
    return entry


def signature_of(process: Process) -> TransitionSig | None:
    """The pending transition's signature, or None if none is pending."""
    request = process.visible_request
    if request is None:
        return None
    entry = process._sig_entry
    if entry is not None and entry[0] is request:
        return entry[1]
    return intern_signature(process, request)[1]


def independent(a: TransitionSig, b: TransitionSig) -> bool:
    """Conservative independence: distinct objects commute; local
    transitions commute with everything; same object conflicts."""
    if a.process == b.process:
        return False
    if a.local or b.local:
        return True
    return a.obj != b.obj


# ---------------------------------------------------------------------------
# Persistent-set computation
# ---------------------------------------------------------------------------


class PersistentSetComputer:
    """Computes persistent subsets of the enabled processes of a run."""

    def __init__(self, footprints: dict[str, set[str]]):
        #: process name -> static object footprint (from launch point).
        self._footprints = footprints

    def persistent_choices(
        self, run: Run, enabled: list[Process] | None = None
    ) -> list[Process]:
        """A persistent subset of ``run``'s enabled processes.

        Returns the full enabled set when no reduction applies.  The
        caller may pass the enabled set (already computed by the search
        hot loop) to avoid re-scanning the processes.
        """
        if enabled is None:
            enabled = run.enabled_processes()
        if len(enabled) <= 1:
            return enabled

        # One signature per live process, computed once and shared by
        # every closure below (the closures revisit the same processes).
        live = [
            process
            for process in run.processes
            if process.status is ProcessStatus.AT_VISIBLE
        ]
        sigs = {process.name: signature_of(process) for process in live}

        # Best case: a purely local transition is persistent on its own.
        for process in enabled:
            sig = sigs[process.name]
            if sig is not None and sig.local:
                return [process]

        best = enabled
        for seed in enabled:
            candidate = self._closure(seed, live, sigs)
            candidate_enabled = [p for p in candidate if p in enabled]
            if len(candidate_enabled) < len(best):
                best = candidate_enabled
                if len(best) == 1:
                    break
        return best

    def _closure(
        self,
        seed: Process,
        live: list[Process],
        sigs: dict[str, TransitionSig | None],
    ) -> list[Process]:
        members: dict[str, Process] = {seed.name: seed}
        # Objects touched by the next operations of current members.
        conflict_objects: set[str] = set()
        sig = sigs[seed.name]
        if sig is not None and sig.obj is not None and not sig.local:
            conflict_objects.add(sig.obj)
        changed = True
        while changed:
            changed = False
            for process in live:
                if process.name in members:
                    continue
                footprint = self._footprints.get(process.name, {ANY_OBJECT})
                overlaps = (
                    ANY_OBJECT in footprint
                    or footprint & conflict_objects
                )
                if overlaps:
                    members[process.name] = process
                    other = sigs[process.name]
                    if other is not None and other.obj is not None and not other.local:
                        conflict_objects.add(other.obj)
                    changed = True
        return list(members.values())


# ---------------------------------------------------------------------------
# Sleep sets
# ---------------------------------------------------------------------------


def filter_sleep(
    sleep: frozenset[TransitionSig], taken: TransitionSig
) -> frozenset[TransitionSig]:
    """The sleep set carried into the successor after executing ``taken``."""
    return frozenset(sig for sig in sleep if independent(sig, taken))


def augment_sleep(
    sleep: frozenset[TransitionSig], explored_siblings: Iterable[TransitionSig], taken: TransitionSig
) -> frozenset[TransitionSig]:
    """Sleep set for ``taken``'s subtree: inherited members plus the
    already-explored siblings, keeping only those independent with
    ``taken``."""
    merged = set(sleep) | set(explored_siblings)
    return frozenset(sig for sig in merged if independent(sig, taken))
