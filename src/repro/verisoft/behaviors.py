"""Visible-behaviour comparison utilities.

Theorem 6 relates the closed system ``S'`` to ``S × E_S`` up to *erased
values*: every computation of ``S × E_S`` has a counterpart in ``S'``
with the same visible operations, where values the transformation erased
appear as the abstract value TOP.  These helpers implement that
matching, and are what the Figure 2/3 experiments and the property
tests use to compare behaviour sets.
"""

from __future__ import annotations

from typing import Iterable

from ..runtime.values import TOP


def matches_with_erasure(closed_trace: tuple, open_trace: tuple) -> bool:
    """Whether a closed-system output trace matches an open-system one.

    Traces match position-wise; an erased (TOP) element of the closed
    trace matches anything.
    """
    if len(closed_trace) != len(open_trace):
        return False
    return all(c is TOP or c == o for c, o in zip(closed_trace, open_trace))


def behavior_inclusion(
    open_traces: Iterable[tuple], closed_traces: Iterable[tuple]
) -> bool:
    """Theorem-6 inclusion: every open behaviour has a matching closed one."""
    closed = list(closed_traces)
    return all(
        any(matches_with_erasure(ct, ot) for ct in closed) for ot in open_traces
    )


def missing_behaviors(
    open_traces: Iterable[tuple], closed_traces: Iterable[tuple]
) -> list[tuple]:
    """Open behaviours with no matching closed behaviour (diagnostics)."""
    closed = list(closed_traces)
    return [
        ot
        for ot in open_traces
        if not any(matches_with_erasure(ct, ot) for ct in closed)
    ]
