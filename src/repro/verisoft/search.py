"""The unified search API: one options object, one entry point.

Historically the package grew three entry points with overlapping knob
sets — ``Explorer(...)``/``explore()`` for exhaustive DFS,
``random_walks()`` for testing mode, and the parallel driver.
:class:`SearchOptions` puts every depth/budget/POR/telemetry knob in one
dataclass and :func:`run_search` dispatches on ``options.strategy``:

    from repro import SearchOptions, run_search

    report = run_search(system, SearchOptions(strategy="parallel", jobs=4))
    print(report.summary())
    print(report.stats.describe())

:func:`run_search` is the only entry point — the historical
``explore()``/``random_walks()`` wrappers have been removed.
"""

from __future__ import annotations

from dataclasses import dataclass, field, fields, replace
from typing import Any, Callable

from ..runtime.engine import ENGINES
from ..runtime.system import Run, System
from .results import ExplorationReport, Trace
from .stats import SearchStats

#: The strategies :func:`run_search` understands.
STRATEGIES = ("dfs", "random", "parallel")

#: The state-cache modes (see :attr:`SearchOptions.cache_mode`).
CACHE_MODES = ("safe", "unsafe-fast")

#: The DFS backtracking modes (see :attr:`SearchOptions.backtrack`).
BACKTRACK_MODES = ("restore", "replay")

#: The parallel scheduling modes (see :attr:`SearchOptions.scheduler`).
SCHEDULERS = ("static", "steal")

# Re-exported from :mod:`repro.runtime.engine` so the search layer's
# mode tuples (STRATEGIES, CACHE_MODES, BACKTRACK_MODES, ENGINES) live
# side by side for CLI/choice wiring.
__all__ = [
    "BACKTRACK_MODES",
    "CACHE_MODES",
    "ENGINES",
    "SCHEDULERS",
    "STRATEGIES",
    "SearchOptions",
    "run_search",
]


@dataclass
class SearchOptions:
    """Every knob of every search strategy, in one place.

    Only the fields relevant to the selected :attr:`strategy` are used;
    the rest are ignored (e.g. ``walks`` by ``"dfs"``, ``jobs`` by
    ``"random"``).
    """

    #: ``"dfs"`` (exhaustive, bounded-depth, stateless),
    #: ``"random"`` (independent random walks), or
    #: ``"parallel"`` (prefix-partitioned multi-process DFS).
    strategy: str = "dfs"

    # -- shared bounds and budgets -----------------------------------------
    #: Transitions per path; exploration is complete up to this depth.
    max_depth: int = 100
    #: Persistent-set + sleep-set partial-order reduction (dfs/parallel).
    por: bool = True
    #: How the DFS backtracks (dfs/parallel): ``"restore"`` (default;
    #: undo-journal checkpointing — backtracking rewinds the live run in
    #: O(changes) instead of re-executing the path prefix) or
    #: ``"replay"`` (classic VeriSoft stateless re-execution).  Restore
    #: automatically falls back to replay when any communication object
    #: is not journalable.  Both modes explore the identical choice tree
    #: and report identical counters apart from
    #: ``replays``/``replayed_transitions``/``restores``.
    backtrack: str = "restore"
    #: Which execution engine steps each process (all strategies):
    #: ``"walk"`` (the reference tree-walking interpreter,
    #: :mod:`repro.runtime.interp`) or ``"compiled"`` (CFGs translated
    #: to Python closures with slab-packed frames,
    #: :mod:`repro.runtime.compile`).  Both engines are observationally
    #: identical — same choice trees, counters and triage groups — so
    #: ``"compiled"`` is purely a throughput lever.  When the program
    #: uses a construct the compiler does not support (pointers, for
    #: one) the search silently falls back to ``"walk"``; the resolved
    #: engine is recorded in ``report.stats.engine``.
    engine: str = "walk"
    #: Additionally hash every visited state to count distinct states.
    count_states: bool = False
    #: Stop at the first deadlock/violation/crash/divergence.
    stop_on_first: bool = False
    #: Budgets; ``truncated`` is set when one trips.
    max_paths: int | None = None
    max_transitions: int | None = None
    #: Wall-clock budget (seconds).  When it expires the report is
    #: flagged ``incomplete=True`` instead of the search running on.
    time_budget: float | None = None
    #: Cap on recorded events of each kind (counting continues).
    max_events: int = 25

    # -- state-space caching (dfs/parallel; see repro.statespace) ------------
    #: Visited-state store pruning revisited subtrees: ``"off"`` (pure
    #: stateless search), ``"exact"`` (full snapshots, sound),
    #: ``"hashcompact"`` (64-bit digests) or ``"bitstate"``
    #: (SPIN-style Bloom filter).  Ignored by ``"random"``.
    state_cache: str = "off"
    #: Bitstate store size: ``2**cache_bits`` bits (exact/hashcompact
    #: ignore it).
    cache_bits: int = 24
    #: ``"safe"`` disables sleep-set pruning while caching (sleep sets
    #: are path-dependent, and combined with caching they can miss
    #: transitions); ``"unsafe-fast"`` keeps them for maximum pruning at
    #: the cost of possibly missing interleavings.  Irrelevant while
    #: ``state_cache="off"``.
    cache_mode: str = "safe"

    # -- random-walk strategy ----------------------------------------------
    walks: int = 100
    seed: int = 0

    # -- parallel strategy --------------------------------------------------
    #: Worker processes; 0 means ``os.cpu_count()``.  ``jobs=1`` runs the
    #: partition/merge pipeline in-process (the determinism baseline).
    jobs: int = 0
    #: Depth of the sequential prefix enumeration; ``None`` auto-tunes
    #: until there are enough prefixes to keep the pool busy.
    prefix_depth: int | None = None
    #: How the parallel strategy schedules subtrees over the pool:
    #: ``"static"`` (default; one up-front prefix partition at
    #: ``prefix_depth``, :mod:`repro.verisoft.parallel`) or ``"steal"``
    #: (work stealing over serialized subtree leases,
    #: :mod:`repro.service.scheduler` — idle workers split running ones,
    #: dead workers' leases are re-queued, and the whole search can be
    #: suspended to a frontier checkpoint and resumed later).  Both
    #: produce reports counter-for-counter identical to sequential
    #: search, modulo the backtracking-cost group.  ``prefix_depth`` is
    #: ignored by ``"steal"`` (the partition is adaptive).
    scheduler: str = "static"

    # -- telemetry -----------------------------------------------------------
    #: Periodic callback receiving the live :class:`SearchStats`
    #: (e.g. :class:`~repro.verisoft.stats.ProgressPrinter`).
    progress: Callable[[SearchStats], None] | None = field(
        default=None, repr=False, compare=False
    )
    progress_interval: float = 0.5

    # -- observability (repro.obs) -------------------------------------------
    #: Collect a hot-spot profile (:class:`~repro.obs.profile.
    #: HotSpotProfiler`) and attach it as ``report.profile``.  Parallel
    #: runs merge per-worker profiles; the merged counts equal a
    #: sequential run's.
    profile: bool = False
    #: Collect CFG/source/environment-input coverage
    #: (:class:`~repro.obs.coverage.CoverageCollector`) and attach it as
    #: ``report.coverage``.  Exact-counter anchored like the profiler:
    #: parallel/steal runs merge per-worker shards into counters
    #: bit-identical to a sequential run's, on either engine.
    coverage: bool = False
    #: A :class:`~repro.obs.tracer.Tracer` receiving span/instant events
    #: (pipeline phases, per-path DFS spans, worker timelines).  Not
    #: serialized; the parallel driver builds a fresh tracer inside each
    #: worker and merges the payloads into this one.
    tracer: Any = field(default=None, repr=False, compare=False)
    #: Parallel only: warn when a worker reports no progress for this
    #: many seconds (``None`` disables stall detection; heartbeats still
    #: feed the per-worker ticker lines).
    stall_timeout: float | None = 10.0

    # -- dfs-only extension hooks (not picklable; rejected by "parallel") ----
    on_leaf: Callable[[Run, Trace], None] | None = field(
        default=None, repr=False, compare=False
    )
    stop_when: Callable[[ExplorationReport], bool] | None = field(
        default=None, repr=False, compare=False
    )

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot of the options.

        Callback/handle fields (``progress``, ``on_leaf``,
        ``stop_when``, ``tracer``) are omitted: they cannot be
        serialized and are irrelevant to reproducing a search.
        Round-trips through ``SearchOptions(**d)``; persisted inside
        saved counterexample traces (:mod:`repro.counterex.traceio`) as
        the ``search`` metadata block.
        """
        out: dict[str, Any] = {}
        for f in fields(self):
            if f.name in ("progress", "on_leaf", "stop_when", "tracer"):
                continue
            out[f.name] = getattr(self, f.name)
        return out

    def make_state_store(self):
        """A fresh :class:`~repro.statespace.stores.StateStore` per the
        cache configuration (``None`` when caching is off).  Each call
        returns a *new empty* store: sequential searches own one, the
        parallel driver builds one per worker."""
        from ..statespace.stores import make_store

        return make_store(self.state_cache, cache_bits=self.cache_bits)

    @property
    def sleep_sets_active(self) -> bool:
        """Whether the explorer keeps sleep-set pruning: always without
        caching, only in ``unsafe-fast`` mode with it (sleep sets are
        path-dependent and unsound under revisit pruning)."""
        return self.state_cache == "off" or self.cache_mode != "safe"

    def state_caching_info(self) -> dict | None:
        """The ``state_caching`` provenance block recorded on reports
        (``None`` when caching is off)."""
        if self.state_cache == "off":
            return None
        info: dict[str, Any] = {"store": self.state_cache, "mode": self.cache_mode}
        if self.state_cache == "bitstate":
            info["cache_bits"] = self.cache_bits
        info["sleep_sets"] = self.sleep_sets_active
        return info

    def validate(self) -> None:
        if self.strategy not in STRATEGIES:
            raise ValueError(
                f"unknown search strategy {self.strategy!r}; "
                f"expected one of {', '.join(STRATEGIES)}"
            )
        if self.max_depth < 1:
            raise ValueError("max_depth must be >= 1")
        from ..statespace.stores import STORE_KINDS

        if self.state_cache not in STORE_KINDS:
            raise ValueError(
                f"unknown state cache {self.state_cache!r}; "
                f"expected one of {', '.join(STORE_KINDS)}"
            )
        if self.cache_mode not in CACHE_MODES:
            raise ValueError(
                f"unknown cache mode {self.cache_mode!r}; "
                f"expected one of {', '.join(CACHE_MODES)}"
            )
        if self.state_cache == "bitstate" and not (3 <= self.cache_bits <= 40):
            raise ValueError("cache_bits must be in 3..40")
        if self.backtrack not in BACKTRACK_MODES:
            raise ValueError(
                f"unknown backtrack mode {self.backtrack!r}; "
                f"expected one of {', '.join(BACKTRACK_MODES)}"
            )
        if self.engine not in ENGINES:
            raise ValueError(
                f"unknown execution engine {self.engine!r}; "
                f"expected one of {', '.join(ENGINES)}"
            )
        if self.scheduler not in SCHEDULERS:
            raise ValueError(
                f"unknown parallel scheduler {self.scheduler!r}; "
                f"expected one of {', '.join(SCHEDULERS)}"
            )
        if self.strategy == "parallel":
            if self.on_leaf is not None or self.stop_when is not None:
                raise ValueError(
                    "on_leaf/stop_when callbacks cannot cross process "
                    "boundaries; use strategy='dfs' or drop the callback"
                )
            if self.prefix_depth is not None and self.prefix_depth < 0:
                raise ValueError("prefix_depth must be >= 0")
            if self.jobs < 0:
                raise ValueError("jobs must be >= 0 (0 = all cores)")


def run_search(
    system: System,
    options: SearchOptions | None = None,
    *,
    system_factory: Callable[[], System] | None = None,
    **overrides: Any,
) -> ExplorationReport:
    """Search ``system`` according to ``options`` and return the report.

    Field overrides may be given as keywords::

        run_search(system, strategy="parallel", jobs=4, max_depth=60)

    ``system_factory`` (parallel only) rebuilds the system inside each
    worker for systems that cannot be pickled.
    """
    if options is None:
        options = SearchOptions()
    if overrides:
        options = replace(options, **overrides)
    options.validate()

    report = _dispatch(system, options, system_factory)
    # Every report is self-reproducing: it records how it was produced
    # (including the PRNG seed for the random strategy), so a saved
    # trace or a bug report never depends on the caller's shell history.
    report.options = options
    if options.strategy == "random":
        report.seed = options.seed
    elif options.state_cache != "off":
        # Merge the mode into whatever the explorer recorded (store
        # kind, shape, sleep-set status) — the explorer does not know
        # the search-layer mode name.
        report.state_caching = {
            **(options.state_caching_info() or {}),
            **(report.state_caching or {}),
            "mode": options.cache_mode,
        }
    return report


def _dispatch(
    system: System,
    options: SearchOptions,
    system_factory: Callable[[], System] | None,
) -> ExplorationReport:
    profiler = None
    if options.profile:
        from ..obs import HotSpotProfiler

        profiler = HotSpotProfiler()
    collector = None
    if options.coverage:
        from ..obs import CoverageCollector

        collector = CoverageCollector(system)

    if options.strategy == "dfs":
        from .explorer import Explorer

        report = Explorer(
            system,
            max_depth=options.max_depth,
            backtrack=options.backtrack,
            engine=options.engine,
            por=options.por,
            sleep_sets=options.sleep_sets_active,
            state_store=options.make_state_store(),
            count_states=options.count_states,
            stop_on_first=options.stop_on_first,
            max_paths=options.max_paths,
            max_transitions=options.max_transitions,
            time_budget=options.time_budget,
            max_events=options.max_events,
            on_leaf=options.on_leaf,
            stop_when=options.stop_when,
            progress=options.progress,
            progress_interval=options.progress_interval,
            on_step=profiler,
            tracer=options.tracer,
            coverage=collector,
            phase_profile=profiler.phases if profiler is not None else None,
        ).run()
        report.profile = profiler
        report.coverage = collector
        return report

    if options.strategy == "random":
        from .random_walk import random_walks

        report = random_walks(
            system,
            walks=options.walks,
            max_depth=options.max_depth,
            seed=options.seed,
            engine=options.engine,
            max_events=options.max_events,
            stop_on_first=options.stop_on_first,
            time_budget=options.time_budget,
            progress=options.progress,
            progress_interval=options.progress_interval,
            on_step=profiler,
            tracer=options.tracer,
            coverage=collector,
        )
        report.profile = profiler
        report.coverage = collector
        return report

    if options.scheduler == "steal":
        from ..service.scheduler import work_stealing_search

        return work_stealing_search(system, options, system_factory=system_factory)

    from .parallel import parallel_search

    return parallel_search(system, options, system_factory=system_factory)
