"""Exploration results: events, traces and the final report.

VeriSoft reports deadlocks and assertion violations together with a
scenario that reproduces them; our :class:`Trace` plays the same role —
it is the exact sequence of scheduling and toss choices, so feeding it
back through the deterministic runtime replays the buggy execution
(:func:`repro.verisoft.explorer.replay`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from ..counterex.triage import ViolationGroup
    from .search import SearchOptions
    from .stats import SearchStats


@dataclass(frozen=True, slots=True)
class ScheduleChoice:
    """At a global state, run this process's next visible operation."""

    process: str

    def describe(self) -> str:
        return f"run {self.process}"


@dataclass(frozen=True, slots=True)
class TossChoice:
    """Answer the pending ``VS_toss`` of ``process`` with ``value``."""

    process: str
    value: int

    def describe(self) -> str:
        return f"{self.process}: VS_toss -> {self.value}"


Choice = ScheduleChoice | TossChoice


@dataclass(frozen=True, slots=True)
class TraceStep:
    """One executed visible operation, for human-readable scenarios."""

    process: str
    op: str
    obj: str | None
    detail: str = ""

    def describe(self) -> str:
        where = f" on {self.obj}" if self.obj else ""
        extra = f" {self.detail}" if self.detail else ""
        return f"{self.process}: {self.op}{where}{extra}"


@dataclass(frozen=True, slots=True)
class Trace:
    """A replayable exploration path."""

    choices: tuple[Choice, ...]
    steps: tuple[TraceStep, ...]

    def describe(self) -> str:
        return "\n".join(step.describe() for step in self.steps)

    def __len__(self) -> int:
        return len(self.choices)


@dataclass(frozen=True, slots=True)
class DeadlockEvent:
    """A reachable global state where no process can make progress."""

    trace: Trace
    blocked: tuple[str, ...]  # names of the processes waiting forever
    #: For each blocked process: (name, pending op, object name or None).
    waiting: tuple[tuple[str, str, str | None], ...] = ()

    def describe(self) -> str:
        if self.waiting:
            details = ", ".join(
                f"{name} on {op}({obj})" if obj else f"{name} on {op}"
                for name, op, obj in self.waiting
            )
        else:
            details = ", ".join(self.blocked)
        return f"deadlock (blocked: {details}) after:\n{self.trace.describe()}"


@dataclass(frozen=True, slots=True)
class AssertionViolationEvent:
    """A ``VS_assert`` whose subject evaluated to false."""

    trace: Trace
    process: str
    proc_name: str
    node_id: int

    def describe(self) -> str:
        return (
            f"assertion violated in {self.process} "
            f"({self.proc_name}, node {self.node_id}) after:\n{self.trace.describe()}"
        )


@dataclass(frozen=True, slots=True)
class CrashEvent:
    """A process hit a runtime fault (C-style unspecified behaviour)."""

    trace: Trace
    process: str
    message: str


@dataclass(frozen=True, slots=True)
class DivergenceEvent:
    """A process exceeded the invisible-step budget (footnote 1)."""

    trace: Trace
    process: str


@dataclass
class ExplorationReport:
    """Aggregate statistics and findings of one exploration."""

    #: Global states encountered, counting revisits (the stateless search
    #: does not know when it re-reaches a state).
    states_visited: int = 0
    #: Distinct global states, when state counting was enabled.
    distinct_states: int | None = None
    transitions_executed: int = 0
    toss_points: int = 0
    paths_explored: int = 0
    max_depth_reached: int = 0
    #: True when a depth/path/transition bound cut the search short.
    truncated: bool = False
    #: True when a wall-clock ``time_budget`` expired before the search
    #: covered its whole tree: the report describes *part* of the state
    #: space, not all of it.
    incomplete: bool = False
    #: Telemetry of the search that produced this report
    #: (:class:`~repro.verisoft.stats.SearchStats`), when collected.
    stats: "SearchStats | None" = field(default=None, repr=False, compare=False)
    #: The :class:`~repro.verisoft.search.SearchOptions` the search ran
    #: with, recorded by :func:`~repro.verisoft.search.run_search` so
    #: every report is self-reproducing without the caller's shell
    #: history (persisted into saved traces by :mod:`repro.counterex`).
    options: "SearchOptions | None" = field(default=None, repr=False, compare=False)
    #: PRNG seed of the random strategy (``None`` for deterministic
    #: strategies, which need no seed to reproduce).
    seed: int | None = field(default=None, repr=False, compare=False)
    #: State-space caching configuration of the search that produced
    #: this report (``None`` when caching was off): store kind, store
    #: shape (``cache_bits`` for bitstate), the cache ``mode`` and
    #: whether sleep sets stayed active.  A cached report's counters are
    #: *not* comparable to an uncached one's — revisited subtrees were
    #: pruned — so the provenance travels with the numbers.
    state_caching: dict | None = field(default=None, repr=False, compare=False)
    #: Hot-spot profile of the search
    #: (:class:`~repro.obs.profile.HotSpotProfiler`), attached when the
    #: search ran with ``profile=True``; parallel runs merge the
    #: per-worker profiles here.
    profile: Any = field(default=None, repr=False, compare=False)
    #: Coverage collector of the search
    #: (:class:`~repro.obs.coverage.CoverageCollector`), attached when
    #: the search ran with ``coverage=True``; parallel runs merge the
    #: per-worker shards here.
    coverage: Any = field(default=None, repr=False, compare=False)
    #: Portable trace-event payload (``Tracer.export()`` dict) carried
    #: back from a worker process so the coordinator can merge it into
    #: its own timeline; ``None`` everywhere else.
    trace_payload: dict | None = field(default=None, repr=False, compare=False)
    #: Work-stealing scheduler only: per-worker accounting (leases
    #: completed, steals donated, final liveness) keyed by worker label,
    #: recorded into run manifests.  Timing-dependent — not part of the
    #: counter-parity contract.  ``None`` for every other driver.
    worker_summary: dict | None = field(default=None, repr=False, compare=False)
    #: Work-stealing scheduler only: when a search was suspended (stop
    #: request, checkpoint request) rather than run to exhaustion, the
    #: :class:`~repro.service.frontier.SearchCheckpoint` capturing the
    #: partial results and the pending subtree leases; resuming it
    #: completes the search with a final report identical to an
    #: uninterrupted run.  ``None`` when the search completed.
    checkpoint: Any = field(default=None, repr=False, compare=False)

    deadlocks: list[DeadlockEvent] = field(default_factory=list)
    violations: list[AssertionViolationEvent] = field(default_factory=list)
    crashes: list[CrashEvent] = field(default_factory=list)
    divergences: list[DivergenceEvent] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """No deadlock, violation, crash or divergence found."""
        return not (self.deadlocks or self.violations or self.crashes or self.divergences)

    def all_events(self) -> list:
        """Every recorded event, in stable report order (deadlocks,
        assertion violations, crashes, divergences)."""
        return [*self.deadlocks, *self.violations, *self.crashes, *self.divergences]

    def triage(self) -> "list[ViolationGroup]":
        """Group this report's events by violation signature (see
        :mod:`repro.counterex.triage`): events with the same kind and
        location collapse into one group with a representative trace."""
        from ..counterex.triage import group_events

        return group_events(self.all_events())

    def summary(self) -> str:
        parts = [
            f"paths={self.paths_explored}",
            f"states={self.states_visited}",
            f"transitions={self.transitions_executed}",
        ]
        if self.distinct_states is not None:
            parts.append(f"distinct={self.distinct_states}")
        if self.state_caching is not None:
            parts.append(f"cache={self.state_caching.get('store', '?')}")
        parts.append(f"deadlocks={len(self.deadlocks)}")
        parts.append(f"violations={len(self.violations)}")
        if self.crashes:
            parts.append(f"crashes={len(self.crashes)}")
        if self.divergences:
            parts.append(f"divergences={len(self.divergences)}")
        events = self.all_events()
        if events:
            parts.append(f"groups={len(self.triage())}")
        if self.truncated:
            parts.append("TRUNCATED")
        if self.incomplete:
            parts.append("INCOMPLETE")
        return " ".join(parts)
