"""Random-walk exploration: VeriSoft's lightweight testing mode.

For state spaces far beyond exhaustive reach (the paper's real target
was an application of hundreds of thousands of lines), a cheap
complement to bounded-exhaustive search is running many independent
random walks: at every global state pick a random enabled process, at
every ``VS_toss`` a random value.  No coverage guarantee, but events
found are real and come with the same replayable traces.

Deterministic per seed (the runtime is deterministic and the only
randomness is the seeded PRNG), so a failing walk can be re-run exactly.
"""

from __future__ import annotations

import contextlib
import random
import time
from typing import Any, Callable

from ..runtime.engine import validate_engine
from ..runtime.process import ProcessStatus
from ..runtime.system import System
from .stats import SearchStats
from .results import (
    AssertionViolationEvent,
    CrashEvent,
    DeadlockEvent,
    DivergenceEvent,
    ExplorationReport,
    ScheduleChoice,
    TossChoice,
    Trace,
    TraceStep,
)


def random_walks(
    system: System,
    walks: int = 100,
    max_depth: int = 1000,
    seed: int = 0,
    max_events: int = 25,
    stop_on_first: bool = False,
    time_budget: float | None = None,
    progress: Callable[[SearchStats], None] | None = None,
    progress_interval: float = 0.5,
    on_step: Callable[..., None] | None = None,
    tracer: Any | None = None,
    engine: str = "walk",
    coverage: Any | None = None,
) -> ExplorationReport:
    """Run ``walks`` independent random executions of ``system``.

    Returns an :class:`ExplorationReport`; ``paths_explored`` counts the
    walks.  Unlike the exhaustive explorer, revisited states are neither
    detected nor avoided.  A ``time_budget`` (seconds of wall clock,
    checked between walks) flags the report ``incomplete`` when it
    expires; ``progress`` receives the live
    :class:`~repro.verisoft.stats.SearchStats` every
    ``progress_interval`` seconds.

    ``on_step`` is the explorer's hot-spot observer protocol (see
    :class:`~repro.obs.profile.HotSpotProfiler`); every walk transition
    is fresh, so ``created`` is always ``True``.  ``tracer`` (a
    :class:`~repro.obs.tracer.Tracer`) gets one span per walk.

    ``engine`` selects the execution engine driving each walk (see
    :data:`~repro.runtime.engine.ENGINES`); ``"compiled"`` falls back
    to ``"walk"`` when the program is not compilable, and the resolved
    engine is recorded in ``report.stats.engine``.

    ``coverage`` (a :class:`~repro.obs.coverage.CoverageCollector`)
    accumulates node/edge/toss coverage over the walks; every walk is
    fresh ground, so all segments count.
    """
    validate_engine(engine)
    if engine == "compiled" and system.compiled_program() is None:
        engine = "walk"
    rng = random.Random(seed)
    report = ExplorationReport()
    report.seed = seed  # walks are reproducible from the seed alone
    stats = report.stats = SearchStats(strategy="random", engine=engine)
    started = time.monotonic()
    cpu_started = time.process_time()
    deadline = None if time_budget is None else started + time_budget
    next_tick = started + progress_interval

    def sync_stats() -> None:
        stats.states_visited = report.states_visited
        stats.transitions_executed = report.transitions_executed
        stats.toss_points = report.toss_points
        stats.paths_explored = report.paths_explored
        stats.max_depth_reached = report.max_depth_reached
        stats.wall_time = time.monotonic() - started
        stats.cpu_time = time.process_time() - cpu_started
        if coverage is not None:
            stats.coverage_nodes = coverage.nodes_covered
            stats.coverage_nodes_total = coverage.nodes_total

    def drain(process) -> None:
        entries = process.engine.take_trace()
        if entries:
            coverage.segment(process.name, entries, True)

    for _ in range(walks):
        if deadline is not None and time.monotonic() > deadline:
            report.incomplete = True
            report.truncated = True
            break
        run = system.start(engine=engine, trace=coverage is not None)
        if coverage is not None:
            coverage.begin_run()
        run.start_processes()
        if coverage is not None:
            for process in run.processes:
                drain(process)
        choices: list = []
        steps: list[TraceStep] = []
        noted: set[str] = set()
        depth = 0

        def note_broken() -> None:
            for process in run.processes:
                if process.name in noted:
                    continue
                if process.status is ProcessStatus.CRASHED:
                    noted.add(process.name)
                    if len(report.crashes) < max_events:
                        report.crashes.append(
                            CrashEvent(
                                Trace(tuple(choices), tuple(steps)),
                                process.name,
                                str(process.crash),
                            )
                        )
                elif process.status is ProcessStatus.DIVERGED:
                    noted.add(process.name)
                    if len(report.divergences) < max_events:
                        report.divergences.append(
                            DivergenceEvent(
                                Trace(tuple(choices), tuple(steps)), process.name
                            )
                        )

        note_broken()
        walk_span = (
            contextlib.nullcontext()
            if tracer is None
            else tracer.span("walk", cat="walk", walk=report.paths_explored)
        )
        with walk_span:
            while depth < max_depth:
                tossing = run.toss_pending()
                if tossing is not None:
                    report.toss_points += 1
                    request = tossing.toss_request
                    if on_step is not None:
                        on_step(
                            "toss", tossing.name, request, depth,
                            request.bound + 1, True,
                        )
                    value = rng.randint(0, request.bound)
                    choices.append(TossChoice(tossing.name, value))
                    run.answer_toss(tossing, value)
                    if coverage is not None:
                        coverage.toss_value(request.proc_name, request.node_id, value)
                        drain(tossing)
                    note_broken()
                    continue

                report.states_visited += 1
                if run.is_deadlock():
                    if len(report.deadlocks) < max_events:
                        from .explorer import _blocked_info

                        blocked, waiting = _blocked_info(run)
                        report.deadlocks.append(
                            DeadlockEvent(
                                Trace(tuple(choices), tuple(steps)), blocked, waiting
                            )
                        )
                    break
                enabled = run.enabled_processes()
                if not enabled:
                    break

                chosen = rng.choice(enabled)
                request = chosen.visible_request
                choices.append(ScheduleChoice(chosen.name))
                obj_name = request.obj.name if request.obj is not None else None
                outcome = run.execute_visible(chosen)
                if coverage is not None:
                    drain(chosen)
                steps.append(TraceStep(chosen.name, request.op, obj_name))
                report.transitions_executed += 1
                if on_step is not None:
                    on_step(
                        "schedule", chosen.name, request, depth,
                        len(enabled), True,
                    )
                depth += 1
                if outcome is not None and outcome.violated:
                    if len(report.violations) < max_events:
                        report.violations.append(
                            AssertionViolationEvent(
                                Trace(tuple(choices), tuple(steps)),
                                outcome.process,
                                outcome.proc_name,
                                outcome.node_id,
                            )
                        )
                note_broken()
            else:
                report.truncated = True

        report.max_depth_reached = max(report.max_depth_reached, depth)
        report.paths_explored += 1
        if progress is not None:
            now = time.monotonic()
            if now >= next_tick:
                sync_stats()
                progress(stats)
                next_tick = now + progress_interval
        if stop_on_first and not report.ok:
            break

    sync_stats()
    return report
