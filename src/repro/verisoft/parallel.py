"""Work-partitioning parallel exploration.

VeriSoft's defining property — the explorer stores *no* states and
backtracks by deterministic replay from the initial state — means that
disjoint subtrees of the choice tree can be searched by fully
independent operating-system processes: a subtree is identified by the
choice *prefix* leading to its root, and a worker that re-executes the
prefix owns everything below it with no shared state whatsoever.

The driver has three phases:

1. **Prefix enumeration** (sequential, cheap).  A bounded-depth DFS over
   the top of the choice tree; every path that survives to
   ``prefix_depth`` transitions is cut there and its choice stack —
   including the sleep sets and sibling signatures needed to resume the
   partial-order reduction exactly — is captured as a
   :class:`ChoicePrefix`.  Paths that die earlier (deadlock,
   termination, sleep-set exhaustion) are complete and are accounted to
   the coordinator's own report.

2. **Fan-out**.  The prefixes are distributed over a
   :mod:`multiprocessing` pool.  Each worker reconstructs the system
   (systems are picklable, or rebuilt via ``system_factory``), replays
   its prefix, and completes the DFS of that subtree with backtracking
   frozen at the prefix — sleep/persistent sets carry over, so the
   merged search performs *exactly* the transitions the sequential
   search would.

3. **Deterministic merge**.  Per-worker reports are merged in prefix
   enumeration order: counters are summed, events concatenated in
   stable order and deduplicated by replay trace, distinct-state
   fingerprints unioned.  ``--jobs 1`` and ``--jobs N`` therefore
   produce identical reports.

Budget caveat: ``max_paths``/``max_transitions`` are enforced per
worker and re-checked between worker completions, so a tripped budget
truncates slightly differently (never *later*) than a sequential run;
exact parity holds for unbudgeted searches.

State-caching caveat: with ``state_cache`` enabled every worker owns a
*private* store (:mod:`repro.statespace`) — nothing is shared across
process boundaries — so a state reached in two different subtrees is
expanded once per subtree rather than once globally.  A parallel cached
search therefore prunes *at most* as much as the sequential cached
search and its transition counters sit between the sequential-cached
and uncached values; violation triage groups still match, and the
merged report sums every worker's hit/miss/memory counters.
"""

from __future__ import annotations

import contextlib
import multiprocessing
import os
import sys
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Any, Callable, Iterable

from ..runtime.system import System
from ..statespace.stores import make_store
from .explorer import Explorer, _ChoicePoint
from .por import TransitionSig
from .results import (
    AssertionViolationEvent,
    CrashEvent,
    DeadlockEvent,
    DivergenceEvent,
    ExplorationReport,
    Trace,
)
from .stats import SearchStats

if TYPE_CHECKING:  # pragma: no cover
    from .search import SearchOptions

__all__ = [
    "ChoicePrefix",
    "PrefixPoint",
    "enumerate_prefixes",
    "harvest_residual",
    "merge_reports",
    "parallel_search",
    "prefix_key",
    "warn_oversubscription",
]


# ---------------------------------------------------------------------------
# Choice prefixes
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class PrefixPoint:
    """One pinned decision of a choice prefix (picklable snapshot of the
    explorer's internal choice point, with the POR context frozen in)."""

    kind: str  # "schedule" | "toss"
    alternatives: tuple[Any, ...]
    index: int
    sleep: frozenset[TransitionSig]
    sigs: tuple[TransitionSig | None, ...]


@dataclass(frozen=True, slots=True)
class ChoicePrefix:
    """A path from the root of the choice tree to a frontier state.

    Replaying the prefix and freezing backtracking at its length makes a
    worker explore exactly the subtree rooted at the frontier state.
    """

    points: tuple[PrefixPoint, ...]

    def __len__(self) -> int:
        return len(self.points)

    def describe(self) -> str:
        return " / ".join(
            f"{p.kind}={p.alternatives[p.index]!r}" for p in self.points
        )


def prefix_key(prefix: ChoicePrefix) -> tuple[int, ...]:
    """The prefix's position in DFS order: the tuple of chosen-alternative
    indices along its path.

    Two disjoint subtree prefixes compare exactly as the sequential DFS
    would visit them (lexicographic on index tuples), and a prefix that
    extends another — a split lease's residual extending the suspended
    lease's own prefix — sorts directly after it.  The work-stealing
    merge (:mod:`repro.service.scheduler`) sorts completed lease reports
    by this key so event order (and therefore ``max_events`` truncation)
    is identical to the sequential search, regardless of which worker
    finished what when.
    """
    return tuple(point.index for point in prefix.points)


def _freeze_point(point: _ChoicePoint, index: int | None = None) -> PrefixPoint:
    """A picklable snapshot of one live choice point, optionally pinned
    to a different alternative ``index`` (residual harvesting)."""
    return PrefixPoint(
        kind=point.kind,
        alternatives=tuple(point.alternatives),
        index=point.index if index is None else index,
        sleep=point.sleep,
        sigs=tuple(point.sigs),
    )


def _snapshot(stack: list[_ChoicePoint]) -> ChoicePrefix:
    """Deep-copy the live DFS stack (indices mutate as the enumeration
    backtracks, so the copy must happen at frontier time)."""
    return ChoicePrefix(tuple(_freeze_point(point) for point in stack))


def harvest_residual(
    stack: list[_ChoicePoint], base: int = 0
) -> list[ChoicePrefix]:
    """Decompose the unexplored remainder of a suspended DFS into
    disjoint, fully pinned subtree prefixes.

    After a path completes, everything the DFS has left to do is "the
    subtree below alternative ``i`` of stack point ``j``" for every
    untried ``(j, i)`` with ``j >= base`` (points inside a frozen prefix
    are never bumped).  Each such subtree is captured as a
    :class:`ChoicePrefix` pinning ``stack[:j]`` at its current decisions
    and point ``j`` at alternative ``i`` — the full alternative and
    signature lists are retained, so resuming the prefix reconstructs
    the exact sleep-set context the sequential search would have had on
    bumping that choice point.  Resumption must use the explorer's
    ``prefix_mode="resume"`` accounting: the pinned tip decision was
    never executed, so its out-edge is fresh, countable ground.

    The prefixes come back in sequential DFS visit order (deepest point
    first, ascending alternative index within a point); their union is
    exactly the suspended search's remaining work and they are pairwise
    disjoint, so a partial report plus these prefixes partitions the
    subtree losslessly.
    """
    out: list[ChoicePrefix] = []
    for j in range(len(stack) - 1, base - 1, -1):
        point = stack[j]
        for i in range(point.index + 1, len(point.alternatives)):
            points = [_freeze_point(p) for p in stack[:j]]
            points.append(_freeze_point(point, index=i))
            out.append(ChoicePrefix(tuple(points)))
    return out


def _thaw(prefix: ChoicePrefix) -> list[_ChoicePoint]:
    """Rebuild explorer choice points, pinned to the prefix's decisions.

    The full alternative/signature lists are retained so the replayed
    sleep-set augmentation sees the same explored siblings the
    sequential search would.
    """
    points = []
    for frozen in prefix.points:
        point = _ChoicePoint(
            kind=frozen.kind,
            alternatives=list(frozen.alternatives),
            index=frozen.index,
            sleep=frozen.sleep,
            sigs=list(frozen.sigs),
        )
        points.append(point)
    return points


# ---------------------------------------------------------------------------
# Phase 1: prefix enumeration
# ---------------------------------------------------------------------------


def enumerate_prefixes(
    system: System,
    prefix_depth: int,
    *,
    max_depth: int = 100,
    backtrack: str = "replay",
    engine: str = "walk",
    por: bool = True,
    sleep_sets: bool = True,
    count_states: bool = False,
    max_events: int = 25,
    state_cache: str = "off",
    cache_bits: int = 24,
    fingerprint_set: set[Any] | None = None,
    profile: bool = False,
    coverage: bool = False,
    tracer: Any | None = None,
) -> tuple[list[ChoicePrefix], ExplorationReport]:
    """Enumerate the frontier of the choice tree at ``prefix_depth``.

    Returns the prefixes in deterministic DFS order plus the
    coordinator's report covering everything *above* the frontier
    (frontier states themselves are accounted to the workers).  Paths
    shorter than the frontier are fully explored here.  With
    ``state_cache`` the enumeration owns a private, fresh store — its
    prunes never leak into the workers' subtrees.  With ``profile`` the
    above-frontier transitions are profiled into ``report.profile``
    (exactly the fresh edges the sequential search would count there).
    """
    prefixes: list[ChoicePrefix] = []
    profiler = None
    if profile:
        from ..obs import HotSpotProfiler

        profiler = HotSpotProfiler()
    collector = None
    if coverage:
        from ..obs import CoverageCollector

        collector = CoverageCollector(system)
    explorer = Explorer(
        system,
        max_depth=max_depth,
        backtrack=backtrack,
        engine=engine,
        por=por,
        sleep_sets=sleep_sets,
        state_store=make_store(state_cache, cache_bits=cache_bits),
        count_states=count_states,
        max_events=max_events,
        frontier_depth=prefix_depth,
        on_frontier=lambda stack: prefixes.append(_snapshot(stack)),
        fingerprint_set=fingerprint_set,
        on_step=profiler,
        tracer=tracer,
        coverage=collector,
        phase_profile=profiler.phases if profiler is not None else None,
    )
    report = explorer.run()
    report.profile = profiler
    report.coverage = collector
    return prefixes, report


# ---------------------------------------------------------------------------
# Phase 2: workers
# ---------------------------------------------------------------------------

#: Per-worker-process cache, populated once by the pool initializer so
#: the system is unpickled (or rebuilt by the factory) once per worker
#: instead of once per prefix.
_WORKER_STATE: dict[str, Any] = {}


def _init_worker(
    system_or_factory, worker_kwargs: dict[str, Any], heartbeat_queue: Any = None
) -> None:
    if callable(system_or_factory):
        system = system_or_factory()
    else:
        system = system_or_factory
    _WORKER_STATE["system"] = system
    _WORKER_STATE["kwargs"] = worker_kwargs
    _WORKER_STATE["heartbeats"] = heartbeat_queue


def _pool_task(
    indexed_prefix: tuple[int, ChoicePrefix],
) -> tuple[int, ExplorationReport, frozenset | None]:
    index, prefix = indexed_prefix
    report, fingerprints = explore_subtree(
        _WORKER_STATE["system"],
        prefix,
        prefix_index=index,
        heartbeat_queue=_WORKER_STATE.get("heartbeats"),
        **_WORKER_STATE["kwargs"],
    )
    return index, report, fingerprints


def explore_subtree(
    system: System,
    prefix: ChoicePrefix,
    *,
    max_depth: int = 100,
    backtrack: str = "replay",
    engine: str = "walk",
    por: bool = True,
    sleep_sets: bool = True,
    count_states: bool = False,
    stop_on_first: bool = False,
    max_paths: int | None = None,
    max_transitions: int | None = None,
    time_budget: float | None = None,
    max_events: int = 25,
    state_cache: str = "off",
    cache_bits: int = 24,
    profile: bool = False,
    coverage: bool = False,
    trace: bool = False,
    tracer: Any | None = None,
    heartbeat_interval: float = 0.5,
    prefix_index: int = 0,
    heartbeat_queue: Any | None = None,
) -> tuple[ExplorationReport, frozenset | None]:
    """Complete the DFS below ``prefix`` (the single-worker unit of work).

    Returns the subtree's report and, with ``count_states``, the set of
    state fingerprints seen (for cross-worker union — fingerprint
    duplicates across subtrees cannot be detected locally).  With
    ``state_cache`` each call builds its own fresh store: revisits are
    pruned within the subtree only (see the module caveat).

    Observability (:mod:`repro.obs`): ``profile`` attaches a
    :class:`~repro.obs.profile.HotSpotProfiler` as ``report.profile``;
    ``tracer`` records spans directly into an in-process tracer, while
    ``trace`` (used across process boundaries, where a live tracer
    cannot travel) builds a private one and ships its buffer back as
    ``report.trace_payload``.  ``heartbeat_queue``, when given, receives
    :class:`~repro.obs.heartbeat.Heartbeat` messages: ``start``/``done``
    around the subtree and a ``beat`` every ``heartbeat_interval``
    seconds (piggybacking on the explorer's progress callback).
    """
    profiler = None
    if profile:
        from ..obs import HotSpotProfiler

        profiler = HotSpotProfiler()
    collector = None
    if coverage:
        from ..obs import CoverageCollector

        collector = CoverageCollector(system)
    export_trace = False
    if tracer is None and trace:
        from ..obs import Tracer

        tracer = Tracer()
        export_trace = True

    progress = None
    send = None
    if heartbeat_queue is not None:
        from ..obs import Heartbeat

        pid = os.getpid()

        def send(kind: str, states: int, transitions: int) -> None:
            try:  # a closed/full queue must never sink the worker
                heartbeat_queue.put_nowait(
                    Heartbeat(
                        kind, pid, prefix_index, states, transitions, time.time()
                    )
                )
            except Exception:
                pass

        def progress(stats: SearchStats) -> None:
            send(
                "beat",
                stats.states_visited,
                stats.transitions_executed + stats.replayed_transitions,
            )

        send("start", 0, 0)

    fingerprints: set[Any] | None = set() if count_states else None
    explorer = Explorer(
        system,
        max_depth=max_depth,
        backtrack=backtrack,
        engine=engine,
        por=por,
        sleep_sets=sleep_sets,
        state_store=make_store(state_cache, cache_bits=cache_bits),
        count_states=count_states,
        stop_on_first=stop_on_first,
        max_paths=max_paths,
        max_transitions=max_transitions,
        time_budget=time_budget,
        max_events=max_events,
        initial_stack=_thaw(prefix),
        fingerprint_set=fingerprints,
        progress=progress,
        progress_interval=heartbeat_interval,
        on_step=profiler,
        tracer=tracer,
        coverage=collector,
        phase_profile=profiler.phases if profiler is not None else None,
    )
    if tracer is None:
        report = explorer.run()
    else:
        with tracer.span("subtree", cat="parallel", prefix=prefix_index):
            report = explorer.run()
    if send is not None:
        replayed = report.stats.replayed_transitions if report.stats else 0
        send(
            "done",
            report.states_visited,
            report.transitions_executed + replayed,
        )
    report.profile = profiler
    report.coverage = collector
    if export_trace:
        report.trace_payload = tracer.export(label=f"worker-{os.getpid()}")
    return report, None if fingerprints is None else frozenset(fingerprints)


# ---------------------------------------------------------------------------
# Phase 3: deterministic merge
# ---------------------------------------------------------------------------


def _event_key(event) -> tuple:
    return (type(event).__name__, event.trace.choices)


def _merge_events(
    merged_list: list, parts: Iterable[list], max_events: int, keep_count: bool
) -> None:
    """Concatenate event lists in stable order, dropping duplicate
    traces.  Beyond ``max_events`` recorded traces, either keep counting
    with trace-less placeholder events (``keep_count``, matching the
    sequential explorer's behaviour for violations/crashes/divergences)
    or stop (deadlocks)."""
    seen: set = set()
    for event in list(merged_list):
        seen.add(_event_key(event))
    for events in parts:
        for event in events:
            key = _event_key(event)
            if key in seen and event.trace.choices:
                continue
            seen.add(key)
            if len(merged_list) < max_events:
                merged_list.append(event)
            elif keep_count:
                merged_list.append(_strip_trace(event))


def _strip_trace(event):
    empty = Trace((), ())
    if isinstance(event, AssertionViolationEvent):
        return AssertionViolationEvent(empty, event.process, event.proc_name, event.node_id)
    if isinstance(event, CrashEvent):
        return CrashEvent(empty, event.process, "")
    if isinstance(event, DivergenceEvent):
        return DivergenceEvent(empty, event.process)
    if isinstance(event, DeadlockEvent):
        return DeadlockEvent(empty, event.blocked, event.waiting)
    return event


def merge_reports(
    coordinator: ExplorationReport,
    worker_reports: Iterable[ExplorationReport],
    *,
    num_prefixes: int,
    max_events: int = 25,
    fingerprints: set[Any] | None = None,
) -> ExplorationReport:
    """Deterministically merge the coordinator's above-frontier report
    with the per-subtree worker reports (in prefix enumeration order).

    Counters sum exactly to the sequential search's values: the
    coordinator counted everything strictly above the frontier, each
    worker everything at and below its own frontier state, and the
    coordinator's frontier-cut pseudo-paths (one per prefix) are
    subtracted from the path total.
    """
    workers = list(worker_reports)
    merged = ExplorationReport()
    merged.states_visited = coordinator.states_visited
    merged.transitions_executed = coordinator.transitions_executed
    merged.toss_points = coordinator.toss_points
    merged.paths_explored = coordinator.paths_explored - num_prefixes
    merged.max_depth_reached = coordinator.max_depth_reached
    merged.truncated = coordinator.truncated
    merged.incomplete = coordinator.incomplete
    merged.deadlocks = list(coordinator.deadlocks)
    merged.violations = list(coordinator.violations)
    merged.crashes = list(coordinator.crashes)
    merged.divergences = list(coordinator.divergences)

    for report in workers:
        merged.states_visited += report.states_visited
        merged.transitions_executed += report.transitions_executed
        merged.toss_points += report.toss_points
        merged.paths_explored += report.paths_explored
        merged.max_depth_reached = max(merged.max_depth_reached, report.max_depth_reached)
        merged.truncated = merged.truncated or report.truncated
        merged.incomplete = merged.incomplete or report.incomplete

    _merge_events(
        merged.deadlocks, (r.deadlocks for r in workers), max_events, keep_count=False
    )
    _merge_events(
        merged.violations, (r.violations for r in workers), max_events, keep_count=True
    )
    _merge_events(
        merged.crashes, (r.crashes for r in workers), max_events, keep_count=True
    )
    _merge_events(
        merged.divergences, (r.divergences for r in workers), max_events, keep_count=True
    )

    if fingerprints is not None:
        merged.distinct_states = len(fingerprints)

    profiles = [
        r.profile for r in [coordinator, *workers] if r.profile is not None
    ]
    if profiles:
        from ..obs import HotSpotProfiler

        # Counter-for-counter identical to a sequential profile: the
        # coordinator profiled everything above the frontier, each
        # worker its own subtree, and the partitions are disjoint.
        merged.profile = HotSpotProfiler.merged(profiles)

    coverages = [
        r.coverage for r in [coordinator, *workers] if r.coverage is not None
    ]
    if coverages:
        from ..obs import CoverageCollector

        # Same disjoint-partition argument as the profile: every fresh
        # edge/node/toss was counted by exactly one shard, so the merged
        # counters are bit-identical to a sequential run's.
        merged.coverage = CoverageCollector.merged(coverages)

    parts = [r.stats for r in [coordinator, *workers] if r.stats is not None]
    merged.stats = SearchStats.merged(parts, strategy="parallel")
    merged.stats.paths_explored = merged.paths_explored
    merged.stats.prefixes = num_prefixes
    if merged.coverage is not None:
        merged.stats.coverage_nodes = merged.coverage.nodes_covered
        merged.stats.coverage_nodes_total = merged.coverage.nodes_total
    return merged


# ---------------------------------------------------------------------------
# The driver
# ---------------------------------------------------------------------------


def warn_oversubscription(
    jobs: int,
    warn: Callable[[str], None],
    *,
    cpus: int | None = None,
) -> bool:
    """Warn when the worker pool *plus the coordinator process* exceed
    the machine's CPUs.

    Lives in the drivers — emitted exactly once per search, before any
    fan-out, never per round — so multi-round schedulers (work stealing
    hands out leases continuously) cannot repeat it.  ``jobs <= 1`` runs
    in-process with no pool and no separate coordinator, so it never
    warns.  Returns whether a warning was emitted (for the tests).
    """
    if jobs <= 1:
        return False
    if cpus is None:
        cpus = os.cpu_count() or 1
    if jobs + 1 <= cpus:
        return False
    warn(
        f"--jobs {jobs} exceeds the {cpus} available CPU(s) once the "
        "coordinator process is counted; workers will time-slice"
    )
    return True


def _auto_prefix_depth(
    system: System,
    jobs: int,
    *,
    max_depth: int,
    backtrack: str,
    engine: str,
    por: bool,
    sleep_sets: bool,
    max_events: int,
    state_cache: str,
    cache_bits: int,
    profile: bool = False,
    coverage: bool = False,
) -> tuple[int, list[ChoicePrefix], ExplorationReport]:
    """Deepen the frontier until it yields enough prefixes to keep the
    pool busy (≥4 per worker), or the tree runs out.  Only the kept
    (deepest) enumeration's profile survives, so probe passes never
    double-count."""
    target = max(4 * jobs, jobs)
    depth_cap = max(1, min(max_depth - 1, 12))
    best: tuple[int, list[ChoicePrefix], ExplorationReport] | None = None
    depth = 1
    while True:
        prefixes, report = enumerate_prefixes(
            system,
            depth,
            max_depth=max_depth,
            backtrack=backtrack,
            engine=engine,
            por=por,
            sleep_sets=sleep_sets,
            max_events=max_events,
            state_cache=state_cache,
            cache_bits=cache_bits,
            profile=profile,
            coverage=coverage,
        )
        best = (depth, prefixes, report)
        if len(prefixes) >= target or depth >= depth_cap or not prefixes:
            return best
        depth += 1


def parallel_search(
    system: System,
    options: "SearchOptions | None" = None,
    *,
    system_factory: Callable[[], System] | None = None,
    **overrides,
) -> ExplorationReport:
    """Explore ``system`` with a pool of stateless worker processes.

    ``options`` is a :class:`~repro.verisoft.search.SearchOptions`
    (individual fields may be overridden by keyword).  ``jobs=1`` runs
    the same partition/merge pipeline in-process — useful as the
    determinism baseline.  For systems that cannot be pickled, pass a
    top-level ``system_factory`` callable that rebuilds the system
    inside each worker.
    """
    from .search import SearchOptions

    if options is None:
        options = SearchOptions(strategy="parallel")
    if overrides:
        from dataclasses import replace

        options = replace(options, **overrides)

    jobs = options.jobs or os.cpu_count() or 1
    tracer = options.tracer

    def _warn(message: str) -> None:
        # Route through the progress printer when it knows how (keeps
        # the warning from colliding with the self-overwriting ticker),
        # else fall back to stderr.
        warn = getattr(options.progress, "warn", None)
        if warn is not None:
            warn(message)
        else:
            print(f"warning: {message}", file=sys.stderr)

    # Judge oversubscription on the *requested* job count: an explicit
    # --jobs beyond what the machine can co-schedule alongside the
    # coordinator warns; the jobs=0 "all cores" default never does.
    warn_oversubscription(options.jobs, _warn)
    started = time.monotonic()
    deadline = None if options.time_budget is None else started + options.time_budget

    fingerprints: set[Any] | None = set() if options.count_states else None

    enumerate_phase = (
        contextlib.nullcontext()
        if tracer is None
        else tracer.phase("enumerate-prefixes")
    )
    with enumerate_phase:
        if options.prefix_depth is not None:
            prefix_depth = options.prefix_depth
            prefixes, coordinator = enumerate_prefixes(
                system,
                prefix_depth,
                max_depth=options.max_depth,
                backtrack=options.backtrack,
                engine=options.engine,
                por=options.por,
                sleep_sets=options.sleep_sets_active,
                count_states=options.count_states,
                max_events=options.max_events,
                state_cache=options.state_cache,
                cache_bits=options.cache_bits,
                fingerprint_set=fingerprints,
                profile=options.profile,
                coverage=options.coverage,
                tracer=tracer,
            )
        else:
            prefix_depth, prefixes, coordinator = _auto_prefix_depth(
                system,
                jobs,
                max_depth=options.max_depth,
                backtrack=options.backtrack,
                engine=options.engine,
                por=options.por,
                sleep_sets=options.sleep_sets_active,
                max_events=options.max_events,
                state_cache=options.state_cache,
                cache_bits=options.cache_bits,
                profile=options.profile,
                coverage=options.coverage,
            )
            if options.count_states:
                # Re-enumerate once at the chosen depth to collect the
                # coordinator's fingerprints (auto-probing skips them).
                prefixes, coordinator = enumerate_prefixes(
                    system,
                    prefix_depth,
                    max_depth=options.max_depth,
                    backtrack=options.backtrack,
                    engine=options.engine,
                    por=options.por,
                    sleep_sets=options.sleep_sets_active,
                    count_states=True,
                    max_events=options.max_events,
                    state_cache=options.state_cache,
                    cache_bits=options.cache_bits,
                    fingerprint_set=fingerprints,
                    profile=options.profile,
                    coverage=options.coverage,
                    tracer=tracer,
                )

    worker_kwargs = dict(
        max_depth=options.max_depth,
        backtrack=options.backtrack,
        engine=options.engine,
        por=options.por,
        sleep_sets=options.sleep_sets_active,
        count_states=options.count_states,
        stop_on_first=options.stop_on_first,
        max_paths=options.max_paths,
        max_transitions=options.max_transitions,
        time_budget=None if deadline is None else max(0.0, deadline - time.monotonic()),
        max_events=options.max_events,
        state_cache=options.state_cache,
        cache_bits=options.cache_bits,
        profile=options.profile,
        coverage=options.coverage,
        trace=tracer is not None,
        heartbeat_interval=options.progress_interval,
    )

    indexed = list(enumerate(prefixes))
    results: list[tuple[ExplorationReport, frozenset | None]] = []
    stop_early = False  # first-event stop requested and hit
    expired = False  # wall-clock budget ran out mid-fan-out

    def note_result(report: ExplorationReport, prints: frozenset | None) -> None:
        results.append((report, prints))
        if fingerprints is not None and prints is not None:
            fingerprints.update(prints)
        if options.progress is not None:
            live = SearchStats.merged(
                [r.stats for r, _ in results if r.stats is not None]
                + ([coordinator.stats] if coordinator.stats else []),
                strategy="parallel",
                jobs=jobs,
                prefixes=len(prefixes),
            )
            live.wall_time = time.monotonic() - started
            options.progress(live)

    fanout_phase = (
        contextlib.nullcontext()
        if tracer is None
        else tracer.phase("fan-out", prefixes=len(prefixes), jobs=jobs)
    )
    with fanout_phase:
        if jobs <= 1 or len(indexed) <= 1:
            target_system = system_factory() if system_factory is not None else system
            for index, prefix in indexed:
                report, prints = explore_subtree(
                    target_system,
                    prefix,
                    prefix_index=index,
                    tracer=tracer,
                    **worker_kwargs,
                )
                note_result(report, prints)
                if options.stop_on_first and not report.ok:
                    stop_early = True
                    break
                if deadline is not None and time.monotonic() > deadline:
                    expired = True
                    break
        else:
            ordered: dict[int, tuple[ExplorationReport, frozenset | None]] = {}

            monitor = None
            heartbeat_queue = None
            if options.progress is not None or options.stall_timeout is not None:
                from ..obs import HeartbeatMonitor

                heartbeat_queue = multiprocessing.Queue()
                monitor = HeartbeatMonitor(
                    stall_timeout=options.stall_timeout, on_warn=_warn
                )

            def fanout_tick() -> None:
                """Between completions: fold in heartbeats, surface
                per-worker health, refresh the live ticker."""
                if monitor is None:
                    return
                monitor.drain(heartbeat_queue)
                monitor.check_stalls()
                if options.progress is None:
                    return
                worker_lines = getattr(options.progress, "worker_lines", None)
                if worker_lines is not None:
                    worker_lines(monitor.lines())
                live = SearchStats.merged(
                    [r.stats for r, _ in ordered.values() if r.stats is not None]
                    + ([coordinator.stats] if coordinator.stats else []),
                    strategy="parallel",
                    jobs=jobs,
                    prefixes=len(prefixes),
                )
                inflight_states, inflight_transitions = monitor.inflight()
                live.states_visited += inflight_states
                live.transitions_executed += inflight_transitions
                live.wall_time = time.monotonic() - started
                options.progress(live)

            pool = multiprocessing.Pool(
                processes=min(jobs, len(indexed)),
                initializer=_init_worker,
                initargs=(
                    system_factory if system_factory is not None else system,
                    worker_kwargs,
                    heartbeat_queue,
                ),
            )
            try:
                completions = pool.imap_unordered(_pool_task, indexed)
                tick = max(0.05, min(options.progress_interval, 1.0))
                remaining = len(indexed)
                while remaining:
                    try:
                        index, report, prints = completions.next(timeout=tick)
                    except multiprocessing.TimeoutError:
                        # No completion this tick — service heartbeats so
                        # stalls surface while workers are busy.
                        fanout_tick()
                        if deadline is not None and time.monotonic() > deadline:
                            expired = True
                            break
                        continue
                    except StopIteration:  # pragma: no cover - defensive
                        break
                    remaining -= 1
                    ordered[index] = (report, prints)
                    fanout_tick()
                    if options.stop_on_first and not report.ok:
                        stop_early = True
                        break
                    if deadline is not None and time.monotonic() > deadline:
                        expired = True
                        break
            finally:
                if stop_early or expired:
                    pool.terminate()
                else:
                    pool.close()
                pool.join()
                if monitor is not None:
                    monitor.drain(heartbeat_queue)
                if heartbeat_queue is not None:
                    heartbeat_queue.close()
            # Deterministic merge order regardless of completion order.
            for index in sorted(ordered):
                note_result(*ordered[index])

    merge_phase = (
        contextlib.nullcontext() if tracer is None else tracer.phase("merge")
    )
    with merge_phase:
        if tracer is not None:
            # Splice the worker timelines (shipped back as plain-dict
            # payloads) onto the coordinator's trace, in prefix order.
            for report, _ in results:
                if report.trace_payload is not None:
                    tracer.merge(report.trace_payload)
                    report.trace_payload = None
        merged = merge_reports(
            coordinator,
            [report for report, _ in results],
            num_prefixes=len(prefixes),
            max_events=options.max_events,
            fingerprints=fingerprints,
        )
    if expired:
        # The budget cut the fan-out short: some subtrees were never
        # searched, matching the sequential explorer's incomplete flag.
        merged.incomplete = True
        merged.truncated = True

    merged.stats.strategy = "parallel"
    # Report the *effective* modes: the coordinator's explorer already
    # resolved any journalability/compilability fallback, identically to
    # the workers.
    if coordinator.stats is not None:
        merged.stats.backtrack = coordinator.stats.backtrack
        merged.stats.engine = coordinator.stats.engine
    merged.stats.jobs = jobs
    merged.stats.prefixes = len(prefixes)
    merged.stats.wall_time = time.monotonic() - started
    merged.options = options  # self-reproducing, like run_search reports
    if options.state_cache != "off":
        merged.stats.state_cache = options.state_cache
        merged.state_caching = {
            **(options.state_caching_info() or {}),
            "per_worker_stores": True,
        }
    return merged
