"""The VeriSoft-style systematic state-space explorer.

Like VeriSoft [God97], the explorer never stores global states.  A path
through the state space is a sequence of **choices** — which process
executes its next visible operation at each global state, and which
value each ``VS_toss`` returns — and the search is a depth-first walk
over the choice tree.  *How* it backtracks is selectable
(``backtrack=``):

* ``"replay"`` — the classic stateless mode: re-execute the system from
  its initial state along the recorded choice prefix (the runtime is
  deterministic, so replay is exact).  Always available.
* ``"restore"`` — incremental backtracking: the runtime keeps an undo
  journal (:mod:`repro.runtime.journal`), the explorer checkpoints each
  branching choice point, and backtracking rewinds to the checkpoint in
  O(changes since) instead of re-executing O(depth) transitions.
  Requires every communication object to be journalable; the search
  layer falls back to replay otherwise.  The two modes walk the *same*
  choice tree — identical states, transitions, events and POR decisions
  — and differ only in the ``replays``/``replayed_transitions``/
  ``restores`` telemetry (see ``docs/backtracking.md``).

At every global state the explorer checks for deadlocks, records
assertion outcomes, process crashes (runtime faults) and divergences,
and expands a *persistent* subset of the enabled transitions filtered
through a *sleep set* (:mod:`repro.verisoft.por`) — the partial-order
methods that [God97] identifies as the key to tractability.  For finite
acyclic state spaces the search is exhaustive up to the depth bound; it
"can always guarantee, from a given initial state, complete coverage of
the state space up to some depth".

Optionally the search is no longer purely stateless: given a
``state_store`` (:mod:`repro.statespace`), every freshly reached global
state is looked up before being expanded and the subtree below a state
that was already expanded is pruned — state-space caching, the standard
complement to stateless search.  Sleep sets are *path-dependent*, so
combining them with caching can miss transitions (a state first reached
with a large sleep set records a smaller subtree than an uncached
search would explore from it); callers wanting soundness disable sleep
sets alongside caching via ``sleep_sets=False`` (the search layer's
``safe`` cache mode).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from time import perf_counter
from typing import Any, Callable, Iterable

from ..runtime.engine import validate_engine
from ..runtime.process import Process, ProcessStatus
from ..runtime.system import Run, System
from ..statespace.stores import StateStore
from .por import (
    PersistentSetComputer,
    TransitionSig,
    augment_sleep,
    intern_signature,
    process_footprint,
    signature_of,
)
from .results import (
    AssertionViolationEvent,
    Choice,
    CrashEvent,
    DeadlockEvent,
    DivergenceEvent,
    ExplorationReport,
    ScheduleChoice,
    TossChoice,
    Trace,
    TraceStep,
)
from .stats import SearchStats


@dataclass
class _ChoicePoint:
    """One branching decision in the DFS, with its untried alternatives."""

    kind: str  # "schedule" | "toss"
    alternatives: list[Any]  # process names or toss values
    index: int = 0
    sleep: frozenset[TransitionSig] = frozenset()
    #: signature per alternative (schedule points; used for sleep sets).
    sigs: list[TransitionSig | None] = field(default_factory=list)
    #: Restore-mode bookkeeping (:class:`_ResumeInfo`); ``None`` in
    #: replay mode and for single-alternative points, which are
    #: exhausted at creation and can never become a backtrack target.
    resume: Any = None

    @property
    def chosen(self) -> Any:
        return self.alternatives[self.index]

    def exhausted(self) -> bool:
        return self.index + 1 >= len(self.alternatives)


@dataclass(frozen=True, slots=True)
class _ResumeInfo:
    """Everything needed to re-enter the DFS at a choice point without
    re-executing the path prefix: the runtime checkpoint plus the
    explorer-side execution state (depth, carried sleep set, lengths to
    truncate the recorded choice/step lists back to, and which processes
    had already been noted as crashed/diverged).  Captured by
    :meth:`Explorer._choice` *before* the point's own choice is
    appended."""

    checkpoint: Any
    depth: int
    sleep: frozenset[TransitionSig]
    choices_len: int
    steps_len: int
    noted_broken: frozenset[str]


class _Leaf(Exception):
    """Internal: the current execution reached a leaf of the DFS tree."""


#: Shared empty sleep set — the overwhelmingly common value in the hot
#: loop; sharing it avoids one frozenset() allocation per transition.
_EMPTY_SLEEP: frozenset = frozenset()


class Explorer:
    """Drives the systematic search over a :class:`repro.runtime.System`.

    Arguments:
        system: the (closed) system to explore.
        max_depth: bound on transitions per path; exploration is complete
            up to this depth.
        backtrack: ``"replay"`` (default; stateless re-execution from the
            initial state) or ``"restore"`` (undo-journal checkpointing:
            backtracking rewinds the live run in O(changes) — see the
            module docstring).  ``"restore"`` silently degrades to
            replay when the system is not journalable; both modes visit
            the identical choice tree and report identical counters
            apart from ``replays``/``replayed_transitions``/``restores``.
        engine: the process stepper (see :mod:`repro.runtime.engine`):
            ``"walk"`` (default; the tree-walking reference engine) or
            ``"compiled"`` (CFGs pre-translated to Python closures).
            ``"compiled"`` silently degrades to ``"walk"`` when the
            program cannot be compiled (pointer programs); both engines
            explore the identical choice tree and report identical
            counters.
        por: enable persistent-set + sleep-set reduction.
        sleep_sets: with ``por``, whether the sleep-set part of the
            reduction is active (persistent sets always are).  The safe
            state-caching mode turns sleep sets off — see the module
            docstring.
        state_store: a :class:`~repro.statespace.stores.StateStore`
            consulted at every fresh global state; a state the store has
            already expanded (at no smaller remaining depth budget) is
            pruned instead of re-explored.  ``None`` (the default) keeps
            the search purely stateless.
        count_states: additionally hash every visited global state to
            report the number of *distinct* states (not part of VeriSoft,
            which stores no states; used by the benchmarks to measure
            true state-space sizes).
        stop_on_first: stop at the first deadlock/violation/crash.
        max_paths / max_transitions / max_seconds: work budgets; the
            report's ``truncated`` flag is set when one trips.
        time_budget: wall-clock budget in seconds, checked at every
            global state (not merely between paths like ``max_seconds``);
            when it expires the report is flagged ``incomplete=True``
            (and ``truncated``) instead of the search running unbounded.
        max_events: cap on recorded events of each kind (traces can be
            large; counting continues).
        initial_stack: a frozen choice prefix (see
            :mod:`repro.verisoft.parallel`); the search replays it and
            explores only the subtree below — backtracking never climbs
            above the prefix.  Prefix states/transitions are not
            re-counted.
        prefix_mode: how the *last* pinned decision of ``initial_stack``
            is accounted.  ``"frontier"`` (default; the static parallel
            partition): the edge into the frontier state was already
            executed and counted by the coordinator that enumerated the
            prefix, so the first replay does not re-count it.
            ``"resume"`` (work-stealing leases and suspended-search
            resumption, :mod:`repro.service`): the last pinned decision
            was *never executed* — it is an untried sibling harvested
            from a suspended DFS stack — so its out-edge and everything
            below it is fresh ground and is counted, exactly as the
            sequential search would count it after bumping that choice
            point.
        yield_check: cooperative suspension hook, polled between paths.
            When it returns true *and* untried alternatives remain above
            the frozen prefix, the DFS stops cleanly: :attr:`suspended`
            is set and :attr:`final_stack`/:attr:`final_base` expose the
            live choice stack so the caller can harvest the remaining
            subtrees (see :func:`repro.verisoft.parallel.harvest_residual`).
            The report returned covers exactly the paths completed so
            far — every counter and event is final for the explored
            region, so a partial report plus the residual prefixes
            partitions the subtree losslessly.
        frontier_depth / on_frontier: cut every path at this depth and
            hand the current choice stack to ``on_frontier`` instead of
            descending — the prefix-enumeration mode of the parallel
            driver.
        fingerprint_set: with ``count_states``, collect fingerprints
            into this caller-owned set (so a parallel coordinator can
            union worker sets).
        progress / progress_interval: periodic live-telemetry callback
            receiving the running :class:`~repro.verisoft.stats.SearchStats`.
        on_step: per-step observer (the hot-spot profiler's hook,
            :class:`repro.obs.profile.HotSpotProfiler`), invoked as
            ``on_step(kind, process, request, depth, fanout, created)``
            — on every *fresh-edge* visible transition
            (``kind="schedule"``) and on every freshly created
            ``VS_toss`` choice point (``kind="toss"``).  Anchored
            exactly like ``transitions_executed``/``toss_points``, so
            observer totals match the report and parallel merges are
            exact.  ``None`` (default) costs one branch per transition.
        tracer: a :class:`repro.obs.tracer.Tracer`; when given, the
            explorer records one span per DFS path (category ``"dfs"``)
            and an instant event per recorded deadlock/violation.
            ``None`` (default) costs one branch per path.
        coverage: a :class:`repro.obs.coverage.CoverageCollector`; when
            given, every run is started with engine node tracing on and
            the explorer drains each trace segment right after the step
            that produced it, tagged with the same ``fresh`` /
            ``fresh_edge`` anchoring as the counters — so coverage from
            parallel shards merges counter-exactly and the walk and
            compiled engines produce bit-identical coverage.  ``None``
            (default) costs one branch per step.
        phase_profile: a mutable mapping accumulating wall seconds per
            explorer phase (``"engine"``, ``"fingerprint"``, ``"por"``,
            ``"cache"``, ``"coverage"``) — the per-phase breakdown the
            hot-spot profiler reports.  ``None`` (default) skips all
            timing.

    The hot loop shares **one** canonical state key per global state
    (:meth:`Run.state_key`, incremental for pointer-free programs)
    between seen-state dedup, the state store and the POR memo — and
    with ``por`` on, memoizes the per-state analysis (deadlock /
    termination flags, enabled count, persistent candidates and their
    signatures) keyed by those bytes.  Sound because the canonical key
    is injective over the complete runtime state and each memoized
    value is a pure function of the state; the path-dependent sleep-set
    filtering stays per-visit.
    """

    def __init__(
        self,
        system: System,
        max_depth: int = 100,
        backtrack: str = "replay",
        engine: str = "walk",
        por: bool = True,
        sleep_sets: bool = True,
        state_store: StateStore | None = None,
        count_states: bool = False,
        stop_on_first: bool = False,
        max_paths: int | None = None,
        max_transitions: int | None = None,
        max_seconds: float | None = None,
        time_budget: float | None = None,
        max_events: int = 25,
        on_leaf: Callable[[Run, Trace], None] | None = None,
        stop_when: Callable[[ExplorationReport], bool] | None = None,
        initial_stack: list[_ChoicePoint] | None = None,
        prefix_mode: str = "frontier",
        yield_check: Callable[[], bool] | None = None,
        frontier_depth: int | None = None,
        on_frontier: Callable[[list[_ChoicePoint]], None] | None = None,
        fingerprint_set: set[Any] | None = None,
        progress: Callable[[SearchStats], None] | None = None,
        progress_interval: float = 0.5,
        on_step: Callable[..., None] | None = None,
        tracer: Any | None = None,
        coverage: Any | None = None,
        phase_profile: dict[str, float] | None = None,
    ):
        if backtrack not in ("replay", "restore"):
            raise ValueError(f"unknown backtrack mode {backtrack!r}")
        if prefix_mode not in ("frontier", "resume"):
            raise ValueError(f"unknown prefix mode {prefix_mode!r}")
        validate_engine(engine)
        self._system = system
        self._max_depth = max_depth
        self._restore = backtrack == "restore" and system.journalable()
        # The engine actually used may degrade to "walk" when the
        # program cannot be compiled; resolve it once so telemetry and
        # every run agree.
        if engine == "compiled" and system.compiled_program() is None:
            engine = "walk"
        self._engine = engine
        self._live: _ExecState | None = None
        self._live_checkpoint_bytes = 0
        self._peak_checkpoint_bytes = 0
        self._por = por
        self._sleep_sets = sleep_sets and por
        self._state_store = state_store
        self._count_states = count_states
        self._stop_on_first = stop_on_first
        self._max_paths = max_paths
        self._max_transitions = max_transitions
        self._max_seconds = max_seconds
        self._time_budget = time_budget
        self._max_events = max_events
        self._on_leaf = on_leaf
        self._stop_when = stop_when
        self._initial_stack = initial_stack
        self._prefix_mode = prefix_mode
        self._yield_check = yield_check
        #: Set when ``yield_check`` stopped the DFS before exhaustion;
        #: :attr:`final_stack`/:attr:`final_base` then hold the live
        #: choice stack for residual harvesting.
        self.suspended = False
        self.final_stack: list[_ChoicePoint] | None = None
        self.final_base = 0
        self._frontier_depth = frontier_depth
        self._on_frontier = on_frontier
        self._fingerprint_set = fingerprint_set
        self._progress = progress
        self._progress_interval = progress_interval
        self._on_step = on_step
        self._tracer = tracer
        self._coverage = coverage
        self._phases = phase_profile
        self._deadline: float | None = None
        self._persistent: PersistentSetComputer | None = None
        if por:
            footprints = self._compute_footprints(system)
            self._persistent = PersistentSetComputer(footprints)
        #: Persistent-set memo keyed by the *control projection* of a
        #: state — ``(tuple of interned per-process signature ids,
        #: enabled bitmask)`` — holding ``(candidate names,
        #: signatures)``.  The persistent closure reads only transition
        #: signatures, enabledness and static footprints, so states
        #: sharing a projection share the result; the projection both
        #: hashes faster than a full state key and hits far more often.
        #: Only kept with POR on — without it the analysis is one scan.
        self._state_memo: dict[tuple, tuple] | None = {} if por else None
        # Whether any consumer needs the canonical key at each state.
        self._need_key = state_store is not None or count_states
        #: Interned trace records: ScheduleChoice / TossChoice /
        #: TraceStep are frozen value objects drawn from a tiny
        #: per-system domain, so each distinct record is allocated once
        #: and shared across every append of a long search.
        self._sched_cache: dict[str, ScheduleChoice] = {}
        self._toss_cache: dict[tuple[str, int], TossChoice] = {}
        self._step_cache: dict[tuple, TraceStep] = {}

    @staticmethod
    def _compute_footprints(system: System) -> dict[str, set[str]]:
        from ..dataflow.alias import analyze_aliases

        points_to = analyze_aliases(system.cfgs)
        footprints: dict[str, set[str]] = {}
        for name, proc, args in system.process_specs:
            cfg = system.cfgs[proc]
            launch = dict(zip(cfg.params, args))
            footprints[name] = process_footprint(
                system.cfgs, proc, launch, points_to
            )
        return footprints

    # -- public API -------------------------------------------------------------

    def run(self) -> ExplorationReport:
        report = ExplorationReport()
        stats = report.stats = SearchStats(
            strategy="dfs",
            backtrack="restore" if self._restore else "replay",
            engine=self._engine,
        )
        if self._state_store is not None:
            report.state_caching = {
                **self._state_store.config(),
                "sleep_sets": self._sleep_sets,
            }
        if self._count_states:
            report.distinct_states = 0
        stack: list[_ChoicePoint] = list(self._initial_stack or ())
        base = len(stack)
        if self._count_states:
            seen_states: set[Any] | None = (
                self._fingerprint_set if self._fingerprint_set is not None else set()
            )
        else:
            seen_states = None
        started = time.monotonic()
        cpu_started = time.process_time()
        if self._time_budget is not None:
            self._deadline = started + self._time_budget
        next_tick = started + self._progress_interval
        executions = 0
        resume_point: _ChoicePoint | None = None

        while True:
            try:
                # On the very first pass over a frozen frontier prefix
                # nothing has been bumped: the prefix's edges were all
                # executed (and recorded) by the coordinator that
                # produced it.  A "resume" prefix instead pins an
                # *untried* decision at its tip, whose out-edge is fresh
                # ground (see the ``prefix_mode`` argument).
                frozen_replay = (
                    executions == 0 and base > 0 and self._prefix_mode == "frontier"
                )
                if self._tracer is None:
                    self._execute(
                        stack, report, seen_states, stats, frozen_replay, resume_point
                    )
                else:
                    with self._tracer.span("path", cat="dfs", path=executions):
                        self._execute(
                            stack, report, seen_states, stats, frozen_replay, resume_point
                        )
            except _Leaf:
                pass
            report.paths_explored += 1
            if executions and not self._restore:
                stats.replays += 1
            executions += 1

            if self._progress is not None:
                now = time.monotonic()
                if now >= next_tick:
                    self._sync_stats(report, stats, started, cpu_started)
                    self._progress(stats)
                    next_tick = now + self._progress_interval

            if report.incomplete:
                report.truncated = True
                break
            if self._stop_on_first and not report.ok:
                break
            if self._stop_when is not None and self._stop_when(report):
                break
            if self._max_paths is not None and report.paths_explored >= self._max_paths:
                report.truncated = True
                break
            if (
                self._max_transitions is not None
                and report.transitions_executed >= self._max_transitions
            ):
                report.truncated = True
                break
            if self._max_seconds is not None and time.monotonic() - started > self._max_seconds:
                report.truncated = True
                break

            # Cooperative suspension: a steal request or a stop request
            # arrived between paths.  Only worth honouring while untried
            # alternatives remain above the frozen prefix — otherwise the
            # search is one pop-loop away from finishing anyway.
            if (
                self._yield_check is not None
                and self._yield_check()
                and any(not stack[j].exhausted() for j in range(base, len(stack)))
            ):
                self.suspended = True
                self.final_stack = stack
                self.final_base = base
                break

            # Backtrack to the deepest choice point with untried options,
            # never climbing into a frozen prefix.
            while len(stack) > base and stack[-1].exhausted():
                popped = stack.pop()
                if popped.resume is not None:
                    self._live_checkpoint_bytes -= popped.resume.checkpoint.approx_bytes
            if len(stack) <= base:
                break
            stack[-1].index += 1
            if self._restore:
                # Every bumped point had > 1 alternative, so it carries a
                # checkpoint: rewind the live run instead of re-executing.
                resume_point = stack[-1]

        if seen_states is not None:
            report.distinct_states = len(seen_states)
        self._sync_stats(report, stats, started, cpu_started)
        return report

    def _sync_stats(
        self,
        report: ExplorationReport,
        stats: SearchStats,
        started: float,
        cpu_started: float,
    ) -> None:
        stats.states_visited = report.states_visited
        stats.transitions_executed = report.transitions_executed
        stats.toss_points = report.toss_points
        stats.paths_explored = report.paths_explored
        stats.max_depth_reached = report.max_depth_reached
        stats.wall_time = time.monotonic() - started
        stats.cpu_time = time.process_time() - cpu_started
        if self._state_store is not None:
            stats.state_cache = self._state_store.kind
            stats.cache_hits = self._state_store.hits
            stats.cache_misses = self._state_store.misses
            stats.cache_stored = self._state_store.states_stored
            stats.cache_memory_bytes = self._state_store.memory_bytes
        if self._restore and self._live is not None:
            journal = self._live.run.journal
            stats.restores = journal.restores
            stats.undo_entries = journal.entries_recorded
            stats.checkpoint_memory_bytes = (
                journal.peak_memory_bytes() + self._peak_checkpoint_bytes
            )
        if self._coverage is not None:
            stats.coverage_nodes = self._coverage.nodes_covered
            stats.coverage_nodes_total = self._coverage.nodes_total

    # -- one (re-)execution -------------------------------------------------------

    def _execute(
        self,
        stack: list[_ChoicePoint],
        report: ExplorationReport,
        seen_states: set[Any] | None,
        stats: SearchStats,
        frozen_replay: bool = False,
        resume_point: _ChoicePoint | None = None,
    ) -> None:
        pending_schedule: _ChoicePoint | None = None
        coverage = self._coverage
        if resume_point is None:
            run = self._system.start(
                journal=self._restore,
                engine=self._engine,
                trace=coverage is not None,
            )
            if coverage is not None:
                coverage.begin_run()
            if self._phases is None:
                run.start_processes()
            else:
                t0 = perf_counter()
                run.start_processes()
                self._phases["engine"] += perf_counter() - t0
            replay_len = len(stack)
            state = _ExecState(
                run=run,
                stack=stack,
                replay_len=replay_len,
                edge_replay_len=replay_len + 1 if frozen_replay else replay_len,
                report=report,
            )
            if coverage is not None:
                # The initial invisible segments are fresh ground exactly
                # when nothing precedes them: the sequential first path,
                # the coordinator's (empty-prefix) enumeration, the root
                # steal lease.  Prefixed/replayed runs re-execute them.
                counted = replay_len == 0
                for process in run.processes:
                    entries = process.engine.take_trace()
                    if entries:
                        coverage.segment(process.name, entries, counted)
            if self._restore:
                self._live = state
            self._note_broken_processes(state)
            current_sleep: frozenset[TransitionSig] = frozenset()
            depth = 0
            may_toss = True
        else:
            # Restore-mode re-entry: rewind the live run to the bumped
            # choice point's checkpoint and resume the DFS there.  The
            # execution state is exactly what a replay would have rebuilt
            # on reaching the point: choices/steps truncated to the
            # prefix, ptr past every stacked point (so ``fresh`` /
            # ``fresh_edge`` hold on all ground below, as they would
            # after consuming the bumped point during a replay).
            info = resume_point.resume
            state = self._live
            run = state.run
            run.restore(info.checkpoint)
            del state.choices[info.choices_len :]
            del state.steps[info.steps_len :]
            state.noted_broken = set(info.noted_broken)
            state.ptr = len(stack)
            depth = info.depth
            current_sleep = info.sleep
            if coverage is not None:
                # Re-anchor the per-process parsers on the restored
                # control stacks.  Trace buffers are empty here (every
                # drain immediately follows the resume that filled it),
                # but drain defensively so a stale tail can never be
                # attributed to post-restore ground.
                for process in run.processes:
                    process.engine.take_trace()
                    coverage.sync(process.name, process.engine.control_nodes())
            if resume_point.kind == "toss":
                # Answer the bumped toss and fall into the normal loop —
                # mirroring a replay's pass over the bumped point (no
                # on_step, no toss_points increment: both fire at
                # creation only).
                tossing = run.toss_pending()
                value = resume_point.chosen
                request = tossing.toss_request if coverage is not None else None
                state.choices.append(self._toss_choice(tossing.name, value))
                run.answer_toss(tossing, value)
                if coverage is not None:
                    # A bumped point sits above the frozen prefix, so
                    # ``fresh_edge`` holds — same anchoring as a replay
                    # pass consuming the bumped decision.
                    if state.fresh_edge:
                        coverage.toss_value(request.proc_name, request.node_id, value)
                    entries = tossing.engine.take_trace()
                    if entries:
                        coverage.segment(tossing.name, entries, state.fresh_edge)
                self._note_broken_one(state, tossing)
                may_toss = True
            else:
                pending_schedule = resume_point
                may_toss = False

        phases = self._phases
        while True:
            if pending_schedule is None:
                # Resolve pending toss choices (invisible, intra-transition).
                # Only the process(es) resumed since the last global state
                # can be awaiting a toss, so the scan is skipped entirely
                # on the common transition where the stepped process came
                # back AT_VISIBLE (``may_toss`` tracks that).
                while may_toss:
                    tossing = run.toss_pending()
                    if tossing is None:
                        break
                    request = tossing.toss_request
                    before = len(state.stack)
                    point = self._choice(
                        state,
                        "toss",
                        range(request.bound + 1),
                        frozenset(),
                        (),
                        depth,
                        current_sleep,
                    )
                    if self._on_step is not None and len(state.stack) > before:
                        self._on_step(
                            "toss", tossing.name, request, depth, request.bound + 1, True
                        )
                    value = point.chosen
                    state.choices.append(self._toss_choice(tossing.name, value))
                    if phases is None:
                        run.answer_toss(tossing, value)
                    else:
                        t0 = perf_counter()
                        run.answer_toss(tossing, value)
                        phases["engine"] += perf_counter() - t0
                    if coverage is not None:
                        # Toss *values* anchor on the answering edge (not
                        # point creation): each fresh traversal of a toss
                        # arc counts once system-wide.
                        t0 = perf_counter() if phases is not None else 0.0
                        if state.fresh_edge:
                            coverage.toss_value(
                                request.proc_name, request.node_id, value
                            )
                        entries = tossing.engine.take_trace()
                        if entries:
                            coverage.segment(tossing.name, entries, state.fresh_edge)
                        if phases is not None:
                            phases["coverage"] += perf_counter() - t0
                    self._note_broken_one(state, tossing)

                # Frontier cut: hand the subtree below this state to the
                # parallel driver instead of descending into it.
                if self._frontier_depth is not None and depth >= self._frontier_depth:
                    if self._on_frontier is not None:
                        self._on_frontier(state.stack)
                    raise _Leaf()

                # A global state.  Key computation, dedup, store consult,
                # POR analysis and the leaf checks are all pure functions
                # of the state; a *replayed* state (inside the stacked
                # prefix) was fully processed when first reached and —
                # having a choice point below it — is by construction not
                # a leaf, so replay passes skip straight to the recorded
                # decision.  ``ptr < replay_len`` is exactly ``not fresh``.
                if state.ptr < state.replay_len:
                    point = self._choice(
                        state, "schedule", (), frozenset(), (), depth, current_sleep
                    )
                    created = False
                    fanout = len(point.alternatives)
                else:
                    report.states_visited += 1
                    if depth > report.max_depth_reached:
                        report.max_depth_reached = depth

                    # One canonical key per state (satellite of the
                    # incremental fingerprint work): shared by seen-state
                    # dedup and the state store — never computed twice,
                    # and skipped entirely when nothing consumes it (the
                    # POR memo below keys on the control projection
                    # instead).
                    if self._need_key:
                        if phases is None:
                            key = run.state_key()
                        else:
                            t0 = perf_counter()
                            key = run.state_key()
                            phases["fingerprint"] += perf_counter() - t0
                        if seen_states is not None:
                            seen_states.add(key)
                    else:
                        key = None

                    if self._deadline is not None and time.monotonic() > self._deadline:
                        report.incomplete = True
                        raise _Leaf()

                    # State-space caching: prune the subtree below a state
                    # that the store has already expanded.
                    if self._state_store is not None:
                        remaining = self._max_depth - depth
                        if phases is None:
                            live = self._state_store.visit(key, remaining)
                        else:
                            t0 = perf_counter()
                            live = self._state_store.visit(key, remaining)
                            phases["cache"] += perf_counter() - t0
                        if not live:
                            self._leaf(state)

                    # Fused per-state analysis: ONE pass over the
                    # processes computes the deadlock/termination flags,
                    # the enabled set and the control projection — per
                    # process the interned id of its pending transition
                    # signature (or a status marker), plus the enabled
                    # bitmask — replacing the three full scans of
                    # is_deadlock / all_terminated / enabled_processes.
                    t0 = perf_counter() if phases is not None else 0.0
                    enabled = []
                    control_ids = []
                    enabled_mask = 0
                    any_visible = False
                    all_parked = True  # AT_VISIBLE or blocked forever
                    all_terminated = True
                    for index, process in enumerate(run.processes):
                        status = process.status
                        if status is ProcessStatus.AT_VISIBLE:
                            any_visible = True
                            all_terminated = False
                            request = process.pending
                            entry = process._sig_entry
                            if entry is None or entry[0] is not request:
                                entry = intern_signature(process, request)
                            control_ids.append(entry[2])
                            if request.obj is None or request.obj.enabled(request.op):
                                enabled.append(process)
                                enabled_mask |= 1 << index
                        elif status is ProcessStatus.TERMINATED:
                            control_ids.append(-1)
                        else:
                            all_terminated = False
                            if status is ProcessStatus.CRASHED:
                                control_ids.append(-2)
                            elif status is ProcessStatus.DIVERGED:
                                control_ids.append(-3)
                            else:
                                control_ids.append(-4)
                                all_parked = False
                    enabled_count = len(enabled)
                    is_deadlock = all_parked and any_visible and not enabled_count

                    # The persistent candidate set is a pure function of
                    # the control projection (the closure reads only
                    # transition signatures, enabledness and the static
                    # footprints), so it is memoized on an int-tuple key —
                    # far cheaper to build and hash than a full state key.
                    memo = self._state_memo
                    if (
                        memo is not None
                        and self._persistent is not None
                        and enabled_count > 1
                    ):
                        pkey = (tuple(control_ids), enabled_mask)
                        entry = memo.get(pkey)
                        if entry is None:
                            candidates = self._persistent.persistent_choices(run, enabled)
                            cand_names = tuple(p.name for p in candidates)
                            sigs = tuple(signature_of(p) for p in candidates)
                            memo[pkey] = (cand_names, sigs)
                        else:
                            cand_names, sigs = entry
                    else:
                        if self._persistent is not None and enabled_count > 1:
                            candidates = self._persistent.persistent_choices(run, enabled)
                        else:
                            candidates = enabled
                        cand_names = tuple(p.name for p in candidates)
                        sigs = tuple(signature_of(p) for p in candidates)
                    if phases is not None:
                        phases["por"] += perf_counter() - t0

                    if is_deadlock:
                        if len(report.deadlocks) < self._max_events:
                            report.deadlocks.append(
                                DeadlockEvent(state.trace(), *_blocked_info(run))
                            )
                            if self._tracer is not None:
                                self._tracer.instant("deadlock", cat="event", depth=depth)
                        self._leaf(state)
                    if all_terminated:
                        self._leaf(state)
                    if depth >= self._max_depth:
                        report.truncated = True
                        self._leaf(state)

                    if not enabled_count:
                        # Every live process is blocked but some processes
                        # crashed/diverged/terminated: nothing can move.
                        self._leaf(state)

                    stats.enabled_transitions += enabled_count
                    stats.persistent_transitions += len(cand_names)

                    if current_sleep:
                        filtered_names: Any = []
                        filtered_sigs: Any = []
                        for name, sig in zip(cand_names, sigs):
                            if sig is not None and sig in current_sleep:
                                stats.sleep_prunes += 1
                                continue
                            filtered_names.append(name)
                            filtered_sigs.append(sig)
                        if not filtered_names:
                            # All moves are asleep: covered elsewhere.
                            self._leaf(state)
                    else:
                        # Empty sleep set (the common case): the memoized
                        # tuples are the filtered lists — no copies.
                        filtered_names = cand_names
                        filtered_sigs = sigs

                    before = len(state.stack)
                    point = self._choice(
                        state,
                        "schedule",
                        filtered_names,
                        current_sleep,
                        filtered_sigs,
                        depth,
                        current_sleep,
                    )
                    created = len(state.stack) > before
                    fanout = len(filtered_names)
            else:
                # Resuming at a bumped schedule point: the global state was
                # processed when the point was created (a replay would not
                # re-count it either — it is not fresh ground on a replay
                # pass), so go straight to executing the next alternative.
                # The creation-time fan-out equals len(alternatives).
                point = pending_schedule
                pending_schedule = None
                created = False
                fanout = len(point.alternatives)

            chosen_name = point.chosen
            chosen = run.process_map[chosen_name]
            chosen_sig = point.sigs[point.index] if point.sigs else signature_of(chosen)
            sched = self._sched_cache.get(chosen_name)
            if sched is None:
                sched = self._sched_cache[chosen_name] = ScheduleChoice(chosen_name)
            state.choices.append(sched)

            request = chosen.visible_request
            detail = ""
            obj_name = request.obj.name if request.obj is not None else None
            if phases is None:
                outcome = run.execute_visible(chosen)
            else:
                t0 = perf_counter()
                outcome = run.execute_visible(chosen)
                phases["engine"] += perf_counter() - t0
            if coverage is not None:
                if phases is None:
                    entries = chosen.engine.take_trace()
                    if entries:
                        coverage.segment(chosen_name, entries, state.fresh_edge)
                else:
                    t0 = perf_counter()
                    entries = chosen.engine.take_trace()
                    if entries:
                        coverage.segment(chosen_name, entries, state.fresh_edge)
                    phases["coverage"] += perf_counter() - t0
            if state.fresh_edge:
                report.transitions_executed += 1
                if self._on_step is not None:
                    self._on_step(
                        "schedule", chosen_name, request, depth, fanout, created
                    )
            else:
                stats.replayed_transitions += 1
            step_key = (chosen_name, request.op, obj_name, detail)
            step = self._step_cache.get(step_key)
            if step is None:
                step = self._step_cache[step_key] = TraceStep(
                    chosen_name, request.op, obj_name, detail
                )
            state.steps.append(step)
            depth += 1
            if outcome is not None and outcome.violated and state.fresh_edge:
                if self._tracer is not None:
                    self._tracer.instant(
                        "assertion-violation",
                        cat="event",
                        process=outcome.proc_name,
                        depth=depth,
                    )
                if len(report.violations) < self._max_events:
                    report.violations.append(
                        AssertionViolationEvent(
                            state.trace(),
                            outcome.process,
                            outcome.proc_name,
                            outcome.node_id,
                        )
                    )
                else:
                    report.violations.append(
                        AssertionViolationEvent(
                            Trace((), ()), outcome.process, outcome.proc_name, outcome.node_id
                        )
                    )
            self._note_broken_one(state, chosen)
            may_toss = chosen.status is ProcessStatus.NEEDS_TOSS
            if self._stop_on_first and not report.ok:
                self._leaf(state)

            # Sleep set carried into the successor state.
            if not self._sleep_sets:
                current_sleep = _EMPTY_SLEEP
            elif chosen_sig is not None:
                if point.index == 0 and not point.sleep:
                    # First alternative under an empty inherited set:
                    # nothing to merge, nothing to filter.
                    current_sleep = _EMPTY_SLEEP
                else:
                    explored = [
                        sig
                        for sig in point.sigs[: point.index]
                        if sig is not None
                    ]
                    current_sleep = augment_sleep(point.sleep, explored, chosen_sig)
            else:
                current_sleep = _EMPTY_SLEEP

    # -- choice handling ---------------------------------------------------------------

    def _choice(
        self,
        state: "_ExecState",
        kind: str,
        alternatives: list[Any],
        sleep: frozenset[TransitionSig],
        sigs: list[TransitionSig | None],
        depth: int = 0,
        resume_sleep: frozenset[TransitionSig] = frozenset(),
    ) -> _ChoicePoint:
        if state.ptr < len(state.stack):
            point = state.stack[state.ptr]
            state.ptr += 1
            if point.kind != kind:
                raise RuntimeError(
                    "replay divergence: expected a "
                    f"{point.kind} choice, got {kind} — the runtime is not deterministic"
                )
            return point
        # Alternatives/sigs may arrive as lazy ranges or memoized tuples —
        # materialized as lists only here, on point *creation* (replayed
        # visits never touch them, so the hot path allocates nothing).
        point = _ChoicePoint(
            kind=kind, alternatives=list(alternatives), sleep=sleep, sigs=list(sigs)
        )
        if kind == "toss":
            # Counted at creation so replays do not double-count.
            state.report.toss_points += 1
        if self._restore and len(alternatives) > 1:
            # Checkpoint *before* the point's own choice/step is appended,
            # so re-entry truncates back to exactly this prefix.  Points
            # with a single alternative are exhausted at creation — they
            # are popped during backtracking without ever being resumed,
            # so checkpointing them would be pure waste.
            checkpoint = state.run.checkpoint()
            point.resume = _ResumeInfo(
                checkpoint=checkpoint,
                depth=depth,
                sleep=resume_sleep,
                choices_len=len(state.choices),
                steps_len=len(state.steps),
                noted_broken=frozenset(state.noted_broken),
            )
            self._live_checkpoint_bytes += checkpoint.approx_bytes
            if self._live_checkpoint_bytes > self._peak_checkpoint_bytes:
                self._peak_checkpoint_bytes = self._live_checkpoint_bytes
        state.stack.append(point)
        state.ptr += 1
        return point

    def _toss_choice(self, name: str, value: int) -> TossChoice:
        key = (name, value)
        choice = self._toss_cache.get(key)
        if choice is None:
            choice = self._toss_cache[key] = TossChoice(name, value)
        return choice

    def _leaf(self, state: "_ExecState") -> None:
        if self._on_leaf is not None and state.fresh:
            self._on_leaf(state.run, state.trace())
        raise _Leaf()

    def _note_broken_processes(self, state: "_ExecState") -> None:
        for process in state.run.processes:
            self._note_broken_one(state, process)

    def _note_broken_one(self, state: "_ExecState", process: Process) -> None:
        """Record ``process`` if it just crashed or diverged.

        Only the process that was last resumed can have changed status,
        so the per-transition path checks that single process instead of
        rescanning the whole system.
        """
        status = process.status
        if status is not ProcessStatus.CRASHED and status is not ProcessStatus.DIVERGED:
            return
        if process.name in state.noted_broken:
            return
        report = state.report
        state.noted_broken.add(process.name)
        if status is ProcessStatus.CRASHED:
            if state.fresh_edge and len(report.crashes) < self._max_events:
                report.crashes.append(
                    CrashEvent(state.trace(), process.name, str(process.crash))
                )
            elif state.fresh_edge:
                report.crashes.append(CrashEvent(Trace((), ()), process.name, ""))
        else:
            if state.fresh_edge and len(report.divergences) < self._max_events:
                report.divergences.append(DivergenceEvent(state.trace(), process.name))
            elif state.fresh_edge:
                report.divergences.append(DivergenceEvent(Trace((), ()), process.name))


def _blocked_info(run: Run) -> tuple[tuple[str, ...], tuple[tuple[str, str, str | None], ...]]:
    """Names and pending-operation details of the blocked processes."""
    blocked = []
    waiting = []
    for process in run.processes:
        if process.status is ProcessStatus.AT_VISIBLE:
            blocked.append(process.name)
            request = process.visible_request
            obj = request.obj.name if request.obj is not None else None
            waiting.append((process.name, request.op, obj))
    return tuple(blocked), tuple(waiting)


@dataclass
class _ExecState:
    """Mutable state of one (re-)execution."""

    run: Run
    stack: list[_ChoicePoint]
    replay_len: int
    report: ExplorationReport
    #: Replay length for *edge-anchored* recording (transitions executed,
    #: violations, crashes).  Normally equal to ``replay_len`` — the last
    #: replayed choice point was freshly bumped, so the edge out of it is
    #: new ground.  On the first execution over a frozen parallel prefix
    #: nothing is bumped: every prefix edge (including the one *into* the
    #: frontier state) was already executed and recorded by the
    #: coordinator, so edge recording starts one choice later.
    edge_replay_len: int = 0
    ptr: int = 0
    choices: list[Choice] = field(default_factory=list)
    steps: list[TraceStep] = field(default_factory=list)
    noted_broken: set[str] = field(default_factory=set)

    @property
    def fresh(self) -> bool:
        """Whether execution has passed the replayed prefix (state-anchored
        events and statistics are only recorded on fresh ground, so
        replays do not double-count)."""
        return self.ptr >= self.replay_len

    @property
    def fresh_edge(self) -> bool:
        """Like :attr:`fresh`, for recording anchored to the transition
        just executed rather than to the current global state."""
        return self.ptr >= self.edge_replay_len

    def trace(self) -> Trace:
        return Trace(tuple(self.choices), tuple(self.steps))


class ReplayMismatch(RuntimeError):
    """A recorded choice could not be applied during :func:`replay`.

    On an unchanged system replay is exact (the runtime is
    deterministic), so a mismatch means the trace and the system have
    diverged — the program was edited, the system description changed,
    or the choice sequence was mutated (e.g. by a shrinking candidate).
    The exception records *where* and *why* for diagnosis
    (:mod:`repro.counterex.replay` turns it into a human-readable
    verdict).
    """

    def __init__(self, index: int, choice: Choice, reason: str):
        super().__init__(f"replay mismatch at choice {index} ({choice.describe()}): {reason}")
        self.index = index
        self.choice = choice
        self.reason = reason


def apply_choice(run: Run, index: int, choice: Choice) -> tuple[Any, Any]:
    """Apply one recorded ``choice`` to a live ``run``.

    Returns ``(visible_request_or_None, assertion_outcome_or_None)``.
    All validation happens *before* any state is mutated, so a
    :class:`ReplayMismatch` leaves the run exactly as it was — the
    property the incremental (checkpoint-reusing) replayer relies on to
    keep its live run valid across rejected shrink candidates.
    """
    request = None
    outcome = None
    if isinstance(choice, TossChoice):
        process = run.toss_pending()
        if process is None:
            raise ReplayMismatch(index, choice, "no process is awaiting a VS_toss")
        if process.name != choice.process:
            raise ReplayMismatch(
                index, choice, f"the pending VS_toss belongs to {process.name!r}"
            )
        bound = process.toss_request.bound
        if not (0 <= choice.value <= bound):
            raise ReplayMismatch(
                index, choice, f"toss value {choice.value} outside 0..{bound}"
            )
        run.answer_toss(process, choice.value)
    else:
        if run.toss_pending() is not None:
            raise ReplayMismatch(
                index,
                choice,
                f"process {run.toss_pending().name!r} has an unanswered VS_toss",
            )
        process = next(
            (p for p in run.processes if p.name == choice.process), None
        )
        if process is None:
            raise ReplayMismatch(index, choice, "no such process")
        if process.status is not ProcessStatus.AT_VISIBLE:
            raise ReplayMismatch(
                index,
                choice,
                f"process is {process.status.value}, not at a visible operation",
            )
        if not process.enabled():
            request = process.visible_request
            op = request.op if request is not None else "?"
            raise ReplayMismatch(
                index, choice, f"visible operation {op!r} is not enabled"
            )
        request = process.visible_request
        outcome = run.execute_visible(process)
    return request, outcome


def replay(
    system: System,
    trace: Trace | Iterable[Choice],
    on_step: Callable[[int, Choice, Any, Any], None] | None = None,
    engine: str = "walk",
) -> Run:
    """Re-execute a recorded choice sequence on a fresh run of ``system``.

    ``trace`` is a :class:`Trace` or a bare iterable of choices.  Returns
    the resulting :class:`Run` (for inspecting stores, sink outputs,
    final statuses, ...).  ``on_step`` is invoked after every applied
    choice with ``(index, choice, visible_request_or_None,
    assertion_outcome_or_None)`` — the hook the counterexample engine
    uses to rebuild trace steps and observe violations.  ``engine``
    selects the execution engine (both replay identically; see
    :mod:`repro.runtime.engine`).

    Raises :class:`ReplayMismatch` when a choice does not apply — the
    named process does not exist, is not at an enabled visible
    operation, a ``VS_toss`` answer is missing or out of bounds — with
    the index and reason recorded for diagnosis.
    """
    choices = trace.choices if isinstance(trace, Trace) else tuple(trace)
    run = system.start(engine=engine)
    run.start_processes()
    for index, choice in enumerate(choices):
        request, outcome = apply_choice(run, index, choice)
        if on_step is not None:
            on_step(index, choice, request, outcome)
    return run


def collect_output_traces(
    system: System,
    sink: str,
    max_depth: int = 200,
    max_paths: int | None = None,
) -> set[tuple]:
    """All visible output traces of ``system`` on environment sink ``sink``.

    Explores every path (partial-order reduction off, so every
    interleaving's outputs are observed) and collects the sink's output
    sequence at each leaf.  Used by the Figure 2/3 behaviour-equivalence
    experiments.
    """
    traces: set[tuple] = set()

    def on_leaf(run: Run, _trace: Trace) -> None:
        traces.add(tuple(run.env_outputs(sink)))

    explorer = Explorer(
        system,
        max_depth=max_depth,
        por=False,
        max_paths=max_paths,
        on_leaf=on_leaf,
    )
    explorer.run()
    return traces
