"""The VeriSoft substrate: systematic state-space exploration with
partial-order reduction, for closed concurrent systems.

The DFS backtracks in one of two modes (``SearchOptions.backtrack``):
*restore* (the default) keeps undo-journal checkpoints at choice points
and rewinds the live run in O(changes), while *replay* is the classic
VeriSoft stateless mode that re-executes the path prefix from scratch.
Both explore the identical choice tree and report identical results.

The unified entry point is :func:`run_search` driven by a
:class:`SearchOptions` (``strategy`` picks DFS vs random walks,
``engine`` picks the walking vs compiled execution engine);
:func:`replay` re-executes a recorded trace.
"""

from .behaviors import behavior_inclusion, matches_with_erasure, missing_behaviors
from .explorer import (
    Explorer,
    ReplayMismatch,
    apply_choice,
    collect_output_traces,
    replay,
)
from .parallel import (
    ChoicePrefix,
    PrefixPoint,
    enumerate_prefixes,
    harvest_residual,
    merge_reports,
    parallel_search,
    prefix_key,
    warn_oversubscription,
)
from .search import ENGINES, SCHEDULERS, STRATEGIES, SearchOptions, run_search
from .stats import ProgressPrinter, SearchStats
from .por import (
    PersistentSetComputer,
    TransitionSig,
    independent,
    process_footprint,
    signature_of,
)
from .results import (
    AssertionViolationEvent,
    Choice,
    CrashEvent,
    DeadlockEvent,
    DivergenceEvent,
    ExplorationReport,
    ScheduleChoice,
    TossChoice,
    Trace,
    TraceStep,
)

__all__ = [
    "AssertionViolationEvent",
    "Choice",
    "ChoicePrefix",
    "CrashEvent",
    "DeadlockEvent",
    "DivergenceEvent",
    "ENGINES",
    "ExplorationReport",
    "Explorer",
    "PersistentSetComputer",
    "PrefixPoint",
    "ProgressPrinter",
    "ReplayMismatch",
    "SCHEDULERS",
    "STRATEGIES",
    "ScheduleChoice",
    "SearchOptions",
    "SearchStats",
    "TossChoice",
    "Trace",
    "TraceStep",
    "TransitionSig",
    "apply_choice",
    "behavior_inclusion",
    "collect_output_traces",
    "enumerate_prefixes",
    "harvest_residual",
    "independent",
    "matches_with_erasure",
    "merge_reports",
    "missing_behaviors",
    "parallel_search",
    "prefix_key",
    "process_footprint",
    "replay",
    "run_search",
    "signature_of",
    "warn_oversubscription",
]
