"""The VeriSoft substrate: stateless systematic state-space exploration
with partial-order reduction, for closed concurrent systems."""

from .behaviors import behavior_inclusion, matches_with_erasure, missing_behaviors
from .explorer import Explorer, collect_output_traces, explore, replay
from .random_walk import random_walks
from .por import (
    PersistentSetComputer,
    TransitionSig,
    independent,
    process_footprint,
    signature_of,
)
from .results import (
    AssertionViolationEvent,
    Choice,
    CrashEvent,
    DeadlockEvent,
    DivergenceEvent,
    ExplorationReport,
    ScheduleChoice,
    TossChoice,
    Trace,
    TraceStep,
)

__all__ = [
    "AssertionViolationEvent",
    "Choice",
    "CrashEvent",
    "DeadlockEvent",
    "DivergenceEvent",
    "ExplorationReport",
    "Explorer",
    "PersistentSetComputer",
    "ScheduleChoice",
    "TossChoice",
    "Trace",
    "TraceStep",
    "TransitionSig",
    "behavior_inclusion",
    "collect_output_traces",
    "explore",
    "independent",
    "matches_with_erasure",
    "missing_behaviors",
    "process_footprint",
    "random_walks",
    "replay",
    "signature_of",
]
