"""Search telemetry: live counters for every exploration strategy.

VeriSoft-style stateless search spends almost all of its time
re-executing the system; without instrumentation it is a black box that
either terminates or does not.  :class:`SearchStats` is the one place
every counter lives — states, transitions, toss points, partial-order
reduction effectiveness, replay overhead, throughput — threaded through
:class:`~repro.verisoft.explorer.Explorer`,
:func:`~repro.verisoft.random_walk.random_walks` and the parallel
driver (:mod:`repro.verisoft.parallel`), and surfaced on every
:class:`~repro.verisoft.results.ExplorationReport` as ``report.stats``.

A periodic progress callback (see
:attr:`~repro.verisoft.search.SearchOptions.progress`) receives the
live :class:`SearchStats`; :class:`ProgressPrinter` is the stock
consumer behind the CLI's ``--progress`` flag, printing a one-line
ticker that overwrites itself.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, fields
from typing import IO, Iterable


@dataclass
class SearchStats:
    """Aggregate counters of one search (or one merged parallel search).

    Counter semantics match :class:`ExplorationReport` where the names
    overlap; the extra fields instrument the machinery itself:

    * ``backtrack`` — how the DFS backtracked: ``"replay"`` (stateless
      re-execution) or ``"restore"`` (undo-journal checkpointing; see
      :mod:`repro.runtime.journal`).
    * ``engine`` — which execution engine actually drove the runs:
      ``"walk"`` (the reference tree-walking interpreter) or
      ``"compiled"`` (:mod:`repro.runtime.compile`).  Records the
      *resolved* engine: a ``"compiled"`` request that fell back (the
      program uses a construct the compiler does not support) reports
      ``"walk"``.
    * ``replays`` / ``replayed_transitions`` — how many re-executions
      the stateless backtracking performed and how many transitions were
      spent merely reconstructing a known prefix (the paper's price for
      storing no states).  Both ``0`` in restore mode, except that
      parallel workers still replay their frozen prefix once.
    * ``restores`` / ``undo_entries`` / ``checkpoint_memory_bytes`` —
      restore-mode telemetry: journal rewinds performed, undo entries
      recorded, and the accounting-model peak footprint of the journal
      plus the live checkpoints (all ``0`` in replay mode).
    * ``enabled_transitions`` / ``persistent_transitions`` — summed over
      every fresh global state; their ratio
      (:attr:`reduction_ratio`) measures how hard the persistent-set
      reduction is working (1.0 = no reduction).
    * ``sleep_prunes`` — transitions skipped because their signature was
      asleep.
    * ``prefixes`` / ``jobs`` — parallel-driver shape (0/1 for
      sequential strategies).  The work-stealing scheduler
      (:mod:`repro.service.scheduler`) reports its total lease count as
      ``prefixes``.
    * ``leases`` / ``steals`` / ``leases_requeued`` — work-stealing
      telemetry (all 0 under the static partition and the sequential
      strategies): subtree leases issued over the search's lifetime,
      how many of them were split off a busy worker by a steal request,
      and how many were re-queued because the worker holding them died.
      Timing-dependent — two runs of the same search may steal
      differently — so these live with the backtracking-cost group,
      outside the counter-parity contract.
    * ``state_cache`` / ``cache_*`` — state-space caching
      (:mod:`repro.statespace`): which store was active (``"off"``
      when none), pruned revisits (``cache_hits``), expanded visits
      (``cache_misses``), distinct states held (``cache_stored``) and
      the store's accounting-model footprint (``cache_memory_bytes``).
      Parallel searches sum the counters over per-worker stores.
    """

    strategy: str = "dfs"
    backtrack: str = "replay"
    engine: str = "walk"
    states_visited: int = 0
    transitions_executed: int = 0
    toss_points: int = 0
    paths_explored: int = 0
    max_depth_reached: int = 0
    replays: int = 0
    replayed_transitions: int = 0
    restores: int = 0
    undo_entries: int = 0
    checkpoint_memory_bytes: int = 0
    enabled_transitions: int = 0
    persistent_transitions: int = 0
    sleep_prunes: int = 0
    wall_time: float = 0.0
    cpu_time: float = 0.0
    jobs: int = 1
    prefixes: int = 0
    leases: int = 0
    steals: int = 0
    leases_requeued: int = 0
    state_cache: str = "off"
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stored: int = 0
    cache_memory_bytes: int = 0
    #: Coverage gauges (searches run with ``coverage=True``; 0/0
    #: otherwise): *distinct* CFG nodes reached so far vs the static
    #: universe.  Gauges, not counters — distinct-set sizes do not sum
    #: across shards, so :meth:`add` keeps the receiver's values and the
    #: drivers set the merged search's gauges from the merged
    #: :class:`~repro.obs.coverage.CoverageCollector` explicitly.
    coverage_nodes: int = 0
    coverage_nodes_total: int = 0
    #: Live work-stealing gauge: subtree leases currently queued or
    #: running (0 once the search drains).  Same gauge semantics.
    frontier_pending: int = 0

    # -- derived ------------------------------------------------------------

    @property
    def reduction_ratio(self) -> float | None:
        """``persistent / enabled`` over all fresh states (lower is a
        stronger partial-order reduction); ``None`` before any state."""
        if not self.enabled_transitions:
            return None
        return self.persistent_transitions / self.enabled_transitions

    @property
    def states_per_second(self) -> float:
        if self.wall_time <= 0.0:
            return 0.0
        return self.states_visited / self.wall_time

    @property
    def replay_overhead(self) -> float | None:
        """Fraction of executed transitions spent replaying prefixes."""
        total = self.transitions_executed + self.replayed_transitions
        if not total:
            return None
        return self.replayed_transitions / total

    @property
    def replay_fraction(self) -> float | None:
        """Alias for :attr:`replay_overhead` — the headline number of
        the backtracking benchmarks (≈0 in restore mode)."""
        return self.replay_overhead

    @property
    def cache_hit_ratio(self) -> float | None:
        """Pruned revisits over all store consultations; ``None``
        before any consultation (or with caching off)."""
        total = self.cache_hits + self.cache_misses
        if not total:
            return None
        return self.cache_hits / total

    @property
    def cache_bytes_per_state(self) -> float | None:
        """Store footprint per distinct stored state (the memory lever
        of the compacting stores); ``None`` with nothing stored."""
        if not self.cache_stored:
            return None
        return self.cache_memory_bytes / self.cache_stored

    # -- aggregation --------------------------------------------------------

    _SUMMED = (
        "states_visited",
        "transitions_executed",
        "toss_points",
        "paths_explored",
        "replays",
        "replayed_transitions",
        "restores",
        "undo_entries",
        "checkpoint_memory_bytes",
        "enabled_transitions",
        "persistent_transitions",
        "sleep_prunes",
        "cpu_time",
        "cache_hits",
        "cache_misses",
        "cache_stored",
        "cache_memory_bytes",
    )

    def add(self, other: "SearchStats") -> None:
        """Fold ``other``'s counters into this one.

        Merge semantics (the parallel driver folds per-worker stats with
        this; relied on by :meth:`merged`):

        * every counter in ``_SUMMED`` is a plain sum — including
          ``cpu_time``, which totals over processes and may therefore
          exceed ``wall_time``;
        * ``wall_time`` is **not** summed: elapsed time is the
          coordinator's concern and is overwritten by the driver after
          merging;
        * ``max_depth_reached`` is the maximum, not the sum;
        * the *receiver* keeps its identity fields — ``strategy``,
          ``backtrack``, ``engine``, ``jobs``, ``prefixes`` and the
          work-stealing counters (``leases``/``steals``/
          ``leases_requeued``) describe the merged search, not any one
          part, so ``other``'s values are ignored (the drivers set them
          on the merged stats explicitly);
        * ``state_cache`` is adopted from ``other`` only when the
          receiver has none (``"off"``) — mixed-store merges keep the
          first kind seen;
        * the coverage/frontier gauges (``coverage_nodes``,
          ``coverage_nodes_total``, ``frontier_pending``) are kept from
          the receiver like the identity fields: distinct-set sizes and
          queue depths do not sum, the drivers set them on the merged
          stats from the merged coverage collector / live queue;
        * caveat: ``cache_stored``/``cache_memory_bytes`` are summed
          over *private* per-worker stores, so a state whose digest is
          held by several workers (reached in several subtrees) is
          counted once per store.  The sums are exact for sequential
          searches and an upper bound on distinct storage for parallel
          ones.
        """
        for name in self._SUMMED:
            setattr(self, name, getattr(self, name) + getattr(other, name))
        self.max_depth_reached = max(self.max_depth_reached, other.max_depth_reached)
        if self.state_cache == "off" and other.state_cache != "off":
            self.state_cache = other.state_cache

    @classmethod
    def merged(cls, parts: Iterable["SearchStats"], **overrides) -> "SearchStats":
        out = cls(**overrides)
        for part in parts:
            out.add(part)
        return out

    # -- presentation -------------------------------------------------------

    def ticker_line(self) -> str:
        """The live one-line progress ticker."""
        bits = [
            f"[{self.strategy}]",
            f"paths={self.paths_explored}",
            f"states={self.states_visited}",
            f"depth<={self.max_depth_reached}",
            f"{self.states_per_second:,.0f} states/s",
        ]
        if self.coverage_nodes_total:
            bits.append(
                f"cov={100.0 * self.coverage_nodes / self.coverage_nodes_total:.0f}%"
            )
        if self.frontier_pending:
            bits.append(f"pending={self.frontier_pending}")
        ratio = self.reduction_ratio
        if ratio is not None:
            bits.append(f"por={ratio:.2f}")
        if self.sleep_prunes:
            bits.append(f"sleep-prunes={self.sleep_prunes}")
        if self.state_cache != "off":
            hit = self.cache_hit_ratio
            bits.append(
                f"cache={self.state_cache}:{self.cache_hits}"
                + (f" ({hit:.0%})" if hit is not None else "")
            )
        if self.jobs > 1:
            bits.append(f"jobs={self.jobs}")
        if self.steals or self.leases_requeued:
            bits.append(f"steals={self.steals}")
            if self.leases_requeued:
                bits.append(f"requeued={self.leases_requeued}")
        return " ".join(bits)

    def describe(self) -> str:
        """Multi-line post-run summary (CLI, benchmark tables)."""
        lines = [
            f"strategy:        {self.strategy}"
            + (f" (jobs={self.jobs}, prefixes={self.prefixes})" if self.jobs > 1 else ""),
            f"states visited:  {self.states_visited}",
            f"transitions:     {self.transitions_executed}",
            f"toss points:     {self.toss_points}",
            f"paths explored:  {self.paths_explored}",
            f"max depth:       {self.max_depth_reached}",
            f"engine:          {self.engine}",
            f"backtracking:    {self.backtrack}"
            + (
                f" ({self.restores} restores, {self.undo_entries} undo entries, "
                f"{self.checkpoint_memory_bytes} B checkpoints)"
                if self.backtrack == "restore"
                else ""
            ),
            f"replays:         {self.replays}",
            f"replay fraction: "
            + (
                f"{self.replay_fraction:.1%} of executed transitions"
                if self.replay_fraction is not None
                else "—"
            ),
            f"sleep prunes:    {self.sleep_prunes}",
        ]
        if self.leases:
            lines.append(
                f"work stealing:   {self.leases} leases, {self.steals} steals, "
                f"{self.leases_requeued} requeued"
            )
        ratio = self.reduction_ratio
        if ratio is not None:
            lines.append(f"POR ratio:       {ratio:.3f} (persistent/enabled)")
        if self.state_cache != "off":
            hit = self.cache_hit_ratio
            per_state = self.cache_bytes_per_state
            lines.append(
                f"state cache:     {self.state_cache} — "
                f"{self.cache_hits} prunes / {self.cache_misses} expansions"
                + (f" ({hit:.0%} hit ratio)" if hit is not None else "")
            )
            lines.append(
                f"cache memory:    {self.cache_memory_bytes} B, "
                f"{self.cache_stored} states"
                + (f" ({per_state:.1f} B/state)" if per_state is not None else "")
            )
        lines.append(
            f"time:            {self.wall_time:.3f}s wall, {self.cpu_time:.3f}s cpu"
        )
        lines.append(f"throughput:      {self.states_per_second:,.0f} states/s")
        return "\n".join(lines)

    def as_dict(self) -> dict:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def json_dict(self) -> dict:
        """:meth:`as_dict` plus the derived metrics, for machine
        consumption (the CLI's ``--stats-json``).  Unlike
        :meth:`as_dict` this does *not* round-trip through
        ``SearchStats(**d)`` — the derived keys are read-only."""
        out = self.as_dict()
        out["reduction_ratio"] = self.reduction_ratio
        out["replay_overhead"] = self.replay_overhead
        out["replay_fraction"] = self.replay_fraction
        out["states_per_second"] = self.states_per_second
        out["cache_hit_ratio"] = self.cache_hit_ratio
        out["cache_bytes_per_state"] = self.cache_bytes_per_state
        out["coverage_percent"] = (
            100.0 * self.coverage_nodes / self.coverage_nodes_total
            if self.coverage_nodes_total
            else None
        )
        return out


class ProgressPrinter:
    """Stock progress consumer: a self-overwriting ticker block.

    Use as the ``progress`` callback of any search; call :meth:`finish`
    (or use as a context manager) to terminate the output cleanly.

    On a TTY the printer redraws in place: the one-line ticker plus any
    per-worker health lines (fed by the parallel driver through
    :meth:`worker_lines`) form a block that is erased and rewritten on
    every tick.  On a non-TTY stream (a file, a pipe, a CI log — decided
    once via ``stream.isatty()``) ANSI erase sequences would be garbage,
    so the printer falls back to plain newline-separated lines at a
    reduced rate: at most one update per ``plain_interval`` seconds
    (the first update always prints).
    """

    def __init__(
        self, stream: IO[str] | None = None, plain_interval: float = 5.0
    ):
        self._stream = stream if stream is not None else sys.stderr
        isatty = getattr(self._stream, "isatty", None)
        self._tty = bool(isatty()) if callable(isatty) else False
        self._plain_interval = plain_interval
        self._last_plain = 0.0  # 0.0 == never printed: first tick always prints
        self._dirty = False
        self._lines_drawn = 0
        self._worker_lines: list[str] = []

    def worker_lines(self, lines: Iterable[str]) -> None:
        """Set the per-worker health lines appended below the ticker
        (the parallel driver feeds these from its
        :class:`~repro.obs.heartbeat.HeartbeatMonitor`)."""
        self._worker_lines = list(lines)

    def warn(self, message: str) -> None:
        """Print a warning without colliding with the live ticker: the
        block is erased first, the warning gets its own line, and the
        next tick redraws the block below it."""
        self._erase()
        self._stream.write(f"warning: {message}\n")
        self._stream.flush()

    def _erase(self) -> None:
        """Erase the previously drawn block (TTY only)."""
        if not self._tty or not self._lines_drawn:
            return
        self._stream.write("\r\x1b[2K")
        for _ in range(self._lines_drawn - 1):
            self._stream.write("\x1b[1A\x1b[2K")
        self._lines_drawn = 0

    def __call__(self, stats: SearchStats) -> None:
        block = [stats.ticker_line()]
        block.extend(f"  {line}" for line in self._worker_lines)
        if self._tty:
            self._erase()
            self._stream.write("\n".join(block))
            self._stream.flush()
            self._lines_drawn = len(block)
            self._dirty = True
        else:
            now = time.monotonic()
            if self._last_plain and now - self._last_plain < self._plain_interval:
                return
            self._last_plain = now
            self._stream.write("\n".join(block) + "\n")
            self._stream.flush()

    def finish(self) -> None:
        """Terminate the live block so subsequent output starts on a
        fresh line (plain mode already newline-terminates)."""
        if self._dirty:
            self._stream.write("\n")
            self._stream.flush()
            self._dirty = False
            self._lines_drawn = 0

    def __enter__(self) -> "ProgressPrinter":
        return self

    def __exit__(self, *exc) -> None:
        self.finish()
