"""State-space caching: canonical snapshots and pluggable visited-state
stores for revisit pruning.

The VeriSoft-style search (:mod:`repro.verisoft`) is deliberately
*stateless*: it stores no global states and pays for that by fully
re-exploring every state it reaches along more than one path.  This
package is the complement — the classic SPIN-lineage state-space cache:

* :mod:`repro.statespace.snapshot` turns a live
  :class:`~repro.runtime.system.Run` into a **canonical byte string**
  (per-process control location + local stores + shared objects,
  serialized deterministically through the
  :func:`repro.runtime.values.fingerprint` machinery);
* :mod:`repro.statespace.stores` keeps the set of snapshots seen so far
  behind one :class:`StateStore` interface, with three space/soundness
  trade-offs — :class:`ExactStore` (full snapshots, sound),
  :class:`HashCompactStore` (64-bit digests, near-sound) and
  :class:`BitstateStore` (SPIN-style bitstate/Bloom hashing, smallest).

The explorer consults the store at every freshly reached global state
and prunes the subtree when the state was already expanded; see
``docs/state_caching.md`` for the soundness discussion (depth bounds,
sleep sets, hash collisions).
"""

from .snapshot import decode_canonical, digest64, encode_canonical, snapshot
from .stores import (
    STORE_KINDS,
    BitstateStore,
    ExactStore,
    HashCompactStore,
    StateStore,
    make_store,
)

__all__ = [
    "BitstateStore",
    "ExactStore",
    "HashCompactStore",
    "STORE_KINDS",
    "StateStore",
    "decode_canonical",
    "digest64",
    "encode_canonical",
    "make_store",
    "snapshot",
]
