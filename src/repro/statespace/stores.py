"""Pluggable visited-state stores.

Every store answers one question — *"have I already expanded this
state, or must I explore it (again)?"* — through a single call,
:meth:`StateStore.visit`.  The three implementations trade memory for
soundness exactly like the SPIN family:

===================  =======================  ==============================
store                memory per state         can wrongly prune?
===================  =======================  ==============================
:class:`ExactStore`  full snapshot (~100s B)  never
:class:`HashCompactStore`  16 bytes           on a 64-bit digest collision
:class:`BitstateStore`     ~``2**bits/n`` bits  on a Bloom-filter collision
===================  =======================  ==============================

Depth awareness: the explorer searches under a depth bound, so a state
first reached near the bound has a *shallower* explored subtree than
the bound allows from a shallower revisit.  :class:`ExactStore` and
:class:`HashCompactStore` therefore remember the largest *remaining
depth budget* a state was expanded with and force re-expansion when a
revisit arrives with more budget — revisits never lose coverage to the
depth bound.  :class:`BitstateStore` stores single bits and cannot do
this; like SPIN's bitstate mode it trades that (and hash collisions)
for the smallest possible footprint.

Stores deliberately know nothing about the explorer; they see byte
strings and budgets.  Construction from CLI-level configuration goes
through :func:`make_store` so the search layer and the parallel workers
build identical stores from one picklable description.
"""

from __future__ import annotations

import hashlib

from .snapshot import digest64

#: The store kinds :func:`make_store` understands (``"off"`` → ``None``).
STORE_KINDS = ("off", "exact", "hashcompact", "bitstate")

#: Bookkeeping bytes per dict entry charged by the accounting model (the
#: stored remaining-depth integer); keys are charged at their real size.
_ENTRY_OVERHEAD = 8


class StateStore:
    """Interface of a visited-state store.

    Counters (all monotone):

    * :attr:`misses` — visits that led to expansion: first visits, plus
      revisits re-expanded because they arrived with a larger remaining
      depth budget;
    * :attr:`hits` — revisits pruned;
    * :attr:`states_stored` — distinct states currently stored;
    * :attr:`memory_bytes` — the store's accounting-model footprint
      (documented per store; comparable across stores, not a measured
      RSS).
    """

    kind = "abstract"

    def __init__(self) -> None:
        self.hits = 0
        self.misses = 0

    def visit(self, key: bytes, remaining: int) -> bool:
        """Record a visit to the state ``key`` with ``remaining`` depth
        budget below it; return ``True`` when the explorer must expand
        the state, ``False`` when the subtree can be pruned."""
        raise NotImplementedError

    @property
    def states_stored(self) -> int:
        raise NotImplementedError

    @property
    def memory_bytes(self) -> int:
        raise NotImplementedError

    def config(self) -> dict:
        """JSON-able store description (recorded on reports/traces)."""
        return {"store": self.kind}

    def describe(self) -> str:
        per_state = (
            self.memory_bytes / self.states_stored if self.states_stored else 0.0
        )
        return (
            f"{self.kind}: {self.states_stored} states, "
            f"{self.hits} hits / {self.misses} misses, "
            f"{self.memory_bytes} B ({per_state:.1f} B/state)"
        )


class ExactStore(StateStore):
    """Full-snapshot store: sound revisit detection, largest footprint.

    Maps each canonical snapshot to the largest remaining depth budget
    it was expanded with.  Memory model: every stored key is charged at
    its byte length plus ``8`` bookkeeping bytes.
    """

    kind = "exact"

    def __init__(self) -> None:
        super().__init__()
        self._table: dict[bytes, int] = {}
        self._key_bytes = 0

    def visit(self, key: bytes, remaining: int) -> bool:
        prev = self._table.get(key)
        if prev is not None and prev >= remaining:
            self.hits += 1
            return False
        if prev is None:
            self._key_bytes += len(key)
        self._table[key] = remaining
        self.misses += 1
        return True

    @property
    def states_stored(self) -> int:
        return len(self._table)

    @property
    def memory_bytes(self) -> int:
        return self._key_bytes + _ENTRY_OVERHEAD * len(self._table)


class HashCompactStore(StateStore):
    """Hash-compaction store: 64-bit digests instead of snapshots.

    Wolper/Leroy hash compaction — 16 bytes per state (8 B digest +
    8 B remaining-depth budget) regardless of snapshot size.  A digest
    collision makes a genuinely new state look like a revisit and
    wrongly prunes it; with ``n`` states the probability of *any*
    collision is about ``n² / 2⁶⁵`` (≈ 5·10⁻¹⁰ at a million states).
    """

    kind = "hashcompact"

    def __init__(self) -> None:
        super().__init__()
        self._table: dict[int, int] = {}

    def visit(self, key: bytes, remaining: int) -> bool:
        digest = digest64(key)
        prev = self._table.get(digest)
        if prev is not None and prev >= remaining:
            self.hits += 1
            return False
        self._table[digest] = remaining
        self.misses += 1
        return True

    @property
    def states_stored(self) -> int:
        return len(self._table)

    @property
    def memory_bytes(self) -> int:
        return 16 * len(self._table)


class BitstateStore(StateStore):
    """SPIN-style bitstate (supertrace) hashing.

    A fixed ``2**bits``-bit array; each state sets ``hashes``
    independent bit positions (a Bloom filter).  A revisit is declared
    when all its positions are already set — which a colliding pair of
    other states can fake, so coverage is probabilistic: with ``m``
    bits, ``k`` hashes and ``n`` states the expected false-positive
    rate is ``(1 - e^(-kn/m))^k``.  Ignores the remaining-depth budget
    (single bits cannot store one), so deep-first revisits may also
    lose coverage under a depth bound; use ``exact``/``hashcompact``
    when soundness matters more than memory.
    """

    kind = "bitstate"

    def __init__(self, bits: int = 24, hashes: int = 2) -> None:
        super().__init__()
        if not (3 <= bits <= 40):
            raise ValueError(f"cache_bits must be in 3..40, got {bits}")
        if not (1 <= hashes <= 8):
            raise ValueError(f"hashes must be in 1..8, got {hashes}")
        self.bits = bits
        self.hashes = hashes
        self._mask = (1 << bits) - 1
        self._array = bytearray(1 << max(bits - 3, 0))
        self._stored = 0

    def _positions(self, key: bytes) -> list[int]:
        digest = hashlib.blake2b(key, digest_size=8 * self.hashes).digest()
        return [
            int.from_bytes(digest[8 * i : 8 * (i + 1)], "big") & self._mask
            for i in range(self.hashes)
        ]

    def visit(self, key: bytes, remaining: int) -> bool:
        positions = self._positions(key)
        seen = all(self._array[p >> 3] & (1 << (p & 7)) for p in positions)
        if seen:
            self.hits += 1
            return False
        for p in positions:
            self._array[p >> 3] |= 1 << (p & 7)
        self._stored += 1
        self.misses += 1
        return True

    @property
    def states_stored(self) -> int:
        return self._stored

    @property
    def memory_bytes(self) -> int:
        return len(self._array)

    def config(self) -> dict:
        return {"store": self.kind, "cache_bits": self.bits, "hashes": self.hashes}


def make_store(kind: str, *, cache_bits: int = 24) -> StateStore | None:
    """Build a store from CLI-level configuration.

    ``kind`` is one of :data:`STORE_KINDS`; ``"off"`` returns ``None``
    (the explorer then runs pure stateless search).  ``cache_bits``
    only shapes the bitstate store.
    """
    if kind == "off":
        return None
    if kind == "exact":
        return ExactStore()
    if kind == "hashcompact":
        return HashCompactStore()
    if kind == "bitstate":
        return BitstateStore(bits=cache_bits)
    raise ValueError(
        f"unknown state store {kind!r}; expected one of {', '.join(STORE_KINDS)}"
    )
