"""Canonical global-state snapshots.

A global state of a run is already captured structurally by
:meth:`repro.runtime.system.Run.state_fingerprint`: a nested tuple of
per-process control locations and local stores (built from
:func:`repro.runtime.values.fingerprint`) plus per-object states.  That
structure is *hashable* — good enough for an in-process ``set`` — but
its Python hash is salted per interpreter and its repr is not a stable
wire format.

:func:`encode_canonical` serializes the structure into a **canonical
byte string**: type-tagged, length-prefixed, with no dependence on hash
seeds, dict ordering (the fingerprint layer already sorts record fields
and frame variables) or interpreter build.  Two runs are in the same
global state iff their snapshots are byte-for-byte equal, and the same
state always encodes to the same bytes — in this process, in a parallel
worker, or in a later session.

:func:`digest64` folds a snapshot to a 64-bit integer (keyed BLAKE2b),
the unit of storage of the compacting stores.
"""

from __future__ import annotations

import hashlib

from ..runtime.fingerprint import (  # noqa: F401  (re-exported API)
    _encode_into,
    decode_canonical,
    encode_canonical,
)
from ..runtime.system import Run


def snapshot(run: Run) -> bytes:
    """The canonical byte-string snapshot of ``run``'s global state.

    Covers exactly what :meth:`Run.state_fingerprint` covers: every
    process's control location and local store (call stack of
    ``(procedure, node, frame)``) and every communication object's
    state (queue contents, semaphore counts, shared values; environment
    sinks only when ``visible_in_state``).

    Always a full recomputation — the differential oracle against
    :meth:`Run.state_key`, which returns the same bytes through the
    incremental per-component cache.
    """
    return encode_canonical(run.state_fingerprint())


def digest64(key: bytes) -> int:
    """Fold a snapshot to an unsigned 64-bit digest (BLAKE2b-64).

    The compacting stores keep this instead of the full snapshot:
    8 bytes per state, with a 2^-64 per-pair collision probability
    (a collision makes :class:`~repro.statespace.stores.HashCompactStore`
    prune a genuinely new state — the documented trade-off).
    """
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")
