"""Canonical global-state snapshots.

A global state of a run is already captured structurally by
:meth:`repro.runtime.system.Run.state_fingerprint`: a nested tuple of
per-process control locations and local stores (built from
:func:`repro.runtime.values.fingerprint`) plus per-object states.  That
structure is *hashable* — good enough for an in-process ``set`` — but
its Python hash is salted per interpreter and its repr is not a stable
wire format.

:func:`encode_canonical` serializes the structure into a **canonical
byte string**: type-tagged, length-prefixed, with no dependence on hash
seeds, dict ordering (the fingerprint layer already sorts record fields
and frame variables) or interpreter build.  Two runs are in the same
global state iff their snapshots are byte-for-byte equal, and the same
state always encodes to the same bytes — in this process, in a parallel
worker, or in a later session.

:func:`digest64` folds a snapshot to a 64-bit integer (keyed BLAKE2b),
the unit of storage of the compacting stores.
"""

from __future__ import annotations

import hashlib
import struct
from typing import Any

from ..runtime.system import Run

#: Type tags of the canonical encoding.  One byte each; every composite
#: is length-prefixed, so the encoding is prefix-free and unambiguous.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_STR = b"s"
_TAG_TUPLE = b"("

_LEN = struct.Struct(">I")


def _encode_into(value: Any, out: list[bytes]) -> None:
    # bool must be tested before int (bool is an int subclass) so that
    # True and 1 — distinct runtime values — stay distinct states.
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif isinstance(value, int):
        payload = b"%d" % value
        out.append(_TAG_INT)
        out.append(_LEN.pack(len(payload)))
        out.append(payload)
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out.append(_TAG_STR)
        out.append(_LEN.pack(len(payload)))
        out.append(payload)
    elif isinstance(value, tuple):
        out.append(_TAG_TUPLE)
        out.append(_LEN.pack(len(value)))
        for item in value:
            _encode_into(item, out)
    else:
        raise TypeError(
            f"cannot canonically encode value of type {type(value).__name__}; "
            "state fingerprints are built from None/bool/int/str/tuple only"
        )


def encode_canonical(value: Any) -> bytes:
    """Serialize a state-fingerprint structure to canonical bytes.

    Injective over the fingerprint value domain (``None``, ``bool``,
    ``int``, ``str`` and nested tuples thereof): distinct structures
    always yield distinct byte strings, equal structures always yield
    equal byte strings.
    """
    out: list[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def snapshot(run: Run) -> bytes:
    """The canonical byte-string snapshot of ``run``'s global state.

    Covers exactly what :meth:`Run.state_fingerprint` covers: every
    process's control location and local store (call stack of
    ``(procedure, node, frame)``) and every communication object's
    state (queue contents, semaphore counts, shared values; environment
    sinks only when ``visible_in_state``).
    """
    return encode_canonical(run.state_fingerprint())


def digest64(key: bytes) -> int:
    """Fold a snapshot to an unsigned 64-bit digest (BLAKE2b-64).

    The compacting stores keep this instead of the full snapshot:
    8 bytes per state, with a 2^-64 per-pair collision probability
    (a collision makes :class:`~repro.statespace.stores.HashCompactStore`
    prune a genuinely new state — the documented trade-off).
    """
    return int.from_bytes(hashlib.blake2b(key, digest_size=8).digest(), "big")
