"""repro — a reproduction of *Automatically Closing Open Reactive
Programs* (Colby, Godefroid, Jategaonkar Jagadeesan, PLDI 1998).

The package provides, from the bottom up:

* :mod:`repro.lang` — the RC mini-language (a C-like imperative core)
  with parser, normalizer and pretty-printer, plus an optional
  pycparser-based front end for a subset of real C;
* :mod:`repro.cfg` — control-flow graphs, the representation over which
  the paper's algorithm is defined;
* :mod:`repro.dataflow` — may-alias (Andersen) and define-use analyses;
* :mod:`repro.closing` — **the paper's contribution**: the algorithm of
  Figure 1 that closes an open program with its most general
  environment, plus the naive explicit-environment baseline;
* :mod:`repro.runtime` — the concurrent execution substrate (processes,
  channels, semaphores, shared variables, ``VS_toss``/``VS_assert``),
  with two interchangeable execution engines behind one stepper
  contract (:mod:`repro.runtime.engine`): the reference tree-walking
  interpreter and a compiled closure engine
  (:mod:`repro.runtime.compile`);
* :mod:`repro.verisoft` — a VeriSoft-style stateless state-space
  explorer with partial-order reduction;
* :mod:`repro.statespace` — canonical global-state snapshots and
  pluggable visited-state stores (exact / hash-compact / bitstate)
  that the explorer can consult to prune revisited subtrees;
* :mod:`repro.obs` — the observability layer: span/event tracing with
  Chrome trace-event export, hot-spot profiling, worker heartbeats and
  structured run manifests;
* :mod:`repro.fiveess` — a synthetic multi-process telephone
  call-processing application standing in for the paper's 5ESS case
  study.

Quick start::

    from repro import close_program, System, SearchOptions, run_search

    closed = close_program(OPEN_SOURCE)          # Figure 1, end to end
    system = System(closed.cfgs)
    system.add_env_sink("out")
    system.add_process("main", "main")           # env params are gone
    report = run_search(system, SearchOptions(strategy="dfs", max_depth=50))
    print(report.summary())
    print(report.stats.describe())               # live search telemetry
"""

from .cfg import ControlFlowGraph, build_cfg, build_cfgs, to_dot
from .closing import (
    ClosedProgram,
    ClosingError,
    ClosingSpec,
    NaiveDomains,
    close_naively,
    close_program,
)
from .lang import normalize_program, parse_program, pretty
from .obs import (
    HotSpotProfiler,
    Tracer,
    build_manifest,
    validate_chrome_trace,
    write_manifest,
)
from .runtime import System, SystemConfig
from .statespace import (
    BitstateStore,
    ExactStore,
    HashCompactStore,
    StateStore,
    make_store,
    snapshot,
)
from .verisoft import (
    ExplorationReport,
    Explorer,
    ProgressPrinter,
    SearchOptions,
    SearchStats,
    Trace,
    collect_output_traces,
    parallel_search,
    replay,
    run_search,
)

from .counterex import (
    ShrinkResult,
    TraceFile,
    group_events,
    load_trace,
    save_trace,
    shrink,
    verify_trace,
)

__version__ = "1.0.0"

__all__ = [
    "BitstateStore",
    "ClosedProgram",
    "ClosingError",
    "ClosingSpec",
    "ControlFlowGraph",
    "ExactStore",
    "ExplorationReport",
    "Explorer",
    "HashCompactStore",
    "HotSpotProfiler",
    "NaiveDomains",
    "ProgressPrinter",
    "SearchOptions",
    "SearchStats",
    "ShrinkResult",
    "StateStore",
    "System",
    "SystemConfig",
    "Trace",
    "TraceFile",
    "Tracer",
    "build_cfg",
    "build_cfgs",
    "build_manifest",
    "close_naively",
    "close_program",
    "collect_output_traces",
    "group_events",
    "load_trace",
    "make_store",
    "normalize_program",
    "parallel_search",
    "parse_program",
    "pretty",
    "replay",
    "run_search",
    "save_trace",
    "shrink",
    "snapshot",
    "validate_chrome_trace",
    "verify_trace",
    "write_manifest",
]
