"""The compiled execution engine: CFGs translated to Python closures.

The walking interpreter (:mod:`repro.runtime.interp`) re-inspects every
CFG node on every execution: isinstance-dispatch over the expression
AST, guard scans over successor arcs, dict-keyed frame lookups.  This
module pays those costs *once per program* instead of once per step:
:func:`compile_program` translates each procedure's CFG into specialized
Python closures —

* **one callable per basic block** — maximal straight-line runs of
  ASSIGN nodes fuse into a single closure (every interior node still
  gets its own callable, so jumps may land mid-block); dispatch threads
  through a precomputed ``node id -> callable`` table with successor ids
  resolved at compile time, never by scanning arcs;
* **specialized expression closures** — each AST operator compiles to a
  dedicated closure over its operand closures, with literals interned as
  captured constants and peephole fast paths for int arithmetic;
* **slot-indexed frames** — every variable of a procedure is assigned a
  static slot, so a :class:`SlotFrame` is a flat list of
  :class:`~repro.runtime.values.Cell` objects indexed by integers
  (name resolution happens at compile time) and the undo journal records
  slot writes (:meth:`~repro.runtime.journal.UndoJournal.record_slot`)
  instead of dict-key insertions.

:class:`CompiledEngine` implements the
:class:`~repro.runtime.engine.ExecutionEngine` contract *exactly* like
the walking interpreter: the same request sequence, the same
invisible-step accounting (including the one-node deferral when
entering a procedure), the same journal entry counts, the same faults
with the same messages, and byte-identical ``state_fingerprint()``
output.  The differential tests in
``tests/verisoft/test_engine_parity.py`` hold the two engines to that.

Programs the compiler cannot translate — anything using pointers
(``&x``, ``*p``), plus structurally degenerate CFGs — raise
:class:`CompileUnsupported` at compile time, and
:meth:`repro.runtime.system.System.start` falls back to the walking
engine transparently (pointer aliasing defeats the static slot layout;
the reference engine handles it bit-for-bit identically either way).
"""

from __future__ import annotations

from typing import Any

from ..cfg.graph import ControlFlowGraph
from ..cfg.nodes import (
    AlwaysGuard,
    BoolGuard,
    CaseGuard,
    CfgNode,
    DefaultGuard,
    NodeKind,
    TossGuard,
)
from ..lang import ast
from .errors import DivergenceError, ObjectError, RuntimeFault, TossDomainError
from .interp import (
    _RESUME_TOSS_CALL,
    _RESUME_TOSS_NODE,
    _RESUME_VISIBLE,
    Request,
    TossRequest,
    VisibleRequest,
)
from .ops import BUILTIN_OPERATIONS, CHANNEL_OPS, SEMAPHORE_OPS, SHARED_VAR_OPS
from .values import (
    TOP,
    ArrayValue,
    Cell,
    ObjectRef,
    RecordValue,
    fingerprint,
    values_equal,
)


class CompileUnsupported(Exception):
    """The program uses a construct the compiled engine does not
    support; the caller should fall back to the walking engine."""


#: Sentinel returned by a node callable when the process terminated
#: (RETURN from the top level, or EXIT).
_DONE = object()

#: Upper bound on how many ASSIGN nodes fuse into one block callable.
_MAX_BLOCK = 64


# ---------------------------------------------------------------------------
# Slot frames
# ---------------------------------------------------------------------------


class _SlotLayout:
    """Static frame layout of one procedure: name -> slot index."""

    __slots__ = ("proc_name", "index_of", "nslots", "fp_order")

    def __init__(self, proc_name: str, names: list[str]):
        self.proc_name = proc_name
        self.index_of = {name: index for index, name in enumerate(names)}
        self.nslots = len(names)
        #: Fingerprint iteration order: sorted by name, as the dict-based
        #: :meth:`repro.runtime.store.Frame.state_fingerprint` sorts.
        self.fp_order = sorted(self.index_of.items())


class SlotFrame:
    """A procedure activation's store as a flat slot array.

    Drop-in replacement for :class:`repro.runtime.store.Frame` with the
    name resolution done at compile time: ``slots[i]`` is the cell of
    the variable assigned slot ``i`` (``None`` while undeclared).
    Produces fingerprints identical to the dict-based frame.
    """

    __slots__ = ("proc_name", "slots", "journal", "_fp_order")

    def __init__(self, layout: _SlotLayout, journal: Any | None = None):
        self.proc_name = layout.proc_name
        self.slots: list[Cell | None] = [None] * layout.nslots
        self.journal = journal
        self._fp_order = layout.fp_order

    def declare_idx(self, index: int, value: Any = 0) -> Cell:
        """Create (or re-initialize in place) the cell at ``index``."""
        slots = self.slots
        cell = slots[index]
        if cell is None:
            if self.journal is not None:
                self.journal.record_slot(slots, index)
            cell = Cell(value)
            slots[index] = cell
        else:
            if self.journal is not None:
                self.journal.record_cell(cell)
            cell.value = value
        return cell

    def state_fingerprint(self) -> Any:
        slots = self.slots
        return (
            self.proc_name,
            tuple(
                (name, fingerprint(slots[index].value))
                for name, index in self._fp_order
                if slots[index] is not None
            ),
        )

    def __repr__(self) -> str:
        inner = {
            name: slots[index].value
            for name, index in self._fp_order
            if (slots := self.slots)[index] is not None
        }
        return f"SlotFrame({self.proc_name!r}, {inner!r})"


class _Activation:
    """One frame of the compiled call stack."""

    __slots__ = ("proc", "frame", "node_id", "result_cell")

    def __init__(
        self,
        proc: "CompiledProc",
        frame: SlotFrame,
        node_id: int,
        result_cell: Cell | None,
    ):
        self.proc = proc
        self.frame = frame
        self.node_id = node_id
        self.result_cell = result_cell


# ---------------------------------------------------------------------------
# Expression compilation
# ---------------------------------------------------------------------------
#
# An expression compiles to a closure ``ev(frame) -> value``; an lvalue
# compiles to ``lv(frame) -> Cell``.  Every fault path reproduces the
# walking interpreter's message verbatim.


def _collect_names(expr: ast.Expr | None, names: set[str]) -> None:
    if expr is None:
        return
    if isinstance(expr, ast.Name):
        names.add(expr.ident)
    elif isinstance(expr, ast.Unary):
        _collect_names(expr.operand, names)
    elif isinstance(expr, ast.Binary):
        _collect_names(expr.left, names)
        _collect_names(expr.right, names)
    elif isinstance(expr, ast.Index):
        _collect_names(expr.base, names)
        _collect_names(expr.index, names)
    elif isinstance(expr, ast.Field):
        _collect_names(expr.base, names)


def _compile_expr(expr: ast.Expr, layout: _SlotLayout):
    if isinstance(expr, (ast.IntLit, ast.BoolLit, ast.StrLit)):
        value = expr.value

        def ev(frame, _v=value):
            return _v

        return ev
    if isinstance(expr, ast.AbstractLit):

        def ev_top(frame):
            return TOP

        return ev_top
    if isinstance(expr, ast.Name):
        index = layout.index_of[expr.ident]

        def ev_name(frame, _i=index, _n=expr.ident):
            cell = frame.slots[_i]
            if cell is None:
                raise RuntimeFault(
                    f"{frame.proc_name}: variable {_n!r} used before declaration"
                )
            return cell.value

        return ev_name
    if isinstance(expr, ast.Unary):
        return _compile_unary(expr, layout)
    if isinstance(expr, ast.Binary):
        return _compile_binary(expr, layout)
    if isinstance(expr, (ast.Index, ast.Field)):
        lv = _compile_lvalue(expr, layout, create=False)

        def ev_read(frame, _lv=lv):
            return _lv(frame).value

        return ev_read
    raise CompileUnsupported(f"cannot compile expression {type(expr).__name__}")


def _compile_unary(expr: ast.Unary, layout: _SlotLayout):
    if expr.op in ("&", "*"):
        raise CompileUnsupported("pointer operations use the walking engine")
    operand = _compile_expr(expr.operand, layout)
    if expr.op == "-":

        def ev_neg(frame, _ev=operand):
            value = _ev(frame)
            if type(value) is int:
                return -value
            if value is TOP:
                return TOP
            raise RuntimeFault(f"unary '-' on non-int value {value!r}")

        return ev_neg
    if expr.op == "!":

        def ev_not(frame, _ev=operand):
            value = _ev(frame)
            if value is TOP:
                return TOP
            if isinstance(value, bool):
                return not value
            if isinstance(value, int):
                return value == 0
            raise RuntimeFault(f"unary '!' on value {value!r}")

        return ev_not
    raise CompileUnsupported(f"unknown unary operator {expr.op!r}")


def _truthy_value(value: Any) -> bool:
    if isinstance(value, bool):
        return value
    if isinstance(value, int):
        return value != 0
    raise RuntimeFault(f"cannot use value {value!r} as a boolean")


def _is_int(value: Any) -> bool:
    return isinstance(value, int) and not isinstance(value, bool)


#: Non-fast-path completion of int arithmetic/comparison: TOP
#: propagation and the walking engine's exact fault messages.
def _arith_slow(op: str, fn, lhs: Any, rhs: Any):
    if lhs is TOP or rhs is TOP:
        return TOP
    if not _is_int(lhs) or not _is_int(rhs):
        raise RuntimeFault(f"arithmetic {op!r} on non-int values {lhs!r}, {rhs!r}")
    return fn(lhs, rhs)


def _order_slow(op: str, fn, lhs: Any, rhs: Any):
    if lhs is TOP or rhs is TOP:
        return TOP
    if not _is_int(lhs) or not _is_int(rhs):
        raise RuntimeFault(f"comparison {op!r} on non-int values {lhs!r}, {rhs!r}")
    return fn(lhs, rhs)


_ARITH_FNS = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
}

_ORDER_FNS = {
    "<": lambda a, b: a < b,
    "<=": lambda a, b: a <= b,
    ">": lambda a, b: a > b,
    ">=": lambda a, b: a >= b,
}


def _compile_binary_fast(expr: ast.Binary, layout: _SlotLayout):
    """Operand-specialized closures for the hot int operators.

    A Name operand's slot load and an int-literal operand are inlined
    into the operator closure itself, collapsing the two operand calls
    of the generic path — the dominant cost of loop-body arithmetic
    like ``i = i + 1`` or ``acc * 31``.  Fault and TOP semantics are
    delegated to the slow helpers, which reproduce the generic
    closures' behaviour exactly.
    """
    op = expr.op
    fn = _ARITH_FNS.get(op) or _ORDER_FNS.get(op)
    if fn is None:
        return None
    slow = _arith_slow if op in _ARITH_FNS else _order_slow
    left, right = expr.left, expr.right

    if isinstance(left, ast.Name) and isinstance(right, ast.IntLit):
        li, name = layout.index_of[left.ident], left.ident
        const = right.value

        def ev_name_const(frame, _i=li, _n=name, _c=const, _fn=fn, _op=op, _slow=slow):
            cell = frame.slots[_i]
            if cell is None:
                raise RuntimeFault(
                    f"{frame.proc_name}: variable {_n!r} used before declaration"
                )
            a = cell.value
            if type(a) is int:
                return _fn(a, _c)
            return _slow(_op, _fn, a, _c)

        return ev_name_const

    if isinstance(left, ast.Name) and isinstance(right, ast.Name):
        li, lname = layout.index_of[left.ident], left.ident
        ri, rname = layout.index_of[right.ident], right.ident

        def ev_name_name(
            frame, _li=li, _ln=lname, _ri=ri, _rn=rname, _fn=fn, _op=op, _slow=slow
        ):
            slots = frame.slots
            lcell = slots[_li]
            if lcell is None:
                raise RuntimeFault(
                    f"{frame.proc_name}: variable {_ln!r} used before declaration"
                )
            rcell = slots[_ri]
            if rcell is None:
                raise RuntimeFault(
                    f"{frame.proc_name}: variable {_rn!r} used before declaration"
                )
            a, b = lcell.value, rcell.value
            if type(a) is int and type(b) is int:
                return _fn(a, b)
            return _slow(_op, _fn, a, b)

        return ev_name_name

    return None


def _compile_binary(expr: ast.Binary, layout: _SlotLayout):
    op = expr.op
    fast = _compile_binary_fast(expr, layout)
    if fast is not None:
        return fast
    left = _compile_expr(expr.left, layout)
    right = _compile_expr(expr.right, layout)

    if op == "&&":

        def ev_and(frame, _l=left, _r=right):
            lhs = _l(frame)
            if lhs is TOP:
                # Abstract short-circuit: the result may depend on the
                # environment either way.
                _r(frame)
                return TOP
            if not _truthy_value(lhs):
                return False
            rhs = _r(frame)
            if rhs is TOP:
                return TOP
            return _truthy_value(rhs)

        return ev_and
    if op == "||":

        def ev_or(frame, _l=left, _r=right):
            lhs = _l(frame)
            if lhs is TOP:
                _r(frame)
                return TOP
            if _truthy_value(lhs):
                return True
            rhs = _r(frame)
            if rhs is TOP:
                return TOP
            return _truthy_value(rhs)

        return ev_or
    if op == "==":

        def ev_eq(frame, _l=left, _r=right):
            lhs = _l(frame)
            rhs = _r(frame)
            if lhs is TOP or rhs is TOP:
                return TOP
            return values_equal(lhs, rhs)

        return ev_eq
    if op == "!=":

        def ev_ne(frame, _l=left, _r=right):
            lhs = _l(frame)
            rhs = _r(frame)
            if lhs is TOP or rhs is TOP:
                return TOP
            return not values_equal(lhs, rhs)

        return ev_ne
    if op in ("+", "-", "*"):
        fn = {
            "+": lambda a, b: a + b,
            "-": lambda a, b: a - b,
            "*": lambda a, b: a * b,
        }[op]

        def ev_arith(frame, _l=left, _r=right, _fn=fn, _op=op):
            lhs = _l(frame)
            rhs = _r(frame)
            if type(lhs) is int and type(rhs) is int:
                return _fn(lhs, rhs)
            if lhs is TOP or rhs is TOP:
                return TOP
            if not _is_int(lhs) or not _is_int(rhs):
                raise RuntimeFault(
                    f"arithmetic {_op!r} on non-int values {lhs!r}, {rhs!r}"
                )
            return _fn(lhs, rhs)

        return ev_arith
    if op in ("/", "%"):

        def ev_divmod(frame, _l=left, _r=right, _op=op):
            lhs = _l(frame)
            rhs = _r(frame)
            if lhs is TOP or rhs is TOP:
                return TOP
            if not _is_int(lhs) or not _is_int(rhs):
                raise RuntimeFault(
                    f"arithmetic {_op!r} on non-int values {lhs!r}, {rhs!r}"
                )
            if rhs == 0:
                raise RuntimeFault(f"division by zero in {_op!r}")
            if _op == "/":
                # C-style truncation toward zero.
                quotient = abs(lhs) // abs(rhs)
                return quotient if (lhs >= 0) == (rhs >= 0) else -quotient
            remainder = abs(lhs) % abs(rhs)
            return remainder if lhs >= 0 else -remainder

        return ev_divmod
    if op in ("<", "<=", ">", ">="):
        fn = {
            "<": lambda a, b: a < b,
            "<=": lambda a, b: a <= b,
            ">": lambda a, b: a > b,
            ">=": lambda a, b: a >= b,
        }[op]

        def ev_order(frame, _l=left, _r=right, _fn=fn, _op=op):
            lhs = _l(frame)
            rhs = _r(frame)
            if type(lhs) is int and type(rhs) is int:
                return _fn(lhs, rhs)
            if lhs is TOP or rhs is TOP:
                return TOP
            if not _is_int(lhs) or not _is_int(rhs):
                raise RuntimeFault(
                    f"comparison {_op!r} on non-int values {lhs!r}, {rhs!r}"
                )
            return _fn(lhs, rhs)

        return ev_order
    raise CompileUnsupported(f"unknown binary operator {op!r}")


def _compile_lvalue(expr: ast.Expr, layout: _SlotLayout, create: bool):
    if isinstance(expr, ast.Name):
        index = layout.index_of[expr.ident]
        if create:

            def lv_create(frame, _i=index):
                cell = frame.slots[_i]
                if cell is None:
                    return frame.declare_idx(_i)
                return cell

            return lv_create

        def lv_name(frame, _i=index, _n=expr.ident):
            cell = frame.slots[_i]
            if cell is None:
                raise RuntimeFault(
                    f"{frame.proc_name}: variable {_n!r} used before declaration"
                )
            return cell

        return lv_name
    if isinstance(expr, ast.Index):
        base_ev = _compile_expr(expr.base, layout)
        index_ev = _compile_expr(expr.index, layout)

        def lv_index(frame, _b=base_ev, _i=index_ev):
            base = _b(frame)
            if not isinstance(base, ArrayValue):
                raise RuntimeFault("indexing a non-array value")
            index = _i(frame)
            if index is TOP:
                raise RuntimeFault(
                    "indexing with an abstract (environment-erased) value"
                )
            if not isinstance(index, int) or isinstance(index, bool):
                raise RuntimeFault(f"array index must be an int, got {index!r}")
            if not (0 <= index < len(base)):
                raise RuntimeFault(
                    f"array index {index} out of bounds for array of length {len(base)}"
                )
            return base.cells[index]

        return lv_index
    if isinstance(expr, ast.Field):
        base_ev = _compile_expr(expr.base, layout)
        field = expr.field

        def lv_field(frame, _b=base_ev, _f=field, _create=create):
            base = _b(frame)
            if not isinstance(base, RecordValue):
                raise RuntimeFault("field access on a non-record value")
            cell = base.cell(_f, create=_create, journal=frame.journal)
            if cell is None:
                raise RuntimeFault(f"record has no field {_f!r}")
            return cell

        return lv_field
    if isinstance(expr, ast.Unary) and expr.op == "*":
        raise CompileUnsupported("pointer operations use the walking engine")
    raise CompileUnsupported(f"invalid lvalue {type(expr).__name__}")


def _make_store(lv):
    """``store(engine, act, value)`` writing through an lvalue, journaled."""

    def store(engine, act, value, _lv=lv):
        cell = _lv(act.frame)
        journal = engine.journal
        if journal is not None:
            journal.record_cell(cell)
        cell.value = value

    return store


# ---------------------------------------------------------------------------
# Communication-object resolution (per-run; mirrors the interpreter)
# ---------------------------------------------------------------------------


def _resolve_object(objects: dict, ref: Any, op: str):
    if isinstance(ref, str):
        obj = objects.get(ref)
        if obj is None:
            raise ObjectError(f"unknown communication object {ref!r}")
    elif isinstance(ref, ObjectRef):
        obj = objects.get(ref.name)
        if obj is None:
            raise ObjectError(f"unknown communication object {ref.name!r}")
    else:
        raise ObjectError(
            f"operation {op!r} needs a communication object, got {type(ref).__name__}"
        )
    if op in CHANNEL_OPS and obj.kind != "channel":
        raise ObjectError(f"{op} requires a channel, got {obj.kind} {obj.name!r}")
    if op in SEMAPHORE_OPS and obj.kind != "semaphore":
        raise ObjectError(f"{op} requires a semaphore, got {obj.kind} {obj.name!r}")
    if op in SHARED_VAR_OPS and obj.kind != "shared":
        raise ObjectError(f"{op} requires a shared variable, got {obj.kind} {obj.name!r}")
    return obj


# ---------------------------------------------------------------------------
# Procedure compilation
# ---------------------------------------------------------------------------


class CompiledProc:
    """One procedure: slot layout + ``node id -> callable`` table."""

    __slots__ = ("name", "params", "param_slots", "start_id", "ops", "next_of", "layout")

    def __init__(self, name: str, params: tuple[str, ...], layout: _SlotLayout):
        self.name = name
        self.params = params
        self.param_slots = [layout.index_of[param] for param in params]
        self.layout = layout
        self.start_id = -1
        #: node id -> ``op(engine, act)`` callable; built as a dict,
        #: then swapped for a flat list when node ids are dense.
        self.ops: Any = {}
        #: node id -> successor id, for every single-Always-successor node.
        self.next_of: dict[int, int] = {}


class CompiledProgram:
    """The compiled form of a whole program (one entry per procedure)."""

    __slots__ = ("procs",)

    def __init__(self, procs: dict[str, CompiledProc]):
        self.procs = procs


def compile_program(cfgs: dict[str, ControlFlowGraph]) -> CompiledProgram:
    """Translate every procedure's CFG into closures.

    Raises :class:`CompileUnsupported` when the program uses pointers or
    a structurally degenerate CFG; callers fall back to the walking
    engine (which reproduces even the degenerate behaviours exactly).
    """
    procs: dict[str, CompiledProc] = {}
    program = CompiledProgram(procs)
    for name, cfg in cfgs.items():
        procs[name] = _compile_proc(cfg, procs)
    return program


def _proc_names(cfg: ControlFlowGraph) -> list[str]:
    names: set[str] = set(cfg.params)
    for node in cfg.nodes.values():
        _collect_names(node.target, names)
        _collect_names(node.value, names)
        _collect_names(node.expr, names)
        _collect_names(node.result, names)
        for arg in node.args:
            _collect_names(arg, names)
    return sorted(names)


def _single_always_dst(cfg: ControlFlowGraph, node_id: int) -> int:
    arcs = cfg.successors(node_id)
    if len(arcs) != 1 or not isinstance(arcs[0].guard, AlwaysGuard):
        raise CompileUnsupported(
            f"{cfg.proc_name}: node {node_id} lacks a single unconditional successor"
        )
    return arcs[0].dst


def _compile_proc(cfg: ControlFlowGraph, procs: dict[str, CompiledProc]) -> CompiledProc:
    if cfg.start_id == -1:
        raise CompileUnsupported(f"{cfg.proc_name}: graph has no START node")
    layout = _SlotLayout(cfg.proc_name, _proc_names(cfg))
    proc = CompiledProc(cfg.proc_name, cfg.params, layout)
    proc.start_id = cfg.start_id

    # Successor table for every straight-line node (needed before op
    # compilation: RETURN resolves its caller's CALL successor here).
    for node in cfg.nodes.values():
        if node.kind in (NodeKind.START, NodeKind.ASSIGN, NodeKind.CALL):
            proc.next_of[node.id] = _single_always_dst(cfg, node.id)

    # Per-ASSIGN actions, for basic-block fusion.
    actions: dict[int, Any] = {}
    for node in cfg.nodes.values():
        if node.kind is NodeKind.ASSIGN:
            actions[node.id] = _compile_assign_action(node, layout)

    for node in cfg.nodes.values():
        proc.ops[node.id] = _compile_node(cfg, node, proc, layout, actions, procs)

    # Dense node ids (the normal case): swap the dispatch dict for a
    # flat list — ``ops[node_id]`` stays valid, list indexing is faster.
    max_id = max(proc.ops)
    if max_id < 2 * len(proc.ops) + 16:
        table: list[Any] = [None] * (max_id + 1)
        for node_id, op in proc.ops.items():
            table[node_id] = op
        proc.ops = table
    return proc


def _compile_assign_action(node: CfgNode, layout: _SlotLayout):
    """An ASSIGN node as a ``action(frame)`` closure."""
    if node.array_size is not None:
        if not isinstance(node.target, ast.Name):
            raise CompileUnsupported("array declaration target must be a simple name")
        index = layout.index_of[node.target.ident]
        size = node.array_size

        def action_array(frame, _i=index, _size=size):
            frame.declare_idx(_i, ArrayValue(size=_size))

        return action_array
    value_ev = _compile_expr(node.value, layout)
    if isinstance(node.target, ast.Name):
        index = layout.index_of[node.target.ident]

        def action_declare(frame, _i=index, _ev=value_ev):
            # declare_idx inlined: this is the single hottest action.
            value = _ev(frame)
            slots = frame.slots
            cell = slots[_i]
            journal = frame.journal
            if cell is None:
                if journal is not None:
                    journal.record_slot(slots, _i)
                slots[_i] = Cell(value)
            else:
                if journal is not None:
                    journal.record_cell(cell)
                cell.value = value

        return action_declare
    lv = _compile_lvalue(node.target, layout, create=True)

    def action_store(frame, _ev=value_ev, _lv=lv):
        value = _ev(frame)
        cell = _lv(frame)
        journal = frame.journal
        if journal is not None:
            journal.record_cell(cell)
        cell.value = value

    return action_store


def _compile_node(
    cfg: ControlFlowGraph,
    node: CfgNode,
    proc: CompiledProc,
    layout: _SlotLayout,
    actions: dict[int, Any],
    procs: dict[str, CompiledProc],
):
    kind = node.kind
    if kind is NodeKind.START:
        next_id = proc.next_of[node.id]

        def op_start(engine, act, _next=next_id):
            act.node_id = _next
            return None

        return op_start

    if kind is NodeKind.ASSIGN:
        return _compile_block(cfg, node, proc, actions)

    if kind is NodeKind.COND:
        return _compile_cond(cfg, node, layout)

    if kind is NodeKind.TOSS:
        return _compile_toss_node(cfg, node)

    if kind is NodeKind.CALL:
        return _compile_call(cfg, node, proc, layout, procs)

    if kind is NodeKind.RETURN:
        value_ev = None
        if node.value is not None:
            value_ev = _compile_expr(node.value, layout)

        def op_return(engine, act, _ev=value_ev):
            value = _ev(act.frame) if _ev is not None else None
            stack = engine._stack
            stack.pop()
            if not stack:
                return _DONE  # top-level return: the process terminates.
            caller = stack[-1]
            cell = act.result_cell
            if cell is not None:
                # A value-less return feeding `x = f()` leaves x abstract:
                # the closing transformation drops environment-dependent
                # return values, and TOP makes any lingering use fault
                # loudly instead of silently computing with garbage.
                journal = engine.journal
                if journal is not None:
                    journal.record_cell(cell)
                cell.value = value if value is not None else TOP
            caller.node_id = caller.proc.next_of[caller.node_id]
            steps = engine._invisible_steps + 1
            engine._invisible_steps = steps
            if steps > engine._budget:
                raise DivergenceError(engine.process_name, engine._budget)
            return None

        return op_return

    if kind is NodeKind.EXIT:

        def op_exit(engine, act):
            return _DONE  # the process terminates wherever exit appears.

        return op_exit

    raise CompileUnsupported(f"unknown node kind {kind}")


def _fused_assign_op(node: CfgNode, layout: _SlotLayout, next_id: int):
    """A lone name-target ASSIGN as a single closure: expression, store,
    journaling, step accounting — no intermediate action call."""
    if node.array_size is not None or not isinstance(node.target, ast.Name):
        return None
    index = layout.index_of[node.target.ident]
    value_ev = _compile_expr(node.value, layout)

    def op_assign_fused(engine, act, _i=index, _ev=value_ev, _next=next_id):
        frame = act.frame
        value = _ev(frame)
        slots = frame.slots
        cell = slots[_i]
        journal = frame.journal
        if cell is None:
            if journal is not None:
                journal.record_slot(slots, _i)
            slots[_i] = Cell(value)
        else:
            if journal is not None:
                journal.record_cell(cell)
            cell.value = value
        act.node_id = _next
        steps = engine._invisible_steps + 1
        engine._invisible_steps = steps
        if steps > engine._budget:
            raise DivergenceError(engine.process_name, engine._budget)
        return None

    return op_assign_fused


def _compile_block(cfg: ControlFlowGraph, head: CfgNode, proc: CompiledProc, actions):
    """Fuse the maximal ASSIGN run starting at ``head`` into one callable."""
    chain = [head.id]
    seen = {head.id}
    next_id = proc.next_of[head.id]
    while (
        len(chain) < _MAX_BLOCK
        and next_id not in seen
        and cfg.nodes[next_id].kind is NodeKind.ASSIGN
    ):
        chain.append(next_id)
        seen.add(next_id)
        next_id = proc.next_of[next_id]
    block_actions = [actions[node_id] for node_id in chain]
    ids_after = [proc.next_of[node_id] for node_id in chain]

    if len(chain) == 1:
        action = block_actions[0]
        fused = _fused_assign_op(cfg.nodes[head.id], proc.layout, next_id)
        if fused is not None:
            return fused

        def op_assign(engine, act, _a=action, _next=next_id):
            _a(act.frame)
            act.node_id = _next
            steps = engine._invisible_steps + 1
            engine._invisible_steps = steps
            if steps > engine._budget:
                raise DivergenceError(engine.process_name, engine._budget)
            return None

        return op_assign

    count = len(chain)
    entries = tuple((cfg.proc_name, node_id) for node_id in chain)

    def op_block(
        engine,
        act,
        _actions=block_actions,
        _ids=ids_after,
        _next=next_id,
        _k=count,
        _entries=entries,
    ):
        steps = engine._invisible_steps
        budget = engine._budget
        frame = act.frame
        trace = engine._trace
        if trace is not None:
            # Coverage tracing: per-node path so the interior chain
            # nodes land in the buffer in execution order (the head was
            # already recorded by ``_advance``), each logged before its
            # action runs — a faulting or diverging node is recorded,
            # later nodes of the block are not, exactly like the
            # walking engine.
            index = 0
            for action, node_after in zip(_actions, _ids):
                if index:
                    trace.append(_entries[index])
                index += 1
                action(frame)
                act.node_id = node_after
                steps += 1
                if steps > budget:
                    engine._invisible_steps = steps
                    raise DivergenceError(engine.process_name, budget)
            engine._invisible_steps = steps
            return None
        if steps + _k <= budget:
            for action in _actions:
                action(frame)
            act.node_id = _next
            engine._invisible_steps = steps + _k
            return None
        # Near the divergence horizon: per-node accounting, so the
        # DivergenceError fires after exactly the same node as the
        # walking engine (later nodes of the block never execute).
        for action, node_after in zip(_actions, _ids):
            action(frame)
            act.node_id = node_after
            steps += 1
            if steps > budget:
                engine._invisible_steps = steps
                raise DivergenceError(engine.process_name, budget)
        engine._invisible_steps = steps
        return None

    return op_block


def _compile_cond(cfg: ControlFlowGraph, node: CfgNode, layout: _SlotLayout):
    subject_ev = _compile_expr(node.expr, layout)
    arcs = cfg.successors(node.id)
    if not arcs:
        raise CompileUnsupported(f"{cfg.proc_name}: COND node {node.id} has no out-arcs")

    if all(isinstance(arc.guard, BoolGuard) for arc in arcs):
        true_dst = false_dst = -1
        for arc in arcs:
            if arc.guard.expected:
                true_dst = arc.dst
            else:
                false_dst = arc.dst
        if true_dst < 0 or false_dst < 0:
            raise CompileUnsupported(
                f"{cfg.proc_name}: COND node {node.id} missing a branch"
            )

        def op_cond(engine, act, _ev=subject_ev, _t=true_dst, _f=false_dst):
            subject = _ev(act.frame)
            if subject is True:
                act.node_id = _t
            elif subject is False:
                act.node_id = _f
            elif subject is TOP:
                raise RuntimeFault(
                    "branching on an abstract (environment-erased) value — "
                    "the program is not closed"
                )
            elif isinstance(subject, int):
                act.node_id = _t if subject != 0 else _f
            else:
                raise RuntimeFault(f"cannot branch on value {subject!r}")
            steps = engine._invisible_steps + 1
            engine._invisible_steps = steps
            if steps > engine._budget:
                raise DivergenceError(engine.process_name, engine._budget)
            return None

        return op_cond

    if all(isinstance(arc.guard, (CaseGuard, DefaultGuard)) for arc in arcs):
        table: dict[Any, int] = {}
        default_dst = -1
        for arc in arcs:
            if isinstance(arc.guard, CaseGuard):
                table.setdefault(arc.guard.value, arc.dst)
            else:
                default_dst = arc.dst
        proc_name = cfg.proc_name
        node_id = node.id

        def op_switch(
            engine,
            act,
            _ev=subject_ev,
            _table=table,
            _default=default_dst,
            _proc=proc_name,
            _nid=node_id,
        ):
            subject = _ev(act.frame)
            if subject is TOP:
                raise RuntimeFault(
                    f"{_proc}: switch on an abstract "
                    "(environment-erased) value — the program is not closed"
                )
            # bool/int/str hashing agrees with values_equal on case
            # labels (True matches case 1, like the reference engine);
            # non-primitive subjects miss and take the default.
            try:
                dst = _table.get(subject, _default)
            except TypeError:
                dst = _default
            if dst < 0:
                raise RuntimeFault(f"{_proc}: switch node {_nid} has no default")
            act.node_id = dst
            steps = engine._invisible_steps + 1
            engine._invisible_steps = steps
            if steps > engine._budget:
                raise DivergenceError(engine.process_name, engine._budget)
            return None

        return op_switch

    raise CompileUnsupported(
        f"{cfg.proc_name}: COND node {node.id} has inconsistent guards"
    )


def _compile_toss_node(cfg: ControlFlowGraph, node: CfgNode):
    table: dict[int, int] = {}
    for arc in cfg.successors(node.id):
        if not isinstance(arc.guard, TossGuard):
            raise CompileUnsupported(
                f"{cfg.proc_name}: TOSS node {node.id} has a non-toss guard"
            )
        table.setdefault(arc.guard.value, arc.dst)
    # The request is fully static: intern one instance per node.
    request = TossRequest(node.bound, node.id, cfg.proc_name)
    payload = (table, node.bound)

    def op_toss(engine, act, _req=request, _payload=payload):
        engine._pending = (_RESUME_TOSS_NODE, act, _payload)
        return _req

    return op_toss


def _compile_call(
    cfg: ControlFlowGraph,
    node: CfgNode,
    proc: CompiledProc,
    layout: _SlotLayout,
    procs: dict[str, CompiledProc],
):
    spec = BUILTIN_OPERATIONS.get(node.callee)
    if spec is None:
        return _compile_proc_call(cfg, node, proc, layout, procs)
    if spec.nondeterministic:  # VS_toss as a call statement
        return _compile_toss_call(cfg, node, proc, layout)
    if spec.visible:
        return _compile_visible(cfg, node, proc, layout, spec)
    return _compile_invisible_builtin(cfg, node, proc, layout)


def _compile_proc_call(
    cfg: ControlFlowGraph,
    node: CfgNode,
    proc: CompiledProc,
    layout: _SlotLayout,
    procs: dict[str, CompiledProc],
):
    callee = node.callee
    arg_evals = [_compile_expr(arg, layout) for arg in node.args]
    result_lv = None
    if node.result is not None:
        result_lv = _compile_lvalue(node.result, layout, create=True)
    proc_name = cfg.proc_name

    def op_call(
        engine,
        act,
        _callee=callee,
        _procs=procs,
        _args=arg_evals,
        _result=result_lv,
        _proc=proc_name,
    ):
        target = _procs.get(_callee)
        if target is None:
            raise RuntimeFault(
                f"{_proc}: call to unknown procedure {_callee!r} "
                "(environment calls must be closed away before execution)"
            )
        if len(_args) != len(target.params):
            raise RuntimeFault(
                f"{_proc}: {_callee} expects "
                f"{len(target.params)} arguments, got {len(_args)}"
            )
        stack = engine._stack
        if len(stack) >= engine._max_call_depth:
            raise RuntimeFault(
                f"{_proc}: call depth exceeded "
                f"{engine._max_call_depth} (unbounded recursion?)"
            )
        frame = act.frame
        new_frame = SlotFrame(target.layout, engine.journal)
        for slot, ev in zip(target.param_slots, _args):
            new_frame.declare_idx(slot, ev(frame))
        result_cell = _result(frame) if _result is not None else None
        stack.append(_Activation(target, new_frame, target.start_id, result_cell))
        # NB: no budget check here — entering a procedure defers the
        # divergence check by one node, exactly like the walking engine.
        engine._invisible_steps += 1
        return None

    return op_call


def _compile_toss_call(
    cfg: ControlFlowGraph, node: CfgNode, proc: CompiledProc, layout: _SlotLayout
):
    node_id = node.id
    proc_name = cfg.proc_name
    next_id = proc.next_of[node.id]
    store = None
    if node.result is not None:
        store = _make_store(_compile_lvalue(node.result, layout, create=True))
    payload = (store, next_id)

    if len(node.args) != 1:

        def op_bad_toss(engine, act):
            raise TossDomainError("VS_toss takes exactly one argument")

        return op_bad_toss

    static_bound = _static_value(node.args[0])
    if (
        static_bound is not _NOT_STATIC
        and isinstance(static_bound, int)
        and not isinstance(static_bound, bool)
        and static_bound >= 0
    ):
        # Literal bound: the request is fully static, intern one
        # instance at compile time (requests are frozen).
        request = TossRequest(static_bound, node_id, proc_name)

        def op_toss_static(engine, act, _payload=payload, _req=request):
            engine._pending = (_RESUME_TOSS_CALL, act, _payload)
            return _req

        return op_toss_static

    bound_ev = _compile_expr(node.args[0], layout)

    def op_toss_call(
        engine, act, _ev=bound_ev, _payload=payload, _nid=node_id, _proc=proc_name
    ):
        bound = _ev(act.frame)
        if not isinstance(bound, int) or isinstance(bound, bool) or bound < 0:
            raise TossDomainError(
                f"VS_toss argument must be a non-negative int, got {bound!r}"
            )
        engine._pending = (_RESUME_TOSS_CALL, act, _payload)
        return TossRequest(bound, _nid, _proc)

    return op_toss_call


def _static_value(expr: ast.Expr):
    """The literal value of ``expr``, or the _NOT_STATIC sentinel."""
    if isinstance(expr, (ast.IntLit, ast.BoolLit, ast.StrLit)):
        return expr.value
    return _NOT_STATIC


_NOT_STATIC = object()


def _compile_visible(
    cfg: ControlFlowGraph, node: CfgNode, proc: CompiledProc, layout: _SlotLayout, spec
):
    arg_evals = [_compile_expr(arg, layout) for arg in node.args]
    node_id = node.id
    proc_name = cfg.proc_name
    next_id = proc.next_of[node.id]
    op_name = spec.name

    if len(node.args) != spec.arity:
        message = (
            f"{proc_name}: {spec.name} takes {spec.arity} "
            f"arguments, got {len(node.args)}"
        )

        def op_bad_arity(engine, act, _evs=arg_evals, _msg=message):
            # Arguments evaluate first (their faults win), as in the
            # walking engine.
            frame = act.frame
            for ev in _evs:
                ev(frame)
            raise RuntimeFault(_msg)

        return op_bad_arity

    store = None
    if spec.returns_value and node.result is not None:
        store = _make_store(_compile_lvalue(node.result, layout, create=True))
    payload = (store, next_id)
    static_args = [_static_value(arg) for arg in node.args]

    if spec.object_arg is None:
        if _NOT_STATIC not in static_args:
            # e.g. ``VS_assert(0)``: the whole request is a constant —
            # intern one instance at compile time.
            request = VisibleRequest(
                op_name, None, tuple(static_args), node_id, proc_name
            )

            def op_local_static(engine, act, _payload=payload, _req=request):
                engine._pending = (_RESUME_VISIBLE, act, _payload)
                return _req

            return op_local_static

        def op_local(
            engine, act, _evs=arg_evals, _payload=payload, _op=op_name,
            _nid=node_id, _proc=proc_name,
        ):
            frame = act.frame
            args = tuple(ev(frame) for ev in _evs)
            engine._pending = (_RESUME_VISIBLE, act, _payload)
            return VisibleRequest(_op, None, args, _nid, _proc)

        return op_local

    object_arg = spec.object_arg
    rest = tuple(i for i in range(spec.arity) if i != object_arg)

    if static_args[object_arg] is not _NOT_STATIC:
        # The object operand is a literal (the normalizer lowers bare
        # object names to string atoms), so resolution is a per-engine
        # constant — but ``engine._objects`` differs per run, so the
        # resolved request is cached on the *engine*, keyed by node id.
        # Requests are frozen, making the sharing observationally
        # invisible; resolution failures stay lazy and uncached, so the
        # fault surfaces at the same execution point as the walking
        # engine's.
        obj_name = static_args[object_arg]

        # Node ids repeat across procedures, so the per-engine cache is
        # keyed by a sentinel unique to this compiled node.
        cache_key = object()

        if _NOT_STATIC not in static_args:
            args = tuple(static_args[i] for i in rest)

            def op_visible_static(
                engine, act, _payload=payload, _op=op_name, _ref=obj_name,
                _args=args, _nid=node_id, _proc=proc_name, _key=cache_key,
            ):
                request = engine._request_cache.get(_key)
                if request is None:
                    obj = _resolve_object(engine._objects, _ref, _op)
                    request = VisibleRequest(_op, obj, _args, _nid, _proc)
                    engine._request_cache[_key] = request
                engine._pending = (_RESUME_VISIBLE, act, _payload)
                return request

            return op_visible_static

        value_evals = [arg_evals[i] for i in rest]

        def op_visible_static_obj(
            engine, act, _evs=value_evals, _payload=payload, _op=op_name,
            _ref=obj_name, _nid=node_id, _proc=proc_name, _key=cache_key,
        ):
            obj = engine._request_cache.get(_key)
            if obj is None:
                obj = _resolve_object(engine._objects, _ref, _op)
                engine._request_cache[_key] = obj
            frame = act.frame
            args = tuple(ev(frame) for ev in _evs)
            engine._pending = (_RESUME_VISIBLE, act, _payload)
            return VisibleRequest(_op, obj, args, _nid, _proc)

        return op_visible_static_obj

    def op_visible(
        engine, act, _evs=arg_evals, _payload=payload, _op=op_name,
        _obj_arg=object_arg, _rest=rest, _nid=node_id, _proc=proc_name,
    ):
        frame = act.frame
        values = [ev(frame) for ev in _evs]
        obj = _resolve_object(engine._objects, values[_obj_arg], _op)
        args = tuple(values[i] for i in _rest)
        engine._pending = (_RESUME_VISIBLE, act, _payload)
        return VisibleRequest(_op, obj, args, _nid, _proc)

    return op_visible


_LOOKUP_KINDS = {"channel": "channel", "semaphore": "semaphore", "shared": "shared"}


def _compile_invisible_builtin(
    cfg: ControlFlowGraph, node: CfgNode, proc: CompiledProc, layout: _SlotLayout
):
    name = node.callee
    next_id = proc.next_of[node.id]
    store = None
    if node.result is not None:
        store = _make_store(_compile_lvalue(node.result, layout, create=True))

    if name == "record":

        def op_record(engine, act, _store=store, _next=next_id):
            if _store is not None:
                _store(engine, act, RecordValue())
            engine._invisible_steps += 1
            act.node_id = _next
            steps = engine._invisible_steps
            if steps > engine._budget:
                raise DivergenceError(engine.process_name, engine._budget)
            return None

        return op_record

    target_kind = _LOOKUP_KINDS.get(name)
    if target_kind is None:
        raise CompileUnsupported(f"unknown invisible builtin {name!r}")
    if len(node.args) != 1:
        raise CompileUnsupported(f"{name}() must take exactly one argument")
    arg_ev = _compile_expr(node.args[0], layout)

    def op_lookup(
        engine, act, _ev=arg_ev, _name=name, _kind=target_kind,
        _store=store, _next=next_id,
    ):
        arg = _ev(act.frame)
        if not isinstance(arg, str):
            raise ObjectError(f"{_name}() takes an object name string, got {arg!r}")
        obj = engine._objects.get(arg)
        if obj is None:
            raise ObjectError(f"unknown communication object {arg!r}")
        if obj.kind != _kind:
            raise ObjectError(
                f"{_name}({arg!r}): object is a {obj.kind}, not a {_kind}"
            )
        if _store is not None:
            _store(engine, act, ObjectRef(obj.kind, arg))
        engine._invisible_steps += 1
        act.node_id = _next
        steps = engine._invisible_steps
        if steps > engine._budget:
            raise DivergenceError(engine.process_name, engine._budget)
        return None

    return op_lookup


# ---------------------------------------------------------------------------
# The engine
# ---------------------------------------------------------------------------


class CompiledEngine:
    """Executes one process over a compiled program.

    Same constructor contract and stepper semantics as
    :class:`~repro.runtime.interp.Interpreter`, with the CFGs replaced
    by a :class:`CompiledProgram` (compile once per
    :class:`~repro.runtime.system.System`, share across runs and
    processes — compiled procedures are immutable).
    """

    def __init__(
        self,
        program: CompiledProgram,
        top_proc: str,
        args: tuple[Any, ...],
        objects: dict[str, Any],
        divergence_budget: int = 100_000,
        process_name: str = "<process>",
        max_call_depth: int = 512,
        journal: Any | None = None,
    ):
        proc = program.procs.get(top_proc)
        if proc is None:
            raise RuntimeFault(f"unknown top-level procedure {top_proc!r}")
        if len(args) != len(proc.params):
            raise RuntimeFault(
                f"process {process_name!r}: {top_proc} expects "
                f"{len(proc.params)} arguments, got {len(args)}"
            )
        self._program = program
        self._objects = objects
        self._budget = divergence_budget
        self._max_call_depth = max_call_depth
        self.process_name = process_name
        self.journal = journal
        frame = SlotFrame(proc.layout, journal=journal)
        for slot, value in zip(proc.param_slots, args):
            frame.declare_idx(slot, value)
        self._stack: list[_Activation] = [
            _Activation(proc, frame, proc.start_id, None)
        ]
        self._invisible_steps = 0
        #: ``(tag, activation, payload)`` with ``tag`` one of the
        #: interpreter's ``_RESUME_*`` constants; ``None`` while running.
        self._pending: tuple | None = None
        #: Per-engine cache of interned :class:`VisibleRequest` objects
        #: (and resolved communication objects) for operations whose
        #: operands are compile-time literals — keyed by node id, filled
        #: lazily because object resolution is per-run.
        self._request_cache: dict[Any, Any] = {}
        #: Node-trace buffer for coverage collection (``None`` = off).
        #: ``_advance`` records every dispatched node; fused ASSIGN
        #: blocks additionally log their interior nodes (see
        #: ``op_block``), so the sequence is instruction-identical to
        #: the walking engine's.
        self._trace: list | None = None

    # -- public API ------------------------------------------------------------

    def start(self) -> Request | None:
        """Run the initial invisible prefix up to the first request."""
        return self._advance()

    def resume(self, value: Any) -> Request | None:
        """Answer the pending request with ``value`` and run on."""
        tag, act, payload = self._pending
        self._pending = None
        if tag == _RESUME_VISIBLE:
            self._invisible_steps = 0
            store, next_id = payload
            if store is not None:
                store(self, act, value)
            act.node_id = next_id
        elif tag == _RESUME_TOSS_NODE:
            # VS_toss is invisible: it does NOT reset the divergence
            # budget (a toss-only loop must still be reported).
            self._invisible_steps += 1
            table, bound = payload
            if not isinstance(value, int) or not (0 <= value <= bound):
                raise TossDomainError(
                    f"scheduler sent toss value {value!r}, expected 0..{bound}"
                )
            dst = table.get(value, -1)
            if dst < 0:
                raise RuntimeFault(
                    f"{act.proc.name}: TOSS node {act.node_id} missing branch for {value}"
                )
            act.node_id = dst
        else:  # _RESUME_TOSS_CALL
            self._invisible_steps += 1
            store, next_id = payload
            if store is not None:
                store(self, act, value)
            act.node_id = next_id
        if self._invisible_steps > self._budget:
            raise DivergenceError(self.process_name, self._budget)
        return self._advance()

    def _advance(self) -> Request | None:
        """Threaded dispatch: look up and invoke node callables until a
        request (returned) or termination (``None``)."""
        stack = self._stack
        trace = self._trace
        if trace is None:
            while True:
                act = stack[-1]
                result = act.proc.ops[act.node_id](self, act)
                if result is not None:
                    return None if result is _DONE else result
        # Coverage tracing: record each node before invoking its op (a
        # faulting node is logged as visited, its out-edge is not) —
        # duplicated loop so the hot untraced path pays nothing.
        while True:
            act = stack[-1]
            trace.append((act.proc.name, act.node_id))
            result = act.proc.ops[act.node_id](self, act)
            if result is not None:
                return None if result is _DONE else result

    # -- checkpoint / restore ----------------------------------------------------

    def snapshot(self) -> tuple:
        """Same 4-tuple layout as the walking engine (see
        :meth:`repro.runtime.interp.Interpreter.snapshot`)."""
        stack = tuple(self._stack)
        return (
            stack,
            tuple(act.node_id for act in stack),
            self._invisible_steps,
            self._pending,
        )

    def restore(self, snap: tuple) -> None:
        stack, node_ids, invisible_steps, pending = snap
        self._stack[:] = stack
        for act, node_id in zip(stack, node_ids):
            act.node_id = node_id
        self._invisible_steps = invisible_steps
        self._pending = pending

    def state_fingerprint(self) -> Any:
        """Byte-identical to the walking engine's fingerprint."""
        return tuple(
            (act.proc.name, act.node_id, act.frame.state_fingerprint())
            for act in self._stack
        )

    # -- coverage tracing ---------------------------------------------------------

    def enable_trace(self) -> None:
        """Start recording every dispatched node into the trace buffer."""
        if self._trace is None:
            self._trace = []

    def take_trace(self) -> list | tuple:
        """Drain and return the recorded ``(proc_name, node_id)`` entries.

        The buffer is handed over and replaced with a fresh list (no
        copy); ``_advance`` and ``op_block`` re-read ``self._trace`` on
        every entry, and the engine is suspended whenever this is called.
        """
        trace = self._trace
        if not trace:
            return ()
        self._trace = []
        return trace

    def control_nodes(self) -> list:
        """The activation stack as ``(proc_name, node_id)``, outermost
        first (see :meth:`repro.runtime.interp.Interpreter.control_nodes`)."""
        return [(act.proc.name, act.node_id) for act in self._stack]
