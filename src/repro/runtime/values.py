"""Runtime values and memory cells.

A *store* maps variables (memory locations) to values, as in Section 5
of the paper.  We realise memory locations as :class:`Cell` objects;
pointers hold a reference to a cell, arrays are sequences of cells and
records map field names to cells, so ``&a[i]``, ``&r.f`` and ``*p = e``
all behave like their C counterparts.

The special value :data:`TOP` ("abstract value") stands for a value that
the closing transformation erased because it depended on the
environment.  It propagates through arithmetic, may be transmitted
through channels, but *branching on it is a runtime fault* — by Lemma 5
of the paper a correctly closed program never does so, and the fault
turns any closing bug into a loud failure in the test suite.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any


class AbstractValue:
    """The erased "environment-dependent" value (a singleton, ``TOP``)."""

    _instance: "AbstractValue | None" = None

    def __new__(cls) -> "AbstractValue":
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self) -> str:
        return "TOP"


#: The unique abstract value.
TOP = AbstractValue()


class Cell:
    """A mutable memory location."""

    __slots__ = ("value",)

    def __init__(self, value: Any = 0):
        self.value = value

    def __repr__(self) -> str:
        return f"Cell({self.value!r})"


@dataclass(frozen=True, slots=True)
class Pointer:
    """A pointer value: the address of a cell."""

    cell: Cell

    def __repr__(self) -> str:
        return f"Pointer(->{self.cell.value!r})"


class ArrayValue:
    """A fixed-size array of cells."""

    __slots__ = ("cells",)

    def __init__(self, size: int | None = None, cells: list[Cell] | None = None):
        if cells is not None:
            self.cells = cells
        else:
            self.cells = [Cell(0) for _ in range(size or 0)]

    def __len__(self) -> int:
        return len(self.cells)

    def __repr__(self) -> str:
        return f"ArrayValue({[cell.value for cell in self.cells]!r})"


class RecordValue:
    """A record: a mutable mapping from field names to cells.

    Fields are created on first write (RC records are structural, like a
    C struct whose layout is inferred); reading a never-written field is
    a runtime fault, raised by the interpreter.
    """

    __slots__ = ("fields",)

    def __init__(self, fields: dict[str, Cell] | None = None):
        self.fields = fields if fields is not None else {}

    def cell(
        self, name: str, create: bool = False, journal: Any | None = None
    ) -> Cell | None:
        existing = self.fields.get(name)
        if existing is None and create:
            if journal is not None:
                journal.record_new_key(self.fields, name)
            existing = Cell(0)
            self.fields[name] = existing
        return existing

    def __repr__(self) -> str:
        inner = {name: cell.value for name, cell in self.fields.items()}
        return f"RecordValue({inner!r})"


@dataclass(frozen=True, slots=True)
class ObjectRef:
    """A first-class reference to a communication object.

    ``kind`` is ``"channel"``, ``"semaphore"`` or ``"shared"``; ``name``
    is the registration name in the :class:`repro.runtime.system.System`.
    Object references are ordinary values, so processes can be
    parameterized by the objects they talk to.
    """

    kind: str
    name: str

    def __repr__(self) -> str:
        return f"<{self.kind} {self.name}>"


def fingerprint(value: Any, _seen: set[int] | None = None) -> Any:
    """A hashable, structural fingerprint of a runtime value.

    Used by the optional state-counting instrumentation of the explorer
    (benchmarks measure actual state-space sizes with it).  Cycles through
    pointers are cut with a visited set.
    """
    if _seen is None:
        _seen = set()
    if isinstance(value, (int, bool, str)):
        return value
    if value is TOP:
        return ("top",)
    if isinstance(value, ObjectRef):
        return ("obj", value.kind, value.name)
    if isinstance(value, Pointer):
        if id(value.cell) in _seen:
            return ("ptr-cycle",)
        _seen.add(id(value.cell))
        return ("ptr", fingerprint(value.cell.value, _seen))
    if isinstance(value, ArrayValue):
        return ("arr", tuple(fingerprint(cell.value, _seen) for cell in value.cells))
    if isinstance(value, RecordValue):
        items = sorted(value.fields.items())
        return ("rec", tuple((name, fingerprint(cell.value, _seen)) for name, cell in items))
    raise TypeError(f"cannot fingerprint value of type {type(value).__name__}")


def copy_value(value: Any) -> Any:
    """Deep-copy a runtime value (used when transmitting through objects,
    so that later mutation by the sender cannot alter a queued message)."""
    if isinstance(value, (int, bool, str)) or value is TOP or isinstance(value, ObjectRef):
        return value
    if isinstance(value, Pointer):
        # Pointers are transmitted by reference: both sides then share the
        # cell, which models C programs mailing pointers between threads.
        return value
    if isinstance(value, ArrayValue):
        return ArrayValue(cells=[Cell(copy_value(cell.value)) for cell in value.cells])
    if isinstance(value, RecordValue):
        return RecordValue({name: Cell(copy_value(cell.value)) for name, cell in value.fields.items()})
    raise TypeError(f"cannot copy value of type {type(value).__name__}")


def values_equal(left: Any, right: Any) -> bool:
    """Structural equality used by ``==`` in RC."""
    if isinstance(left, bool) or isinstance(right, bool):
        return left is right if (left is TOP or right is TOP) else left == right
    if left is TOP or right is TOP:
        return left is right
    if isinstance(left, (int, str)) and isinstance(right, (int, str)):
        return left == right
    if isinstance(left, ObjectRef) and isinstance(right, ObjectRef):
        return left == right
    if isinstance(left, Pointer) and isinstance(right, Pointer):
        return left.cell is right.cell
    if isinstance(left, ArrayValue) and isinstance(right, ArrayValue):
        if len(left) != len(right):
            return False
        return all(
            values_equal(a.value, b.value) for a, b in zip(left.cells, right.cells)
        )
    if isinstance(left, RecordValue) and isinstance(right, RecordValue):
        if set(left.fields) != set(right.fields):
            return False
        return all(
            values_equal(left.fields[name].value, right.fields[name].value)
            for name in left.fields
        )
    return False
