"""Communication objects: shared variables, semaphores, FIFO channels.

These realise Section 2's communication objects ``O = (V, OP)``.  The
crucial invariant — enforced by construction here — is that
**enabledness is a function of the operation history only**: whether
``send``/``recv``/``sem_p`` may proceed depends on counts of past
operations (queue occupancy, semaphore value), never on transmitted
values.  The explorer relies on this when it proves that the closed
program preserves blocking behaviour (Theorem 6 / 7 of the paper).

:class:`EnvSink` models an output channel *to the most general
environment*: since the environment "can take any output at any time",
sends on it are always enabled and the payload is simply recorded as an
observable output event.
"""

from __future__ import annotations

from collections import deque
from typing import Any

from .errors import ObjectError
from .values import copy_value, fingerprint


class CommunicationObject:
    """Base class: a named object supporting visible operations."""

    kind = "object"
    #: Whether every mutation in :meth:`perform` records its inverse in
    #: :attr:`journal` — the contract restore-based backtracking needs.
    #: Subclasses (including user-defined ones) must opt in explicitly;
    #: the explorer falls back to replay when any object is unjournalable.
    journalable = False

    def __init__(self, name: str):
        self.name = name
        #: The :class:`~repro.runtime.journal.UndoJournal` mutations are
        #: recorded into (``None`` = journaling off; set by
        #: :meth:`System.start`).
        self.journal = None
        #: Dirty counter for incremental fingerprints: every ``perform``
        #: branch that can change :meth:`state_fingerprint` must bump it.
        #: The built-in objects do; it is reset on restore by
        #: :class:`repro.runtime.fingerprint.RunFingerprinter`.
        self.fp_version = 0

    def enabled(self, op: str) -> bool:
        """Whether ``op`` may currently be executed (history-only)."""
        raise NotImplementedError

    def perform(self, op: str, args: tuple[Any, ...]) -> Any:
        """Execute ``op``; only called when :meth:`enabled` is true."""
        raise NotImplementedError

    def state_fingerprint(self) -> Any:
        """Hashable snapshot of the object state (for state counting)."""
        raise NotImplementedError

    def __repr__(self) -> str:
        return f"<{type(self).__name__} {self.name!r}>"


class FifoChannel(CommunicationObject):
    """A bounded FIFO message buffer.

    ``send`` enqueues (blocking when ``len(queue) == capacity``); ``recv``
    dequeues (blocking when empty); ``poll`` returns the current queue
    length without blocking.
    """

    kind = "channel"
    journalable = True

    def __init__(self, name: str, capacity: int = 1):
        super().__init__(name)
        if capacity < 1:
            raise ObjectError(f"channel {name!r}: capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self.queue: deque[Any] = deque()

    def enabled(self, op: str) -> bool:
        if op == "send":
            return len(self.queue) < self.capacity
        if op == "recv":
            return len(self.queue) > 0
        if op == "poll":
            return True
        raise ObjectError(f"channel {self.name!r} does not support operation {op!r}")

    def perform(self, op: str, args: tuple[Any, ...]) -> Any:
        if op == "send":
            self.fp_version += 1
            if self.journal is not None:
                self.journal.record_append(self.queue)
            self.queue.append(copy_value(args[0]))
            return None
        if op == "recv":
            self.fp_version += 1
            value = self.queue.popleft()
            if self.journal is not None:
                self.journal.record_popleft(self.queue, value)
            return value
        if op == "poll":
            return len(self.queue)
        raise ObjectError(f"channel {self.name!r} does not support operation {op!r}")

    def state_fingerprint(self) -> Any:
        return ("channel", self.name, tuple(fingerprint(v) for v in self.queue))


class EnvSink(CommunicationObject):
    """An output channel into the most general environment.

    The most general environment accepts any output at any time, so
    ``send`` never blocks.  Sent values are appended to
    :attr:`outputs` — the *visible output trace* used by the behaviour-
    comparison tests and the Figure 2 / Figure 3 benchmarks.  ``recv``
    is deliberately unsupported: inputs from the environment are part of
    the open interface and must be declared as such (extern procedures
    or env channels), not read back from a sink.
    """

    kind = "channel"
    journalable = True

    def __init__(self, name: str, record_outputs: bool = True, visible_in_state: bool = False):
        super().__init__(name)
        self.record_outputs = record_outputs
        #: When true, the output history is part of the state fingerprint
        #: (useful for behaviour-set comparisons); when false, a sink
        #: send does not grow the state space.
        self.visible_in_state = visible_in_state
        self.outputs: list[Any] = []

    def enabled(self, op: str) -> bool:
        if op == "send":
            return True
        if op == "poll":
            return True
        raise ObjectError(
            f"environment sink {self.name!r} does not support operation {op!r}"
        )

    def perform(self, op: str, args: tuple[Any, ...]) -> Any:
        if op == "send":
            if self.record_outputs:
                if self.visible_in_state:
                    self.fp_version += 1
                if self.journal is not None:
                    self.journal.record_append(self.outputs)
                self.outputs.append(copy_value(args[0]))
            return None
        if op == "poll":
            return 0
        raise ObjectError(
            f"environment sink {self.name!r} does not support operation {op!r}"
        )

    def state_fingerprint(self) -> Any:
        if self.visible_in_state:
            return ("sink", self.name, tuple(fingerprint(v) for v in self.outputs))
        return ("sink", self.name)


class Semaphore(CommunicationObject):
    """A counting semaphore.  ``sem_p`` blocks when the count is zero."""

    kind = "semaphore"
    journalable = True

    def __init__(self, name: str, initial: int = 1):
        super().__init__(name)
        if initial < 0:
            raise ObjectError(f"semaphore {name!r}: initial count must be >= 0")
        self.count = initial

    def enabled(self, op: str) -> bool:
        if op == "sem_p":
            return self.count > 0
        if op == "sem_v":
            return True
        raise ObjectError(f"semaphore {self.name!r} does not support operation {op!r}")

    def perform(self, op: str, args: tuple[Any, ...]) -> Any:
        if op == "sem_p":
            self.fp_version += 1
            if self.journal is not None:
                self.journal.record_attr(self, "count")
            self.count -= 1
            return None
        if op == "sem_v":
            self.fp_version += 1
            if self.journal is not None:
                self.journal.record_attr(self, "count")
            self.count += 1
            return None
        raise ObjectError(f"semaphore {self.name!r} does not support operation {op!r}")

    def state_fingerprint(self) -> Any:
        return ("semaphore", self.name, self.count)


class SharedVar(CommunicationObject):
    """A shared variable with always-enabled atomic ``read``/``write``."""

    kind = "shared"
    journalable = True

    def __init__(self, name: str, initial: Any = 0):
        super().__init__(name)
        self.value = initial

    def enabled(self, op: str) -> bool:
        if op in ("read", "write"):
            return True
        raise ObjectError(f"shared variable {self.name!r} does not support operation {op!r}")

    def perform(self, op: str, args: tuple[Any, ...]) -> Any:
        if op == "read":
            return copy_value(self.value)
        if op == "write":
            self.fp_version += 1
            if self.journal is not None:
                self.journal.record_attr(self, "value")
            self.value = copy_value(args[0])
            return None
        raise ObjectError(f"shared variable {self.name!r} does not support operation {op!r}")

    def state_fingerprint(self) -> Any:
        return ("shared", self.name, fingerprint(self.value))
