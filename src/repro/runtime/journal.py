"""The undo journal: O(changes) state restoration for the runtime.

VeriSoft-style search backtracks by re-executing the whole path prefix
from the initial state — replay is exact because the runtime is
deterministic, but it spends the majority of deep searches executing
transitions the explorer has already seen.  The undo journal makes the
*inverse* operation cheap instead: every mutation of visible runtime
state (a memory cell write, a frame/record entry creation, a channel
enqueue/dequeue, a semaphore bump, a shared-variable write) appends one
entry recording how to undo it, and restoring to an earlier checkpoint
pops and applies the inverses in reverse order.

Design invariants (see ``docs/backtracking.md``):

* **Completeness** — every mutation reachable from a
  :class:`~repro.runtime.system.Run` after :meth:`mark` is journaled, so
  :meth:`rewind` reproduces the marked state *bit-identically*: the same
  ``state_fingerprint()``, the same object identities (cells, frames and
  activations are restored in place, never rebuilt, so live pointers
  stay valid).
* **Value/control split** — the journal records *value* mutations only.
  Control state (per-process call stacks, CFG positions, pending
  requests) changes on every invisible step and would swamp the journal;
  it is captured instead as a shallow per-checkpoint snapshot
  (:meth:`repro.runtime.process.Process.snapshot`), which costs O(stack
  depth) per checkpoint rather than O(1) per step.
* **Cost** — recording is one append per mutation; rewinding is
  O(entries since the mark), never O(path depth).

Entries are plain tuples tagged by kind, dispatched in :meth:`rewind`:

========== ============================ ===========================
tag        recorded                     inverse
========== ============================ ===========================
CELL       (cell, old value)            ``cell.value = old``
ATTR       (obj, attr name, old value)  ``setattr(obj, name, old)``
DICT_NEW   (mapping, new key)           ``del mapping[key]``
APPEND     (sequence,)                  ``sequence.pop()``
POPLEFT    (deque, popped value)        ``deque.appendleft(value)``
SLOT       (slot list, index)           ``slots[index] = None``
========== ============================ ===========================

``SLOT`` is the slot-frame counterpart of ``DICT_NEW``: the compiled
engine's :class:`~repro.runtime.compile.SlotFrame` packs a frame's cells
into a flat array, so declaring a variable fills a slot (undone by
clearing it) instead of inserting a dict key.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

# Entry tags (module-level ints: cheaper to build and dispatch than an
# Enum in the journal hot path).
_CELL = 0
_ATTR = 1
_DICT_NEW = 2
_APPEND = 3
_POPLEFT = 4
_SLOT = 5

#: Accounting-model cost of one journal entry (a small tuple plus its
#: references), used for the ``checkpoint_memory_bytes`` telemetry —
#: an estimate in the same spirit as the state stores'
#: ``memory_bytes`` accounting, not a measured allocation.
ENTRY_BYTES = 72


class UndoJournal:
    """An append-only log of inverse operations over runtime state."""

    __slots__ = (
        "_entries",
        "entries_recorded",
        "entries_undone",
        "restores",
        "peak_entries",
    )

    def __init__(self) -> None:
        self._entries: list[tuple] = []
        #: Total entries ever recorded (monotonic; telemetry).
        self.entries_recorded = 0
        #: Total entries popped-and-applied by :meth:`rewind`.
        self.entries_undone = 0
        #: Number of :meth:`rewind` calls.
        self.restores = 0
        #: High-water mark of the live entry count.
        self.peak_entries = 0

    def __len__(self) -> int:
        return len(self._entries)

    # -- recording (the runtime's mutation hot path) -------------------------

    def record_cell(self, cell: Any) -> None:
        """The cell's value is about to be overwritten."""
        self._entries.append((_CELL, cell, cell.value))
        self.entries_recorded += 1

    def record_attr(self, obj: Any, name: str) -> None:
        """``obj.<name>`` is about to be overwritten."""
        self._entries.append((_ATTR, obj, name, getattr(obj, name)))
        self.entries_recorded += 1

    def record_new_key(self, mapping: dict, key: Any) -> None:
        """``key`` is about to be inserted into ``mapping`` (not present)."""
        self._entries.append((_DICT_NEW, mapping, key))
        self.entries_recorded += 1

    def record_append(self, sequence: Any) -> None:
        """A value is about to be appended to ``sequence`` (list/deque)."""
        self._entries.append((_APPEND, sequence))
        self.entries_recorded += 1

    def record_popleft(self, queue: Any, value: Any) -> None:
        """``value`` was just popped from the left of ``queue``."""
        self._entries.append((_POPLEFT, queue, value))
        self.entries_recorded += 1

    def record_slot(self, slots: list, index: int) -> None:
        """Slot ``index`` (currently empty) is about to be filled."""
        self._entries.append((_SLOT, slots, index))
        self.entries_recorded += 1

    # -- checkpoints ---------------------------------------------------------

    def mark(self) -> int:
        """The current journal position, to :meth:`rewind` to later."""
        length = len(self._entries)
        if length > self.peak_entries:
            self.peak_entries = length
        return length

    def rewind(self, mark: int) -> None:
        """Pop-and-apply inverses until the journal is back at ``mark``."""
        entries = self._entries
        length = len(entries)
        if length > self.peak_entries:
            self.peak_entries = length
        if mark > length:
            raise ValueError(
                f"cannot rewind forward: mark {mark} is past the journal "
                f"end ({length})"
            )
        self.restores += 1
        undone = length - mark
        while len(entries) > mark:
            entry = entries.pop()
            tag = entry[0]
            if tag == _CELL:
                entry[1].value = entry[2]
            elif tag == _ATTR:
                setattr(entry[1], entry[2], entry[3])
            elif tag == _DICT_NEW:
                del entry[1][entry[2]]
            elif tag == _APPEND:
                entry[1].pop()
            elif tag == _POPLEFT:
                entry[1].appendleft(entry[2])
            else:  # _SLOT
                entry[1][entry[2]] = None
        self.entries_undone += undone

    # -- telemetry -----------------------------------------------------------

    def peak_memory_bytes(self) -> int:
        """Accounting-model footprint of the journal at its high-water
        mark (see :data:`ENTRY_BYTES`)."""
        return self.peak_entries * ENTRY_BYTES


@dataclass(frozen=True, slots=True)
class RunCheckpoint:
    """A restorable point of a journaled :class:`~repro.runtime.system.Run`.

    Pairs a journal ``mark`` (covering every *value* mutation) with one
    opaque control-state snapshot per process (stack shape, CFG
    positions, pending request — see
    :meth:`~repro.runtime.process.Process.snapshot`).  Produced by
    :meth:`Run.checkpoint`, consumed by :meth:`Run.restore`; restoring
    twice from the same checkpoint is supported (snapshots are never
    mutated).
    """

    mark: int
    processes: tuple[Any, ...]
    #: Accounting-model footprint of this checkpoint (for telemetry).
    approx_bytes: int = 0
    #: Incremental-fingerprint memo captured with the checkpoint
    #: (:meth:`repro.runtime.fingerprint.RunFingerprinter.snapshot`), or
    #: ``None`` when the run has no fingerprinter.  The journal rewinds
    #: value state *underneath* the fingerprint cache, so restore must
    #: reinstall the memo taken at the same instant as the mark.
    fingerprints: tuple | None = None
