"""Stores: frames of memory cells for procedure activations.

A store maps variables (memory locations) to values (Section 5 of the
paper).  Each procedure activation owns a :class:`Frame`; the paper's
"fresh variables created for each argument" are exactly the parameter
cells of a new frame.  Fresh variables do not escape their scope — a
callee cannot name a caller's locals — though a *pointer* passed as an
argument may reach them, which is precisely what the alias analysis
tracks.
"""

from __future__ import annotations

from typing import Any

from .errors import RuntimeFault
from .values import ArrayValue, Cell, fingerprint


class Frame:
    """One procedure activation: name -> memory cell."""

    __slots__ = ("proc_name", "cells", "journal")

    def __init__(self, proc_name: str, journal: Any | None = None):
        self.proc_name = proc_name
        self.cells: dict[str, Cell] = {}
        self.journal = journal

    def declare(self, name: str, value: Any = 0) -> Cell:
        """Create (or re-initialize) the cell for a local/parameter."""
        cell = self.cells.get(name)
        if cell is None:
            if self.journal is not None:
                self.journal.record_new_key(self.cells, name)
            cell = Cell(value)
            self.cells[name] = cell
        else:
            # Re-executing a declaration (loop bodies) resets the cell in
            # place so existing pointers to it stay valid, like C autos
            # reused across iterations.
            if self.journal is not None:
                self.journal.record_cell(cell)
            cell.value = value
        return cell

    def declare_array(self, name: str, size: int) -> Cell:
        return self.declare(name, ArrayValue(size=size))

    def cell(self, name: str) -> Cell:
        found = self.cells.get(name)
        if found is None:
            raise RuntimeFault(
                f"{self.proc_name}: variable {name!r} used before declaration"
            )
        return found

    def state_fingerprint(self) -> Any:
        items = sorted(self.cells.items())
        return (
            self.proc_name,
            tuple((name, fingerprint(cell.value)) for name, cell in items),
        )

    def __repr__(self) -> str:
        inner = {name: cell.value for name, cell in self.cells.items()}
        return f"Frame({self.proc_name!r}, {inner!r})"
