"""System description and live runs.

:class:`System` is the *static* description of a closed concurrent
system: the program (as CFGs), the communication objects and the process
launch specs.  Calling :meth:`System.start` instantiates a fresh
:class:`Run` — fresh objects, fresh process steppers — which is what
makes stateless (re-execution based) exploration possible: the explorer
simply starts a new run per path, exactly like VeriSoft reinitialises
the system to explore an alternative path.  A run started with
``journal=True`` additionally supports :meth:`Run.checkpoint` /
:meth:`Run.restore`, which is what restore-based backtracking builds on
(see :mod:`repro.runtime.journal`).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Any, Iterable

from ..cfg.builder import build_cfgs
from ..cfg.graph import ControlFlowGraph
from ..lang import ast
from ..lang.parser import parse_program
from .compile import (
    CompiledEngine,
    CompiledProgram,
    CompileUnsupported,
    compile_program,
)
from .engine import validate_engine
from .errors import ObjectError
from .fingerprint import RunFingerprinter, encode_canonical
from .interp import Interpreter
from .journal import RunCheckpoint, UndoJournal
from .objects import CommunicationObject, EnvSink, FifoChannel, Semaphore, SharedVar
from .process import Process, ProcessStatus
from .values import ObjectRef


@dataclass(frozen=True, slots=True)
class SystemConfig:
    """Tunables shared by every process of a system."""

    divergence_budget: int = 100_000
    max_call_depth: int = 512


@dataclass(frozen=True, slots=True)
class _ObjectSpec:
    kind: str
    name: str
    params: tuple[tuple[str, Any], ...]

    def instantiate(self) -> CommunicationObject:
        kwargs = dict(self.params)
        if self.kind == "channel":
            return FifoChannel(self.name, **kwargs)
        if self.kind == "env_sink":
            return EnvSink(self.name, **kwargs)
        if self.kind == "semaphore":
            return Semaphore(self.name, **kwargs)
        if self.kind == "shared":
            return SharedVar(self.name, **kwargs)
        raise ObjectError(f"unknown object kind {self.kind!r}")


@dataclass(frozen=True, slots=True)
class _ProcessSpec:
    name: str
    proc: str
    args: tuple[Any, ...]


class System:
    """Static description of a closed concurrent system.

    ``source`` may be RC source text, a parsed :class:`~repro.lang.ast.Program`
    or a pre-built CFG dictionary (the output of the closing
    transformation).

    Systems are **picklable**: a ``System`` consists only of static data
    (CFGs, object/process specs, config), never of live runs, so the
    parallel driver (:mod:`repro.verisoft.parallel`) can ship one to
    worker processes and re-instantiate fresh runs there.  The pickle
    contract is explicit (:meth:`__getstate__`/:meth:`__setstate__`) so
    that future caches added to the class cannot accidentally break
    worker fan-out.  :class:`Run` instances hold live coroutines and are
    deliberately *not* picklable — workers re-execute from the initial
    state instead, which is the whole point of stateless search.
    """

    def __init__(
        self,
        source: str | ast.Program | dict[str, ControlFlowGraph],
        config: SystemConfig | None = None,
    ):
        if isinstance(source, str):
            source = parse_program(source)
        if isinstance(source, ast.Program):
            self.cfgs = build_cfgs(source)
        else:
            self.cfgs = dict(source)
        self.config = config or SystemConfig()
        self._object_specs: dict[str, _ObjectSpec] = {}
        self._process_specs: list[_ProcessSpec] = []
        # Compiled-engine cache: None = not yet attempted, False =
        # compilation unsupported (fall back to the walking engine).
        # Per-instance and excluded from pickling — workers recompile.
        self._compiled: CompiledProgram | bool | None = None
        # uses_pointers() cache — per-instance, excluded from pickling.
        self._uses_pointers: bool | None = None

    # -- pickling (parallel worker fan-out) ---------------------------------------

    def __getstate__(self) -> dict:
        return {
            "cfgs": self.cfgs,
            "config": self.config,
            "object_specs": self._object_specs,
            "process_specs": self._process_specs,
        }

    def __setstate__(self, state: dict) -> None:
        self.cfgs = state["cfgs"]
        self.config = state["config"]
        self._object_specs = state["object_specs"]
        self._process_specs = state["process_specs"]
        self._compiled = None
        self._uses_pointers = None

    # -- declaration API ---------------------------------------------------------

    def _add_object(self, kind: str, name: str, **params) -> ObjectRef:
        if name in self._object_specs:
            raise ObjectError(f"duplicate communication object {name!r}")
        self._object_specs[name] = _ObjectSpec(kind, name, tuple(sorted(params.items())))
        public_kind = "channel" if kind == "env_sink" else kind
        return ObjectRef(public_kind, name)

    def add_channel(self, name: str, capacity: int = 1) -> ObjectRef:
        """Declare a bounded FIFO channel."""
        return self._add_object("channel", name, capacity=capacity)

    def add_env_sink(self, name: str, visible_in_state: bool = False) -> ObjectRef:
        """Declare an always-enabled output channel to the environment."""
        return self._add_object("env_sink", name, visible_in_state=visible_in_state)

    def add_semaphore(self, name: str, initial: int = 1) -> ObjectRef:
        """Declare a counting semaphore."""
        return self._add_object("semaphore", name, initial=initial)

    def add_shared(self, name: str, initial: Any = 0) -> ObjectRef:
        """Declare a shared variable."""
        return self._add_object("shared", name, initial=initial)

    def add_process(self, name: str, proc: str, args: Iterable[Any] = ()) -> None:
        """Declare a process running top-level procedure ``proc``.

        ``args`` are bound to the procedure's parameters; they may be
        ints, bools, strings or :class:`ObjectRef` values.
        """
        if any(spec.name == name for spec in self._process_specs):
            raise ObjectError(f"duplicate process name {name!r}")
        if proc not in self.cfgs:
            raise ObjectError(f"unknown top-level procedure {proc!r}")
        args = tuple(args)
        expected = len(self.cfgs[proc].params)
        if len(args) != expected:
            raise ObjectError(
                f"process {name!r}: procedure {proc!r} takes {expected} "
                f"arguments, got {len(args)}"
            )
        self._process_specs.append(_ProcessSpec(name, proc, args))

    @property
    def process_names(self) -> list[str]:
        return [spec.name for spec in self._process_specs]

    @property
    def process_specs(self) -> list[tuple[str, str, tuple[Any, ...]]]:
        """(process name, top-level procedure, launch args) triples."""
        return [(spec.name, spec.proc, spec.args) for spec in self._process_specs]

    @property
    def object_names(self) -> list[str]:
        return list(self._object_specs)

    # -- identity ------------------------------------------------------------------

    def fingerprint(self) -> str:
        """A stable hex digest of the *static* system description.

        Covers the program (every CFG node and guarded arc, rendered
        textually), the communication-object specs, the process launch
        specs and the config — everything that determines the behaviour
        of :meth:`start`.  Two systems with equal fingerprints replay a
        choice sequence identically, so persisted counterexample traces
        (:mod:`repro.counterex`) record it to detect that the program
        has changed since a trace was captured.
        """
        digest = hashlib.sha256()

        def feed(*parts: Any) -> None:
            digest.update("\x1f".join(str(part) for part in parts).encode())
            digest.update(b"\x1e")

        for proc_name in sorted(self.cfgs):
            cfg = self.cfgs[proc_name]
            feed("proc", proc_name, ",".join(cfg.params))
            for node_id in sorted(cfg.nodes):
                node = cfg.nodes[node_id]
                feed("node", node_id, node.kind.value, node.describe())
                for arc in cfg.successors(node_id):
                    feed("arc", arc.src, arc.dst, arc.guard.describe())
        for name in sorted(self._object_specs):
            spec = self._object_specs[name]
            feed("object", spec.kind, spec.name, spec.params)
        for spec in self._process_specs:
            feed("process", spec.name, spec.proc, spec.args)
        feed("config", self.config.divergence_budget, self.config.max_call_depth)
        return digest.hexdigest()[:16]

    # -- instantiation -------------------------------------------------------------

    def journalable(self) -> bool:
        """Whether every communication object of this system journals its
        mutations (see :attr:`CommunicationObject.journalable`) — the
        precondition for restore-based backtracking."""
        return all(
            spec.instantiate().journalable for spec in self._object_specs.values()
        )

    def uses_pointers(self) -> bool:
        """Whether any procedure takes an address (``&``) or dereferences
        (``*``) — the precondition check for incremental fingerprints.

        ``copy_value`` transmits pointers by reference, so a pointer
        program can mutate one process's fingerprint from another
        process without touching its dirty counter; such programs fall
        back to full fingerprint recomputation (see
        :mod:`repro.runtime.fingerprint`).
        """
        if self._uses_pointers is None:
            self._uses_pointers = any(
                isinstance(expr, ast.Unary) and expr.op in ("&", "*")
                for cfg in self.cfgs.values()
                for node in cfg.nodes.values()
                for root in (node.target, node.value, node.expr, node.result, *node.args)
                if root is not None
                for expr in ast.walk_expr(root)
            )
        return self._uses_pointers

    def compiled_program(self) -> CompiledProgram | None:
        """The program compiled for the ``"compiled"`` engine, or
        ``None`` when compilation is unsupported (pointer programs fall
        back to the walking engine).  Compiled once per ``System`` and
        cached — compiled procedures are immutable and shared by every
        run and process.
        """
        if self._compiled is None:
            try:
                self._compiled = compile_program(self.cfgs)
            except CompileUnsupported:
                self._compiled = False
        return self._compiled or None

    def start(self, journal: bool = False, engine: str = "walk", trace: bool = False) -> "Run":
        """Create a fresh run (fresh objects, fresh process steppers).

        With ``journal=True`` the run records an undo entry for every
        state mutation, enabling :meth:`Run.checkpoint` /
        :meth:`Run.restore`.

        ``engine`` selects the process stepper (see
        :mod:`repro.runtime.engine`): ``"walk"`` (the tree-walking
        reference engine) or ``"compiled"`` (CFGs pre-translated to
        Python closures).  When the program cannot be compiled the run
        falls back to the walking engine; :attr:`Run.engine` records
        which engine the run actually uses.

        ``trace=True`` turns on per-process node tracing
        (``enable_trace()`` on every stepper) for coverage collection.
        """
        validate_engine(engine)
        if not self._process_specs:
            raise ObjectError("system has no processes")
        program = None
        if engine == "compiled":
            program = self.compiled_program()
            if program is None:
                engine = "walk"
        journal_obj = UndoJournal() if journal else None
        objects = {name: spec.instantiate() for name, spec in self._object_specs.items()}
        if journal_obj is not None:
            for obj in objects.values():
                obj.journal = journal_obj
        processes = []
        for spec in self._process_specs:
            if program is not None:
                stepper = CompiledEngine(
                    program,
                    spec.proc,
                    spec.args,
                    objects,
                    divergence_budget=self.config.divergence_budget,
                    process_name=spec.name,
                    max_call_depth=self.config.max_call_depth,
                    journal=journal_obj,
                )
            else:
                stepper = Interpreter(
                    self.cfgs,
                    spec.proc,
                    spec.args,
                    objects,
                    divergence_budget=self.config.divergence_budget,
                    process_name=spec.name,
                    max_call_depth=self.config.max_call_depth,
                    journal=journal_obj,
                )
            if trace:
                stepper.enable_trace()
            processes.append(Process(spec.name, stepper))
        fingerprinter = None
        if not self.uses_pointers():
            fingerprinter = RunFingerprinter(processes, list(objects.values()))
        return Run(
            objects,
            processes,
            journal=journal_obj,
            engine=engine,
            fingerprinter=fingerprinter,
        )


@dataclass(frozen=True, slots=True)
class AssertionOutcome:
    """Result of performing one ``VS_assert``."""

    process: str
    proc_name: str
    node_id: int
    violated: bool


class Run:
    """A live instance of a system, driven by a scheduler/explorer."""

    def __init__(
        self,
        objects: dict[str, CommunicationObject],
        processes: list[Process],
        journal: UndoJournal | None = None,
        engine: str = "walk",
        fingerprinter: RunFingerprinter | None = None,
    ):
        self.objects = objects
        self.processes = processes
        #: Name → process, for O(1) scheduler lookups in the search hot loop.
        self.process_map = {process.name: process for process in processes}
        self.journal = journal
        #: The execution engine actually driving this run's processes —
        #: ``"walk"`` even when ``"compiled"`` was requested but the
        #: program could not be compiled (see :mod:`repro.runtime.engine`).
        self.engine = engine
        #: Incremental state-key combiner, attached by :meth:`System.start`
        #: for pointer-free programs; ``None`` makes :meth:`state_key`
        #: recompute the full encoding (still once per call).
        self.fingerprinter = fingerprinter
        self._started = False

    def __reduce__(self):
        raise TypeError(
            "Run instances hold live process state and cannot be "
            "pickled; pickle the System and start a fresh run instead"
        )

    # -- checkpoint / restore ---------------------------------------------------------

    def checkpoint(self) -> RunCheckpoint:
        """Capture a restorable point of this run.

        Requires the run to have been started with ``journal=True``
        (:meth:`System.start`).  Cost is O(total stack depth) — one
        shallow control snapshot per process; value state is covered by
        the journal mark.
        """
        if self.journal is None:
            raise RuntimeError(
                "run was not started with journaling; pass journal=True "
                "to System.start() to enable checkpoints"
            )
        # Accounting-model footprint: a checkpoint tuple plus, per
        # process, its snapshot tuple and one slot per stack entry.
        snapshots = []
        approx_bytes = 96
        for process in self.processes:
            snap = process.snapshot()
            snapshots.append(snap)
            approx_bytes += 112 + 56 * len(snap[3][0])
        snapshots = tuple(snapshots)
        fingerprinter = self.fingerprinter
        return RunCheckpoint(
            mark=self.journal.mark(),
            processes=snapshots,
            approx_bytes=approx_bytes,
            fingerprints=None if fingerprinter is None else fingerprinter.snapshot(),
        )

    def restore(self, checkpoint: RunCheckpoint) -> None:
        """Rewind this run to a :meth:`checkpoint` taken earlier.

        Value state is rewound by the journal (O(changes since)), then
        every process's control state is overwritten from its snapshot.
        The resulting state is bit-identical to re-execution: the same
        ``state_fingerprint()`` over the same live cell/frame objects.
        """
        if self.journal is None:
            raise RuntimeError("run is not journaled; cannot restore")
        self.journal.rewind(checkpoint.mark)
        for process, snap in zip(self.processes, checkpoint.processes):
            process.restore(snap)
        if self.fingerprinter is not None:
            if checkpoint.fingerprints is not None:
                self.fingerprinter.restore(checkpoint.fingerprints)
            else:
                # A checkpoint without a memo (hand-built) still rewound
                # value state under the cache — drop every cached byte.
                self.fingerprinter.invalidate()

    # -- lifecycle ------------------------------------------------------------------

    def start_processes(self) -> None:
        """Run every process's initial invisible prefix.

        May leave some processes in ``NEEDS_TOSS`` if they toss before
        their first visible operation; the scheduler must answer those
        before a global state is reached.
        """
        if self._started:
            raise RuntimeError("run already started")
        self._started = True
        for process in self.processes:
            process.start()

    # -- scheduler interface -----------------------------------------------------------

    def toss_pending(self) -> Process | None:
        """The first process awaiting a toss value, if any.

        Tosses are invisible and local, so answering them in a fixed
        deterministic order loses no behaviours (invisible operations of
        distinct processes commute).
        """
        for process in self.processes:
            if process.status is ProcessStatus.NEEDS_TOSS:
                return process
        return None

    def at_global_state(self) -> bool:
        """All processes stopped at a visible op or blocked forever."""
        return all(
            process.status is ProcessStatus.AT_VISIBLE or process.is_blocked_forever()
            for process in self.processes
        )

    def enabled_processes(self) -> list[Process]:
        """Processes whose next visible operation is currently enabled."""
        return [
            process
            for process in self.processes
            if process.status is ProcessStatus.AT_VISIBLE and process.enabled()
        ]

    def is_deadlock(self) -> bool:
        """A deadlock: some process is still live but nothing is enabled.

        A state where *every* process terminated normally is not a
        deadlock.
        """
        if not self.at_global_state():
            return False
        if self.enabled_processes():
            return False
        return any(
            process.status is ProcessStatus.AT_VISIBLE for process in self.processes
        )

    def all_terminated(self) -> bool:
        return all(
            process.status is ProcessStatus.TERMINATED for process in self.processes
        )

    def execute_visible(self, process: Process) -> AssertionOutcome | None:
        """Execute ``process``'s pending visible operation.

        The caller must have checked enabledness.  Returns the assertion
        outcome when the operation was a ``VS_assert``.
        """
        request = process.visible_request
        if request is None:
            raise RuntimeError(f"process {process.name!r} has no pending visible op")
        outcome = None
        if request.obj is None:
            # VS_assert: evaluate the (already computed) subject.
            subject = request.args[0]
            violated = _assert_violated(subject)
            outcome = AssertionOutcome(
                process=process.name,
                proc_name=request.proc_name,
                node_id=request.node_id,
                violated=violated,
            )
            result = None
        else:
            if not request.obj.enabled(request.op):
                raise RuntimeError(
                    f"visible op {request.op!r} on {request.obj.name!r} is not enabled"
                )
            result = request.obj.perform(request.op, request.args)
        process.resume(result)
        return outcome

    def answer_toss(self, process: Process, value: int) -> None:
        request = process.toss_request
        if request is None:
            raise RuntimeError(f"process {process.name!r} is not awaiting a toss")
        if not (0 <= value <= request.bound):
            raise ValueError(f"toss value {value} outside 0..{request.bound}")
        process.resume(value)

    # -- state inspection ------------------------------------------------------------

    def state_fingerprint(self) -> Any:
        """Hashable global-state snapshot (processes + objects)."""
        return (
            tuple(process.state_fingerprint() for process in self.processes),
            tuple(obj.state_fingerprint() for obj in self.objects.values()),
        )

    def state_key(self) -> bytes:
        """The canonical byte key of the current global state.

        Bit-identical to ``encode_canonical(self.state_fingerprint())``
        always; computed incrementally (O(components changed since the
        last call)) when :meth:`System.start` attached a fingerprinter,
        i.e. for every pointer-free program.  This is the *single* key
        shared by seen-state dedup, the statespace stores and the
        frontier codec — compute it once per state.
        """
        fingerprinter = self.fingerprinter
        if fingerprinter is None:
            return encode_canonical(self.state_fingerprint())
        return fingerprinter.key()

    def env_outputs(self, sink_name: str) -> list[Any]:
        """The recorded output trace of an :class:`EnvSink`."""
        sink = self.objects.get(sink_name)
        if not isinstance(sink, EnvSink):
            raise ObjectError(f"{sink_name!r} is not an environment sink")
        return list(sink.outputs)


def _assert_violated(subject: Any) -> bool:
    from .values import TOP

    if subject is TOP:
        # A non-preserved assertion (its subject was erased by the closing
        # transformation): vacuously passes — Theorem 7 only promises
        # preservation for assertions whose subject survives.
        return False
    if isinstance(subject, bool):
        return not subject
    if isinstance(subject, int):
        return subject == 0
    # Any non-boolean, non-int subject counts as a violation: asserting on
    # a record/pointer is almost certainly a bug in the checked program.
    return True
