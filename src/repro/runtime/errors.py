"""Runtime error types.

RC follows the paper's treatment of run-time errors (Section 5): like C,
RC leaves most error behaviours *unspecified*, so the closing
transformation is free to delete statements that could fault when they
depend only on environment values.  The interpreter itself is strict: a
faulting execution raises :class:`RuntimeFault`, which the explorer
reports as a :class:`ProcessCrash` event with the offending trace.
"""

from __future__ import annotations


class RuntimeFault(Exception):
    """A run-time error with unspecified source-language behaviour.

    Examples: array index out of bounds, dereference of a non-pointer,
    arithmetic on incompatible values, division by zero, branching on an
    abstract (environment-erased) value.
    """


class TossDomainError(RuntimeFault):
    """``VS_toss(n)`` called with a negative ``n`` or a non-integer."""


class ObjectError(RuntimeFault):
    """Misuse of a communication object (wrong kind, unknown name, ...)."""


class DivergenceError(Exception):
    """A process exceeded its invisible-step budget without reaching a
    visible operation — the paper's footnote-1 divergence timeout."""

    def __init__(self, process_name: str, budget: int):
        self.process_name = process_name
        self.budget = budget
        super().__init__(
            f"process {process_name!r} executed {budget} invisible steps "
            "without attempting a visible operation"
        )


class ProcessCrash(Exception):
    """Wrapper carrying the process name alongside the original fault."""

    def __init__(self, process_name: str, fault: Exception):
        self.process_name = process_name
        self.fault = fault
        super().__init__(f"process {process_name!r} crashed: {fault}")
