"""The :class:`Process` wrapper: one sequential program under scheduler
control.

A process owns an execution engine — any implementation of the
:class:`~repro.runtime.engine.ExecutionEngine` stepper contract, the
tree-walking :class:`~repro.runtime.interp.Interpreter` or the
:class:`~repro.runtime.compile.CompiledEngine` — and tracks where it
currently stands:

* ``AT_VISIBLE`` — stopped just before a visible operation (the paper's
  global-state condition is "the next operation of every process is
  visible");
* ``NEEDS_TOSS`` — stopped at a ``VS_toss`` choice point (an *invisible*
  nondeterministic operation inside a transition);
* ``TERMINATED`` — the top-level procedure returned/exited; per the
  paper, termination in the top level is permanently blocking;
* ``CRASHED`` — a :class:`RuntimeFault` occurred (unspecified behaviour);
* ``DIVERGED`` — the invisible-step budget was exhausted.
"""

from __future__ import annotations

import enum
from typing import TYPE_CHECKING, Any

from .errors import DivergenceError, ProcessCrash, RuntimeFault
from .interp import Request, TossRequest, VisibleRequest

if TYPE_CHECKING:
    from .engine import ExecutionEngine


class ProcessStatus(enum.Enum):
    """Where a process currently stands (see the module docstring)."""
    AT_VISIBLE = "at-visible"
    NEEDS_TOSS = "needs-toss"
    TERMINATED = "terminated"
    CRASHED = "crashed"
    DIVERGED = "diverged"


class Process:
    """A running process: engine stepper + status + pending request."""

    def __init__(self, name: str, interpreter: "ExecutionEngine"):
        self.name = name
        self._interpreter = interpreter
        self.status: ProcessStatus | None = None  # None until start()
        self.pending: Request | None = None
        self.crash: Exception | None = None
        #: Dirty counter for incremental fingerprints: bumped whenever the
        #: process steps or is restored, i.e. whenever anything covered by
        #: :meth:`state_fingerprint` may have changed.  Consumed (and reset
        #: on restore) by :class:`repro.runtime.fingerprint.RunFingerprinter`.
        self.fp_version = 0
        #: Memoised :meth:`snapshot` tuple — valid until the next step or
        #: restore, making repeated checkpoints of a parked process O(1).
        self._snap: tuple | None = None
        #: Cached ``(request, TransitionSig, sig_id)`` for the pending
        #: visible request, maintained by :mod:`repro.verisoft.por`.
        #: Validated by request identity, so it needs no invalidation.
        self._sig_entry: tuple | None = None

    @property
    def engine(self) -> "ExecutionEngine":
        """The execution engine stepping this process."""
        return self._interpreter

    # -- lifecycle --------------------------------------------------------------

    def start(self) -> None:
        """Run the initial invisible prefix up to the first request."""
        self._resume(self._interpreter.start)

    def resume(self, value: Any = None) -> None:
        """Answer the pending request with ``value`` and run to the next one."""
        if self.status not in (ProcessStatus.AT_VISIBLE, ProcessStatus.NEEDS_TOSS):
            raise RuntimeError(f"cannot resume process {self.name!r} in status {self.status}")
        self.pending = None
        self._resume(lambda: self._interpreter.resume(value))

    def _resume(self, step) -> None:
        self.fp_version += 1
        self._snap = None
        try:
            request = step()
        except DivergenceError as err:
            self.status = ProcessStatus.DIVERGED
            self.pending = None
            self.crash = err
            return
        except RuntimeFault as fault:
            self.status = ProcessStatus.CRASHED
            self.pending = None
            self.crash = ProcessCrash(self.name, fault)
            return
        if request is None:
            self.status = ProcessStatus.TERMINATED
            self.pending = None
            return
        self.pending = request
        if isinstance(request, TossRequest):
            self.status = ProcessStatus.NEEDS_TOSS
        else:
            self.status = ProcessStatus.AT_VISIBLE

    # -- checkpoint / restore -----------------------------------------------------

    def snapshot(self) -> tuple:
        """Control-state snapshot for restore-based backtracking.

        O(stack depth); pairs the scheduler-facing state (status, pending
        request, crash record) with the interpreter's own snapshot.  Value
        state is rewound separately by the undo journal.

        Memoised: a process that has not stepped since the last snapshot
        returns the same tuple (snapshots are immutable by contract), so
        checkpointing a mostly-parked system is O(moved processes).
        """
        snap = self._snap
        if snap is None:
            snap = (self.status, self.pending, self.crash, self._interpreter.snapshot())
            self._snap = snap
        return snap

    def restore(self, snap: tuple) -> None:
        """Rewind to a :meth:`snapshot` (repeatable; safe after crashes)."""
        self.fp_version += 1
        self._snap = snap  # the state now *is* this snapshot — reseed the memo
        self.status, self.pending, self.crash, interp_snap = snap
        self._interpreter.restore(interp_snap)

    # -- queries -------------------------------------------------------------------

    @property
    def visible_request(self) -> VisibleRequest | None:
        if isinstance(self.pending, VisibleRequest):
            return self.pending
        return None

    @property
    def toss_request(self) -> TossRequest | None:
        if isinstance(self.pending, TossRequest):
            return self.pending
        return None

    def is_blocked_forever(self) -> bool:
        """Terminated, crashed and diverged processes never run again."""
        return self.status in (
            ProcessStatus.TERMINATED,
            ProcessStatus.CRASHED,
            ProcessStatus.DIVERGED,
        )

    def enabled(self) -> bool:
        """Whether the pending visible operation may currently execute."""
        request = self.visible_request
        if request is None:
            return False
        if request.obj is None:  # VS_assert is always enabled
            return True
        return request.obj.enabled(request.op)

    def state_fingerprint(self) -> Any:
        base: tuple[Any, ...] = (self.name, self.status.value if self.status else "new")
        if self.status in (ProcessStatus.AT_VISIBLE, ProcessStatus.NEEDS_TOSS):
            return base + (self._interpreter.state_fingerprint(),)
        return base

    def __repr__(self) -> str:
        return f"<Process {self.name!r} {self.status and self.status.value}>"
