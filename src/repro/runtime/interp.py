"""The deterministic CFG interpreter — the *reference* execution engine.

Each process executes its control-flow graphs directly (the closing
transformation produces CFGs, and executing them natively avoids any
restructuring step).  Of the two implementations of the
:class:`~repro.runtime.engine.ExecutionEngine` contract this is the
walking one (``engine="walk"``): maximally direct, handling every
construct (including pointers), and serving as the differential-testing
oracle that the compiled engine (:mod:`repro.runtime.compile`,
``engine="compiled"``) is held equivalent to — same requests, same
counters, same faults, same fingerprints.  The interpreter is an
*explicit-state stepper* that pauses at every scheduling point:

* :class:`VisibleRequest` — the process attempts a visible operation
  (a communication-object operation or ``VS_assert``); the scheduler
  decides when/whether it proceeds and passes the operation result to
  :meth:`Interpreter.resume`;
* :class:`TossRequest` — the process executes ``VS_toss(n)``; the
  scheduler resumes with the chosen value in ``[0, n]``.

Everything between two pauses is *invisible* and deterministic, matching
the paper's definition of a process transition ("one visible operation
followed by a finite sequence of invisible operations ... ending just
before a visible operation").  An invisible-step budget turns runaway
invisible loops into :class:`DivergenceError` (the paper's footnote-1
divergence report).

The stepper keeps its whole continuation as plain data — the activation
stack, the per-activation CFG positions and a pending-resumption tag —
instead of a suspended Python generator frame.  That is what makes
processes *checkpointable*: :meth:`Interpreter.snapshot` /
:meth:`Interpreter.restore` rewind the control state in O(stack depth),
and the value state is rewound by the
:class:`~repro.runtime.journal.UndoJournal` the interpreter records its
mutations into (when the run was started with journaling).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any

from ..cfg.graph import ControlFlowGraph
from ..cfg.nodes import (
    AlwaysGuard,
    BoolGuard,
    CaseGuard,
    CfgNode,
    DefaultGuard,
    NodeKind,
    TossGuard,
)
from ..lang import ast
from .errors import DivergenceError, ObjectError, RuntimeFault, TossDomainError
from .objects import CommunicationObject
from .ops import BUILTIN_OPERATIONS, CHANNEL_OPS, SEMAPHORE_OPS, SHARED_VAR_OPS
from .store import Frame
from .values import (
    TOP,
    ArrayValue,
    Cell,
    ObjectRef,
    Pointer,
    RecordValue,
    values_equal,
)


@dataclass(frozen=True, slots=True)
class VisibleRequest:
    """The process is about to perform a visible operation."""

    op: str
    obj: CommunicationObject | None  # None for VS_assert
    args: tuple[Any, ...]
    node_id: int
    proc_name: str


@dataclass(frozen=True, slots=True)
class TossRequest:
    """The process is executing ``VS_toss(bound)`` and needs a value."""

    bound: int
    node_id: int
    proc_name: str


Request = VisibleRequest | TossRequest

_ARITH_OPS = {"+", "-", "*", "/", "%"}
_ORDER_OPS = {"<", "<=", ">", ">="}

# Pending-resumption tags: what kind of request the interpreter paused
# on, i.e. how the scheduler's answer must be applied on resume.
_RESUME_TOSS_NODE = 0  # a NodeKind.TOSS node (closed-away toss branch)
_RESUME_TOSS_CALL = 1  # VS_toss as a call statement
_RESUME_VISIBLE = 2  # a visible operation


@dataclass(slots=True)
class _Activation:
    """One frame of the call stack."""

    cfg: ControlFlowGraph
    frame: Frame
    node_id: int
    # Where to store the callee's return value once this activation pops.
    result_cell: Cell | None


class Interpreter:
    """Executes one process over a family of CFGs.

    Parameters:
        cfgs: procedure name -> CFG for the whole program.
        top_proc: name of the process's top-level procedure.
        args: values bound to the top-level procedure's parameters.
        objects: the system's communication-object registry.
        divergence_budget: max invisible node executions between pauses.
        process_name: for error reporting.
        journal: an :class:`~repro.runtime.journal.UndoJournal` recording
            inverse operations for every store mutation (``None`` = no
            journaling; zero overhead beyond one ``is not None`` branch
            per mutation).
    """

    def __init__(
        self,
        cfgs: dict[str, ControlFlowGraph],
        top_proc: str,
        args: tuple[Any, ...],
        objects: dict[str, CommunicationObject],
        divergence_budget: int = 100_000,
        process_name: str = "<process>",
        max_call_depth: int = 512,
        journal: Any | None = None,
    ):
        if top_proc not in cfgs:
            raise RuntimeFault(f"unknown top-level procedure {top_proc!r}")
        top_cfg = cfgs[top_proc]
        if len(args) != len(top_cfg.params):
            raise RuntimeFault(
                f"process {process_name!r}: {top_proc} expects "
                f"{len(top_cfg.params)} arguments, got {len(args)}"
            )
        self._cfgs = cfgs
        self._objects = objects
        self._budget = divergence_budget
        self._max_call_depth = max_call_depth
        self.process_name = process_name
        self.journal = journal
        frame = Frame(top_proc, journal=journal)
        for param, value in zip(top_cfg.params, args):
            frame.declare(param, value)
        self._stack: list[_Activation] = [
            _Activation(cfg=top_cfg, frame=frame, node_id=top_cfg.start_id, result_cell=None)
        ]
        self._invisible_steps = 0
        #: The paused continuation: ``(tag, activation, node, spec)`` with
        #: ``tag`` one of the ``_RESUME_*`` constants, or ``None`` while
        #: running / after termination.  Plain data, so it snapshots.
        self._pending: tuple | None = None
        #: Node-trace buffer for coverage collection (``None`` = off).
        #: ``_advance`` appends ``(proc_name, node_id)`` for every node it
        #: dispatches; drained by :meth:`take_trace`.
        self._trace: list | None = None

    # -- public API ------------------------------------------------------------

    def start(self) -> Request | None:
        """Run the initial invisible prefix up to the first request.

        Returns the request the process paused on, or ``None`` when the
        process ran to termination without one — per the paper, a
        terminated process is permanently blocking.
        """
        return self._advance()

    def resume(self, value: Any) -> Request | None:
        """Answer the pending request with ``value`` and run on to the
        next request (or to termination, returning ``None``)."""
        tag, activation, node, spec = self._pending
        self._pending = None
        if tag == _RESUME_VISIBLE:
            self._invisible_steps = 0
            if spec.returns_value:
                self._store_result(activation, node, value)
            activation.node_id = self._follow_always(activation, node)
        elif tag == _RESUME_TOSS_NODE:
            # VS_toss is invisible: it does NOT reset the divergence
            # budget (a toss-only loop never reaches a visible op and
            # must be reported as a divergence, like in VeriSoft).
            self._invisible_steps += 1
            activation.node_id = self._branch_toss(activation, node, value)
        else:  # _RESUME_TOSS_CALL
            self._invisible_steps += 1
            self._store_result(activation, node, value)
            activation.node_id = self._follow_always(activation, node)
        if self._invisible_steps > self._budget:
            raise DivergenceError(self.process_name, self._budget)
        return self._advance()

    def _advance(self) -> Request | None:
        """Execute invisible nodes until the next pause point.

        Returns the request paused on, or ``None`` on termination.  The
        divergence-budget check runs once per executed node, exactly as
        the historical generator implementation did (entering a
        procedure defers the check by one node via ``continue``).
        """
        stack = self._stack
        trace = self._trace
        while True:
            activation = stack[-1]
            node = activation.cfg.nodes[activation.node_id]
            if trace is not None:
                # Record before executing: a faulting/diverging node is
                # still logged as visited, its out-edge is not.
                trace.append((activation.cfg.proc_name, activation.node_id))

            if node.kind is NodeKind.START:
                activation.node_id = self._follow_always(activation, node)

            elif node.kind is NodeKind.ASSIGN:
                self._exec_assign(activation, node)
                activation.node_id = self._follow_always(activation, node)
                self._invisible_steps += 1

            elif node.kind is NodeKind.COND:
                subject = self._eval(activation, node.expr)
                activation.node_id = self._branch(activation, node, subject)
                self._invisible_steps += 1

            elif node.kind is NodeKind.TOSS:
                self._pending = (_RESUME_TOSS_NODE, activation, node, None)
                return TossRequest(node.bound, node.id, activation.cfg.proc_name)

            elif node.kind is NodeKind.CALL:
                spec = BUILTIN_OPERATIONS.get(node.callee)
                if spec is None:
                    self._enter_procedure(activation, node)
                    self._invisible_steps += 1
                    continue
                if spec.nondeterministic:  # VS_toss as a call statement
                    bound = self._toss_bound(activation, node)
                    self._pending = (_RESUME_TOSS_CALL, activation, node, spec)
                    return TossRequest(bound, node.id, activation.cfg.proc_name)
                if spec.visible:
                    request = self._visible_request(activation, node, spec)
                    self._pending = (_RESUME_VISIBLE, activation, node, spec)
                    return request
                self._exec_invisible_builtin(activation, node)
                self._invisible_steps += 1
                activation.node_id = self._follow_always(activation, node)

            elif node.kind is NodeKind.RETURN:
                value = None
                if node.value is not None:
                    value = self._eval(activation, node.value)
                stack.pop()
                if not stack:
                    return None  # top-level return: the process terminates.
                caller = stack[-1]
                if activation.result_cell is not None:
                    # A value-less return feeding `x = f()` leaves x abstract:
                    # the closing transformation drops environment-dependent
                    # return values, and TOP makes any lingering use fault
                    # loudly instead of silently computing with garbage.
                    cell = activation.result_cell
                    if self.journal is not None:
                        self.journal.record_cell(cell)
                    cell.value = value if value is not None else TOP
                call_node = caller.cfg.nodes[caller.node_id]
                caller.node_id = self._follow_always(caller, call_node)
                self._invisible_steps += 1

            elif node.kind is NodeKind.EXIT:
                return None  # the process terminates wherever exit appears.

            else:
                raise RuntimeFault(f"unknown node kind {node.kind}")

            if self._invisible_steps > self._budget:
                raise DivergenceError(self.process_name, self._budget)

    # -- checkpoint / restore ----------------------------------------------------

    def snapshot(self) -> tuple:
        """Shallow control-state snapshot: the activation stack (by
        reference — activations are restored in place), the CFG position
        of every activation, the invisible-step count and the pending
        continuation.  Value state (frame cells, records, arrays) is
        *not* copied: it is rewound by the undo journal.  O(stack depth).
        """
        stack = tuple(self._stack)
        return (
            stack,
            tuple(act.node_id for act in stack),
            self._invisible_steps,
            self._pending,
        )

    def restore(self, snap: tuple) -> None:
        """Rewind control state to a :meth:`snapshot`.

        Safe to apply repeatedly from the same snapshot (nothing in the
        snapshot is mutated), and safe after a crash/divergence that
        left ``_advance`` mid-node: the stack shape, CFG positions and
        pending continuation are all overwritten wholesale.
        """
        stack, node_ids, invisible_steps, pending = snap
        self._stack[:] = stack
        for activation, node_id in zip(stack, node_ids):
            activation.node_id = node_id
        self._invisible_steps = invisible_steps
        self._pending = pending

    def state_fingerprint(self) -> Any:
        """Hashable snapshot of the whole process state (stack + stores)."""
        return tuple(
            (act.cfg.proc_name, act.node_id, act.frame.state_fingerprint())
            for act in self._stack
        )

    # -- coverage tracing ---------------------------------------------------------

    def enable_trace(self) -> None:
        """Start recording every dispatched node into the trace buffer."""
        if self._trace is None:
            self._trace = []

    def take_trace(self) -> list | tuple:
        """Drain and return the recorded ``(proc_name, node_id)`` entries.

        The buffer is handed over and replaced with a fresh list (no
        copy).  Safe because ``_advance`` re-reads ``self._trace`` on
        every entry and the engine is suspended whenever this is called.
        """
        trace = self._trace
        if not trace:
            return ()
        self._trace = []
        return trace

    def control_nodes(self) -> list:
        """The activation stack as ``(proc_name, node_id)``, outermost
        first — the coverage collector re-anchors its parser from this
        after a checkpoint restore.  Called once per process per restore,
        so it stays a single list comprehension."""
        return [(act.cfg.proc_name, act.node_id) for act in self._stack]

    # -- control flow -----------------------------------------------------------

    def _follow_always(self, activation: _Activation, node: CfgNode) -> int:
        arcs = activation.cfg.successors(node.id)
        if len(arcs) != 1 or not isinstance(arcs[0].guard, AlwaysGuard):
            raise RuntimeFault(
                f"{activation.cfg.proc_name}: node {node.id} should have a single "
                "unconditional successor"
            )
        return arcs[0].dst

    def _branch(self, activation: _Activation, node: CfgNode, subject: Any) -> int:
        arcs = activation.cfg.successors(node.id)
        if arcs and isinstance(arcs[0].guard, BoolGuard):
            taken = self._truthy(subject, node)
            for arc in arcs:
                if arc.guard.expected is taken:  # type: ignore[union-attr]
                    return arc.dst
            raise RuntimeFault(f"{activation.cfg.proc_name}: COND node {node.id} missing branch")
        # switch-style guards
        if subject is TOP:
            raise RuntimeFault(
                f"{activation.cfg.proc_name}: switch on an abstract "
                "(environment-erased) value — the program is not closed"
            )
        default = None
        for arc in arcs:
            if isinstance(arc.guard, CaseGuard):
                if values_equal(subject, arc.guard.value):
                    return arc.dst
            elif isinstance(arc.guard, DefaultGuard):
                default = arc.dst
        if default is None:
            raise RuntimeFault(f"{activation.cfg.proc_name}: switch node {node.id} has no default")
        return default

    def _branch_toss(self, activation: _Activation, node: CfgNode, value: Any) -> int:
        if not isinstance(value, int) or not (0 <= value <= node.bound):
            raise TossDomainError(
                f"scheduler sent toss value {value!r}, expected 0..{node.bound}"
            )
        for arc in activation.cfg.successors(node.id):
            if isinstance(arc.guard, TossGuard) and arc.guard.value == value:
                return arc.dst
        raise RuntimeFault(
            f"{activation.cfg.proc_name}: TOSS node {node.id} missing branch for {value}"
        )

    def _enter_procedure(self, activation: _Activation, node: CfgNode) -> None:
        callee_cfg = self._cfgs.get(node.callee)
        if callee_cfg is None:
            raise RuntimeFault(
                f"{activation.cfg.proc_name}: call to unknown procedure {node.callee!r} "
                "(environment calls must be closed away before execution)"
            )
        if len(node.args) != len(callee_cfg.params):
            raise RuntimeFault(
                f"{activation.cfg.proc_name}: {node.callee} expects "
                f"{len(callee_cfg.params)} arguments, got {len(node.args)}"
            )
        if len(self._stack) >= self._max_call_depth:
            raise RuntimeFault(
                f"{activation.cfg.proc_name}: call depth exceeded "
                f"{self._max_call_depth} (unbounded recursion?)"
            )
        frame = Frame(node.callee, journal=self.journal)
        for param, arg in zip(callee_cfg.params, node.args):
            frame.declare(param, self._eval(activation, arg))
        result_cell = None
        if node.result is not None:
            result_cell = self._lvalue_cell(activation, node.result, create=True)
        self._stack.append(
            _Activation(
                cfg=callee_cfg,
                frame=frame,
                node_id=callee_cfg.start_id,
                result_cell=result_cell,
            )
        )

    # -- builtin execution --------------------------------------------------------

    def _toss_bound(self, activation: _Activation, node: CfgNode) -> int:
        if len(node.args) != 1:
            raise TossDomainError("VS_toss takes exactly one argument")
        bound = self._eval(activation, node.args[0])
        if not isinstance(bound, int) or isinstance(bound, bool) or bound < 0:
            raise TossDomainError(f"VS_toss argument must be a non-negative int, got {bound!r}")
        return bound

    def _visible_request(
        self, activation: _Activation, node: CfgNode, spec
    ) -> VisibleRequest:
        values = tuple(self._eval(activation, arg) for arg in node.args)
        if len(values) != spec.arity:
            raise RuntimeFault(
                f"{activation.cfg.proc_name}: {spec.name} takes {spec.arity} "
                f"arguments, got {len(values)}"
            )
        obj = None
        args = values
        if spec.object_arg is not None:
            ref = values[spec.object_arg]
            obj = self._resolve_object(ref, spec.name)
            args = tuple(
                v for index, v in enumerate(values) if index != spec.object_arg
            )
        return VisibleRequest(spec.name, obj, args, node.id, activation.cfg.proc_name)

    def _resolve_object(self, ref: Any, op: str) -> CommunicationObject:
        if isinstance(ref, str):
            # Accept bare names for convenience: send('out', v).
            obj = self._objects.get(ref)
            if obj is None:
                raise ObjectError(f"unknown communication object {ref!r}")
            return self._check_kind(obj, op)
        if isinstance(ref, ObjectRef):
            obj = self._objects.get(ref.name)
            if obj is None:
                raise ObjectError(f"unknown communication object {ref.name!r}")
            return self._check_kind(obj, op)
        raise ObjectError(
            f"operation {op!r} needs a communication object, got {type(ref).__name__}"
        )

    @staticmethod
    def _check_kind(obj: CommunicationObject, op: str) -> CommunicationObject:
        if op in CHANNEL_OPS and obj.kind != "channel":
            raise ObjectError(f"{op} requires a channel, got {obj.kind} {obj.name!r}")
        if op in SEMAPHORE_OPS and obj.kind != "semaphore":
            raise ObjectError(f"{op} requires a semaphore, got {obj.kind} {obj.name!r}")
        if op in SHARED_VAR_OPS and obj.kind != "shared":
            raise ObjectError(f"{op} requires a shared variable, got {obj.kind} {obj.name!r}")
        return obj

    def _exec_invisible_builtin(self, activation: _Activation, node: CfgNode) -> None:
        name = node.callee
        if name in ("channel", "semaphore", "shared"):
            target_kind = {"channel": "channel", "semaphore": "semaphore", "shared": "shared"}[name]
            arg = self._eval(activation, node.args[0])
            if not isinstance(arg, str):
                raise ObjectError(f"{name}() takes an object name string, got {arg!r}")
            obj = self._objects.get(arg)
            if obj is None:
                raise ObjectError(f"unknown communication object {arg!r}")
            if obj.kind != target_kind:
                raise ObjectError(
                    f"{name}({arg!r}): object is a {obj.kind}, not a {target_kind}"
                )
            self._store_result(activation, node, ObjectRef(obj.kind, arg))
        elif name == "record":
            self._store_result(activation, node, RecordValue())
        else:
            raise RuntimeFault(f"unknown invisible builtin {name!r}")

    def _store_result(self, activation: _Activation, node: CfgNode, value: Any) -> None:
        if node.result is None:
            return
        cell = self._lvalue_cell(activation, node.result, create=True)
        if self.journal is not None:
            self.journal.record_cell(cell)
        cell.value = value

    # -- assignment / lvalues -----------------------------------------------------

    def _exec_assign(self, activation: _Activation, node: CfgNode) -> None:
        if node.array_size is not None:
            if not isinstance(node.target, ast.Name):
                raise RuntimeFault("array declaration target must be a simple name")
            activation.frame.declare_array(node.target.ident, node.array_size)
            return
        if isinstance(node.target, ast.Name):
            # Declarations and simple assignments create/overwrite the cell.
            value = self._eval(activation, node.value)
            activation.frame.declare(node.target.ident, value)
            return
        value = self._eval(activation, node.value)
        cell = self._lvalue_cell(activation, node.target, create=True)
        if self.journal is not None:
            self.journal.record_cell(cell)
        cell.value = value

    def _lvalue_cell(self, activation: _Activation, expr: ast.Expr, create: bool) -> Cell:
        if isinstance(expr, ast.Name):
            if create and expr.ident not in activation.frame.cells:
                return activation.frame.declare(expr.ident)
            return activation.frame.cell(expr.ident)
        if isinstance(expr, ast.Index):
            base = self._eval(activation, expr.base)
            if not isinstance(base, ArrayValue):
                raise RuntimeFault("indexing a non-array value")
            index = self._eval(activation, expr.index)
            if index is TOP:
                raise RuntimeFault("indexing with an abstract (environment-erased) value")
            if not isinstance(index, int) or isinstance(index, bool):
                raise RuntimeFault(f"array index must be an int, got {index!r}")
            if not (0 <= index < len(base)):
                raise RuntimeFault(
                    f"array index {index} out of bounds for array of length {len(base)}"
                )
            return base.cells[index]
        if isinstance(expr, ast.Field):
            base = self._eval(activation, expr.base)
            if not isinstance(base, RecordValue):
                raise RuntimeFault("field access on a non-record value")
            cell = base.cell(expr.field, create=create, journal=self.journal)
            if cell is None:
                raise RuntimeFault(f"record has no field {expr.field!r}")
            return cell
        if isinstance(expr, ast.Unary) and expr.op == "*":
            pointer = self._eval(activation, expr.operand)
            if not isinstance(pointer, Pointer):
                raise RuntimeFault("dereference of a non-pointer value")
            return pointer.cell
        raise RuntimeFault(f"invalid lvalue {type(expr).__name__}")

    # -- expression evaluation -------------------------------------------------------

    def _truthy(self, value: Any, node: CfgNode) -> bool:
        if value is TOP:
            raise RuntimeFault(
                "branching on an abstract (environment-erased) value — "
                "the program is not closed"
            )
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return value != 0
        raise RuntimeFault(f"cannot branch on value {value!r}")

    def _eval(self, activation: _Activation, expr: ast.Expr) -> Any:
        if isinstance(expr, ast.IntLit):
            return expr.value
        if isinstance(expr, ast.BoolLit):
            return expr.value
        if isinstance(expr, ast.StrLit):
            return expr.value
        if isinstance(expr, ast.AbstractLit):
            return TOP
        if isinstance(expr, ast.Name):
            return activation.frame.cell(expr.ident).value
        if isinstance(expr, ast.Unary):
            return self._eval_unary(activation, expr)
        if isinstance(expr, ast.Binary):
            return self._eval_binary(activation, expr)
        if isinstance(expr, ast.Index):
            return self._lvalue_cell(activation, expr, create=False).value
        if isinstance(expr, ast.Field):
            return self._lvalue_cell(activation, expr, create=False).value
        raise RuntimeFault(f"cannot evaluate expression {type(expr).__name__}")

    def _eval_unary(self, activation: _Activation, expr: ast.Unary) -> Any:
        if expr.op == "&":
            return Pointer(self._lvalue_cell(activation, expr.operand, create=False))
        if expr.op == "*":
            pointer = self._eval(activation, expr.operand)
            if pointer is TOP:
                return TOP
            if not isinstance(pointer, Pointer):
                raise RuntimeFault("dereference of a non-pointer value")
            return pointer.cell.value
        value = self._eval(activation, expr.operand)
        if value is TOP:
            return TOP
        if expr.op == "-":
            if isinstance(value, bool) or not isinstance(value, int):
                raise RuntimeFault(f"unary '-' on non-int value {value!r}")
            return -value
        if expr.op == "!":
            if isinstance(value, bool):
                return not value
            if isinstance(value, int):
                return value == 0
            raise RuntimeFault(f"unary '!' on value {value!r}")
        raise RuntimeFault(f"unknown unary operator {expr.op!r}")

    def _eval_binary(self, activation: _Activation, expr: ast.Binary) -> Any:
        op = expr.op
        if op in ("&&", "||"):
            left = self._eval(activation, expr.left)
            if left is TOP:
                # Abstract short-circuit: the result may depend on the
                # environment either way.
                self._eval(activation, expr.right)
                return TOP
            taken = self._truthy_value(left)
            if op == "&&" and not taken:
                return False
            if op == "||" and taken:
                return True
            right = self._eval(activation, expr.right)
            if right is TOP:
                return TOP
            return self._truthy_value(right)

        left = self._eval(activation, expr.left)
        right = self._eval(activation, expr.right)
        if op == "==":
            if left is TOP or right is TOP:
                return TOP
            return values_equal(left, right)
        if op == "!=":
            if left is TOP or right is TOP:
                return TOP
            return not values_equal(left, right)
        if left is TOP or right is TOP:
            return TOP
        if op in _ARITH_OPS:
            if not self._is_int(left) or not self._is_int(right):
                raise RuntimeFault(f"arithmetic {op!r} on non-int values {left!r}, {right!r}")
            if op == "+":
                return left + right
            if op == "-":
                return left - right
            if op == "*":
                return left * right
            if right == 0:
                raise RuntimeFault(f"division by zero in {op!r}")
            if op == "/":
                # C-style truncation toward zero.
                quotient = abs(left) // abs(right)
                return quotient if (left >= 0) == (right >= 0) else -quotient
            remainder = abs(left) % abs(right)
            return remainder if left >= 0 else -remainder
        if op in _ORDER_OPS:
            if not self._is_int(left) or not self._is_int(right):
                raise RuntimeFault(f"comparison {op!r} on non-int values {left!r}, {right!r}")
            if op == "<":
                return left < right
            if op == "<=":
                return left <= right
            if op == ">":
                return left > right
            return left >= right
        raise RuntimeFault(f"unknown binary operator {op!r}")

    @staticmethod
    def _is_int(value: Any) -> bool:
        return isinstance(value, int) and not isinstance(value, bool)

    def _truthy_value(self, value: Any) -> bool:
        if isinstance(value, bool):
            return value
        if isinstance(value, int):
            return value != 0
        raise RuntimeFault(f"cannot use value {value!r} as a boolean")
