"""Concurrent runtime substrate: processes, communication objects, stores.

This package implements the execution model of Section 2 of the paper: a
closed concurrent system is a finite set of processes executing
deterministic sequential code, communicating *only* through communication
objects (shared variables, semaphores, bounded FIFO channels) whose
operations are *visible*; everything else is invisible.  The enabledness
of every operation on a communication object depends only on the history
of operations performed on it, never on transmitted values.
"""

from .errors import (
    DivergenceError,
    ObjectError,
    ProcessCrash,
    RuntimeFault,
    TossDomainError,
)
from .journal import RunCheckpoint, UndoJournal
from .objects import CommunicationObject, EnvSink, FifoChannel, Semaphore, SharedVar
from .ops import BUILTIN_OPERATIONS, OperationSpec
from .process import Process, ProcessStatus
from .system import System, SystemConfig
from .values import AbstractValue, ObjectRef, Pointer, RecordValue, TOP

__all__ = [
    "AbstractValue",
    "BUILTIN_OPERATIONS",
    "CommunicationObject",
    "DivergenceError",
    "EnvSink",
    "FifoChannel",
    "ObjectError",
    "ObjectRef",
    "OperationSpec",
    "Pointer",
    "Process",
    "ProcessCrash",
    "ProcessStatus",
    "RecordValue",
    "RunCheckpoint",
    "RuntimeFault",
    "Semaphore",
    "SharedVar",
    "System",
    "SystemConfig",
    "TOP",
    "TossDomainError",
    "UndoJournal",
]
