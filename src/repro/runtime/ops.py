"""Built-in operations of the RC runtime.

Following the paper (and VeriSoft), operations on communication objects
are *visible* procedure calls of a specific kind; ``VS_assert`` is
visible; ``VS_toss`` is nondeterministic but treated as *invisible* (its
choice points are still controlled by the scheduler).  The remaining
built-ins are deterministic invisible helpers.

The table below is consulted by the normalizer (to accept calls to
built-ins), the CFG builder (to classify nodes), the closing algorithm
(to distinguish system calls from environment calls and to know which
argument values flow into which objects), and the interpreter.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class OperationSpec:
    """Static description of one built-in operation.

    Attributes:
        name: the spelling used in RC source.
        visible: whether executing it is a *visible operation* (a
            scheduling point observed by the VeriSoft-style scheduler).
        arity: the number of arguments the operation takes.
        object_arg: index of the argument that designates the
            communication object the operation acts on, or ``None`` for
            operations that touch no object (``VS_toss``, ``VS_assert``,
            object lookups).
        value_args: indices of arguments whose *values* are transmitted
            into the object (used by the cross-process taint analysis).
        returns_value: whether the call produces a result.
        may_block: whether the operation can be disabled in some state.
        nondeterministic: ``VS_toss`` only.
    """

    name: str
    visible: bool
    arity: int
    object_arg: int | None = None
    value_args: tuple[int, ...] = ()
    returns_value: bool = False
    may_block: bool = False
    nondeterministic: bool = False


#: name -> spec for every built-in operation.
BUILTIN_OPERATIONS: dict[str, OperationSpec] = {
    spec.name: spec
    for spec in [
        # FIFO channel operations.  ``send`` blocks when the channel is
        # full, ``recv`` blocks when it is empty — enabledness depends only
        # on the operation history (#sends - #recvs), per Section 2.
        OperationSpec(
            "send", visible=True, arity=2, object_arg=0, value_args=(1,), may_block=True
        ),
        OperationSpec(
            "recv", visible=True, arity=1, object_arg=0, returns_value=True, may_block=True
        ),
        # Non-blocking probe: the number of queued messages.  Visible
        # because it observes a communication object.
        OperationSpec("poll", visible=True, arity=1, object_arg=0, returns_value=True),
        # Counting semaphore.
        OperationSpec("sem_p", visible=True, arity=1, object_arg=0, may_block=True),
        OperationSpec("sem_v", visible=True, arity=1, object_arg=0),
        # Shared variable: always-enabled read/write.
        OperationSpec("read", visible=True, arity=1, object_arg=0, returns_value=True),
        OperationSpec("write", visible=True, arity=2, object_arg=0, value_args=(1,)),
        # Assertion checking — visible, always enabled ([God97]).
        OperationSpec("VS_assert", visible=True, arity=1),
        # Bounded nondeterminism — invisible, returns a value in [0, n].
        OperationSpec(
            "VS_toss", visible=False, arity=1, returns_value=True, nondeterministic=True
        ),
        # Object lookups: resolve a registered communication object by its
        # string name.  Deterministic, invisible.
        OperationSpec("channel", visible=False, arity=1, returns_value=True),
        OperationSpec("semaphore", visible=False, arity=1, returns_value=True),
        OperationSpec("shared", visible=False, arity=1, returns_value=True),
        # Fresh empty record value.  Deterministic, invisible.
        OperationSpec("record", visible=False, arity=0, returns_value=True),
    ]
}

#: Operations whose object argument is a FIFO channel / semaphore / shared
#: variable, respectively — used for object-kind checking.
CHANNEL_OPS = frozenset({"send", "recv", "poll"})
SEMAPHORE_OPS = frozenset({"sem_p", "sem_v"})
SHARED_VAR_OPS = frozenset({"read", "write"})

#: Operations that perform a visible action on a communication object.
OBJECT_OPS = CHANNEL_OPS | SEMAPHORE_OPS | SHARED_VAR_OPS


def is_builtin(name: str) -> bool:
    """Whether ``name`` is a built-in runtime operation."""
    return name in BUILTIN_OPERATIONS


def is_visible_op(name: str) -> bool:
    """Whether calling ``name`` is a visible (scheduling-point) operation."""
    spec = BUILTIN_OPERATIONS.get(name)
    return spec is not None and spec.visible
