"""The :class:`ExecutionEngine` seam: one stepper contract, two engines.

A :class:`~repro.runtime.process.Process` drives its sequential program
through an *execution engine* — an explicit-state stepper that pauses at
every scheduling point and exposes checkpoint/restore over its control
state.  Two implementations satisfy the contract:

* ``"walk"`` — :class:`~repro.runtime.interp.Interpreter`, the
  tree-walking reference engine.  It executes CFG nodes one at a time
  and doubles as the differential-testing oracle for every other engine.
* ``"compiled"`` — :class:`~repro.runtime.compile.CompiledEngine`, which
  pre-translates each procedure's CFG into specialized Python closures
  (one callable per basic block, threaded dispatch, slot-indexed frames)
  and executes those instead.  Programs using constructs the compiler
  does not support (pointers) fall back to the walking engine
  transparently; :attr:`repro.runtime.system.Run.engine` records which
  engine actually runs.

The contract (structural; engines need not inherit anything):

``start()``
    Run the initial invisible prefix; return the first
    :class:`~repro.runtime.interp.Request` or ``None`` on termination.
``resume(value)``
    Answer the pending request; run to the next request or termination.
``snapshot()`` / ``restore(snap)``
    O(stack depth) control-state checkpointing.  The snapshot is a
    4-tuple ``(stack, node_ids, invisible_steps, pending)`` whose first
    element is sized (``len(snap[0])`` = activation-stack depth) — the
    checkpoint accounting in :meth:`~repro.runtime.system.Run.checkpoint`
    relies on that shape.  Value state is rewound separately by the
    :class:`~repro.runtime.journal.UndoJournal` the engine records its
    mutations into.
``state_fingerprint()``
    Hashable snapshot of the whole process state (stack + stores).
    Engines MUST produce byte-identical fingerprints for identical
    executions — state caching and counter parity depend on it.
``process_name`` / ``journal``
    For error reporting and the journal hooks.
``enable_trace()`` / ``take_trace()`` / ``control_nodes()``
    Coverage tracing: once enabled, every dispatched node is appended to
    a buffer as ``(proc_name, node_id)`` (recorded *before* execution,
    so a faulting node is included and its out-edge is not);
    ``take_trace`` drains the buffer, ``control_nodes`` reports the
    activation stack so :class:`repro.obs.coverage.CoverageCollector`
    can re-anchor after a checkpoint restore.  Traces are
    instruction-identical across engines.

Both engines are *exactly equivalent*: the same request sequence, the
same counters (invisible steps, journal entries), the same faults with
the same messages, the same fingerprints.  The differential tests in
``tests/verisoft/test_engine_parity.py`` enforce this.
"""

from __future__ import annotations

from typing import Any, Protocol, runtime_checkable

from .interp import Request

#: The engine names :meth:`repro.runtime.system.System.start`,
#: :class:`repro.verisoft.search.SearchOptions` and ``repro search
#: --engine`` understand.
ENGINES = ("walk", "compiled")


@runtime_checkable
class ExecutionEngine(Protocol):
    """Structural protocol for process steppers (see module docstring)."""

    process_name: str
    journal: Any | None

    def start(self) -> Request | None: ...

    def resume(self, value: Any) -> Request | None: ...

    def snapshot(self) -> tuple: ...

    def restore(self, snap: tuple) -> None: ...

    def state_fingerprint(self) -> Any: ...

    def enable_trace(self) -> None: ...

    def take_trace(self) -> "list | tuple": ...

    def control_nodes(self) -> "list | tuple": ...


def validate_engine(name: str) -> None:
    """Raise ``ValueError`` unless ``name`` is a known engine."""
    if name not in ENGINES:
        raise ValueError(
            f"unknown execution engine {name!r}; "
            f"expected one of {', '.join(ENGINES)}"
        )
