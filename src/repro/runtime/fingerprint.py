"""Canonical state encoding + incremental per-component fingerprints.

This module owns the **canonical byte encoding** of state-fingerprint
structures (historically in :mod:`repro.statespace.snapshot`, which now
re-exports it) and builds the *incremental* layer on top of it:

* :func:`encode_canonical` — structure → canonical bytes.  Type-tagged
  and length-prefixed, so the encoding is **prefix-free**: every valid
  byte string decodes to exactly one structure.
* :func:`decode_canonical` — the exact inverse.  The frontier codec
  uses it to keep checkpoint fingerprints format-compatible with the
  structural ``repr`` wire format of earlier versions.
* :class:`RunFingerprinter` — the incremental combiner.  Each process
  and communication object carries an ``fp_version`` dirty counter
  (bumped by :meth:`Process._resume`, :meth:`Process.restore` and every
  mutating ``perform`` branch of the built-in objects); the combiner
  caches the encoded bytes of each component and re-encodes **only the
  components whose version moved** since the last key.  Because a tuple
  encodes as ``tag + length + concatenated item encodings``, the cached
  component bytes concatenate — with two fixed headers — into *exactly*
  ``encode_canonical(run.state_fingerprint())``.  State keys therefore
  cost O(changes), not O(state), while staying bit-identical to the
  full recomputation (and to every previously persisted snapshot,
  frontier checkpoint and store digest).

Restore safety: the undo journal rewinds value state *without* touching
``fp_version`` counters, so a rewind alone would leave the cache
claiming bytes for a state that no longer exists.  The combiner
therefore snapshots its ``(version, bytes)`` memo into every
:class:`~repro.runtime.journal.RunCheckpoint` and reinstalls it — memo
*and* the components' ``fp_version`` counters, atomically — on
:meth:`restore`.  Within one restore epoch versions only move forward
on mutation, so ``version == memoised version`` implies the component
is untouched; across restores the memo is reset together with the
counters, so stale pairs can never survive a rewind.

The incremental path is **disabled** (``Run.state_key`` falls back to
full recomputation, still computed once per state) when the program
creates pointers: ``copy_value`` transmits pointers by reference, so a
``*p = v`` in one process can silently change *another* process's
fingerprint without bumping its version.  Pointer-free programs — which
includes everything the compiled engine accepts — have no cross-process
aliasing, making per-component dirty tracking sound.
"""

from __future__ import annotations

import struct
from typing import TYPE_CHECKING, Any

if TYPE_CHECKING:  # pragma: no cover
    from .objects import CommunicationObject
    from .process import Process

#: Type tags of the canonical encoding.  One byte each; every composite
#: is length-prefixed, so the encoding is prefix-free and unambiguous.
_TAG_NONE = b"N"
_TAG_TRUE = b"T"
_TAG_FALSE = b"F"
_TAG_INT = b"i"
_TAG_STR = b"s"
_TAG_TUPLE = b"("

_LEN = struct.Struct(">I")
_pack_len = _LEN.pack
_unpack_len_from = _LEN.unpack_from

# Interning caches: fingerprint structures repeat the same atoms
# (process names, status strings, procedure names, small counters) in
# nearly every state, so their encodings are kept as stable bytes and
# reused across states.  Bounded so pathological value streams cannot
# grow them without limit.
_STR_CACHE: dict[str, bytes] = {}
_INT_CACHE: dict[int, bytes] = {}
_CACHE_LIMIT = 16384


def _encode_str(value: str) -> bytes:
    enc = _STR_CACHE.get(value)
    if enc is None:
        payload = value.encode("utf-8")
        enc = _TAG_STR + _pack_len(len(payload)) + payload
        if len(_STR_CACHE) < _CACHE_LIMIT:
            _STR_CACHE[value] = enc
    return enc


def _encode_int(value: int) -> bytes:
    enc = _INT_CACHE.get(value)
    if enc is None:
        payload = b"%d" % value
        enc = _TAG_INT + _pack_len(len(payload)) + payload
        if len(_INT_CACHE) < _CACHE_LIMIT:
            _INT_CACHE[value] = enc
    return enc


# Whole-component interning: processes and objects cycle through a
# bounded set of local states during a search, so the (structure →
# canonical bytes) mapping — a pure function, never invalidated — turns
# most dirty-component re-encodes into one tuple hash + dict hit
# instead of a recursive serialization.
_COMPONENT_CACHE: dict[Any, bytes] = {}
_COMPONENT_LIMIT = 65536


def _component_bytes(fp: Any) -> bytes:
    enc = _COMPONENT_CACHE.get(fp)
    if enc is None:
        enc = encode_canonical(fp)
        if len(_COMPONENT_CACHE) < _COMPONENT_LIMIT:
            _COMPONENT_CACHE[fp] = enc
    return enc


def _encode_into(value: Any, out: list[bytes]) -> None:
    # bool must be tested before int (bool is an int subclass) so that
    # True and 1 — distinct runtime values — stay distinct states.
    if value is None:
        out.append(_TAG_NONE)
    elif value is True:
        out.append(_TAG_TRUE)
    elif value is False:
        out.append(_TAG_FALSE)
    elif type(value) is int:
        out.append(_encode_int(value))
    elif type(value) is str:
        out.append(_encode_str(value))
    elif type(value) is tuple:
        out.append(_TAG_TUPLE)
        out.append(_pack_len(len(value)))
        for item in value:
            _encode_into(item, out)
    # Exact-type dispatch above covers every value the fingerprint layer
    # produces; subclasses of int/str/tuple funnel through here so the
    # historic semantics (and error message) are preserved.
    elif isinstance(value, bool):
        out.append(_TAG_TRUE if value else _TAG_FALSE)
    elif isinstance(value, int):
        payload = b"%d" % value
        out.append(_TAG_INT)
        out.append(_pack_len(len(payload)))
        out.append(payload)
    elif isinstance(value, str):
        payload = value.encode("utf-8")
        out.append(_TAG_STR)
        out.append(_pack_len(len(payload)))
        out.append(payload)
    elif isinstance(value, tuple):
        out.append(_TAG_TUPLE)
        out.append(_pack_len(len(value)))
        for item in value:
            _encode_into(item, out)
    else:
        raise TypeError(
            f"cannot canonically encode value of type {type(value).__name__}; "
            "state fingerprints are built from None/bool/int/str/tuple only"
        )


def encode_canonical(value: Any) -> bytes:
    """Serialize a state-fingerprint structure to canonical bytes.

    Injective over the fingerprint value domain (``None``, ``bool``,
    ``int``, ``str`` and nested tuples thereof): distinct structures
    always yield distinct byte strings, equal structures always yield
    equal byte strings.
    """
    out: list[bytes] = []
    _encode_into(value, out)
    return b"".join(out)


def _decode_from(data: bytes, pos: int) -> tuple[Any, int]:
    tag = data[pos : pos + 1]
    if tag == _TAG_NONE:
        return None, pos + 1
    if tag == _TAG_TRUE:
        return True, pos + 1
    if tag == _TAG_FALSE:
        return False, pos + 1
    if tag == _TAG_INT:
        length = _unpack_len_from(data, pos + 1)[0]
        start = pos + 5
        return int(data[start : start + length]), start + length
    if tag == _TAG_STR:
        length = _unpack_len_from(data, pos + 1)[0]
        start = pos + 5
        return data[start : start + length].decode("utf-8"), start + length
    if tag == _TAG_TUPLE:
        count = _unpack_len_from(data, pos + 1)[0]
        pos += 5
        items = []
        for _ in range(count):
            item, pos = _decode_from(data, pos)
            items.append(item)
        return tuple(items), pos
    raise ValueError(f"invalid canonical encoding: unknown tag {tag!r} at offset {pos}")


def decode_canonical(data: bytes) -> Any:
    """Decode canonical bytes back into the fingerprint structure.

    Exact inverse of :func:`encode_canonical` (the encoding is
    prefix-free): ``decode_canonical(encode_canonical(v)) == v`` for
    every fingerprint value.  Raises :class:`ValueError` on malformed
    or trailing bytes.
    """
    value, end = _decode_from(data, 0)
    if end != len(data):
        raise ValueError(
            f"invalid canonical encoding: {len(data) - end} trailing bytes"
        )
    return value


class RunFingerprinter:
    """Incremental canonical state keys for one run.

    Attached by :meth:`System.start` when the program is pointer-free
    (see the module docstring for why).  :meth:`key` returns bytes
    bit-identical to ``encode_canonical(run.state_fingerprint())``; the
    memo participates in checkpoint/restore via :meth:`snapshot` /
    :meth:`restore`.
    """

    __slots__ = (
        "_procs", "_objs", "_head", "_mid",
        "_pver", "_pbytes", "_over", "_obytes", "_active",
    )

    def __init__(self, processes: list["Process"], objects: list["CommunicationObject"]):
        self._procs = list(processes)
        self._objs = list(objects)
        # encode_canonical((proc_fps, obj_fps)) == outer 2-tuple header,
        # then the process-tuple header + component encodings, then the
        # object-tuple header + component encodings.
        self._head = _TAG_TUPLE + _pack_len(2) + _TAG_TUPLE + _pack_len(len(self._procs))
        self._mid = _TAG_TUPLE + _pack_len(len(self._objs))
        self._pver: list[int] = [-1] * len(self._procs)
        self._pbytes: list[bytes | None] = [None] * len(self._procs)
        self._over: list[int] = [-1] * len(self._objs)
        self._obytes: list[bytes | None] = [None] * len(self._objs)
        #: Whether :meth:`key` has ever run.  Until then the memo holds
        #: nothing worth checkpointing, so :meth:`snapshot` is free.
        self._active = False

    def key(self) -> bytes:
        """The canonical global-state key, re-encoding dirty components only."""
        self._active = True
        parts = [self._head]
        pver, pbytes = self._pver, self._pbytes
        for index, process in enumerate(self._procs):
            version = process.fp_version
            encoded = pbytes[index]
            if encoded is None or version != pver[index]:
                encoded = _component_bytes(process.state_fingerprint())
                pbytes[index] = encoded
                pver[index] = version
            parts.append(encoded)
        parts.append(self._mid)
        over, obytes = self._over, self._obytes
        for index, obj in enumerate(self._objs):
            version = obj.fp_version
            encoded = obytes[index]
            if encoded is None or version != over[index]:
                encoded = _component_bytes(obj.state_fingerprint())
                obytes[index] = encoded
                over[index] = version
            parts.append(encoded)
        return b"".join(parts)

    def invalidate(self) -> None:
        """Drop every cached component (next :meth:`key` re-encodes all)."""
        if not self._active:
            return  # nothing was ever cached
        self._pbytes = [None] * len(self._procs)
        self._obytes = [None] * len(self._objs)

    # -- checkpoint / restore -----------------------------------------------------

    def snapshot(self) -> tuple | None:
        """The memo state, captured into a :class:`RunCheckpoint`.

        Captures each component's **live** version (so restore can pin
        the counters to the state being checkpointed) and keeps a memo
        entry only when it is current — a memo older than the component
        it describes must not survive into the restored epoch, or the
        restore would revalidate bytes of a different state.

        Until the first :meth:`key` call the memo is empty and there is
        nothing to pin: ``None`` is returned (and accepted back by
        :meth:`Run.restore` as "drop any cached bytes"), keeping
        checkpoints free for searches that never ask for state keys.
        """
        if not self._active:
            return None
        pver = tuple(process.fp_version for process in self._procs)
        over = tuple(obj.fp_version for obj in self._objs)
        mem_pver, mem_pbytes = self._pver, self._pbytes
        mem_over, mem_obytes = self._over, self._obytes
        return (
            pver,
            tuple(
                mem_pbytes[i] if mem_pver[i] == pver[i] else None
                for i in range(len(pver))
            ),
            over,
            tuple(
                mem_obytes[i] if mem_over[i] == over[i] else None
                for i in range(len(over))
            ),
        )

    def restore(self, snap: tuple) -> None:
        """Reinstall a memo snapshot after a journal rewind.

        Must run *after* the journal rewind and process restores of
        :meth:`Run.restore`: resets every component's ``fp_version`` to
        the version it had when the checkpoint was taken and reinstalls
        the memo captured at the same instant, atomically, so cached
        bytes and live state agree again.  Components whose bytes were
        not current at checkpoint time carry a ``None`` memo and simply
        re-encode on demand.
        """
        pver, pbytes, over, obytes = snap
        self._pver = list(pver)
        self._pbytes = list(pbytes)
        self._over = list(over)
        self._obytes = list(obytes)
        for process, version in zip(self._procs, pver):
            process.fp_version = version
        for obj, version in zip(self._objs, over):
            obj.fp_version = version
