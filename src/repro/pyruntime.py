"""The runtime vocabulary of verifiable Python programs — executable stub.

Programs consumed by the Python front end (:mod:`repro.lang.python`)
are real Python: thread-style workers communicating over bounded
queues, importing their primitives from this module.  The front end
never *imports* a checked program — it lifts the source text — so this
module's job is to make the same file honestly **runnable** as plain
Python (``python examples/py_worker_pool.py``), with the documented
stub semantics:

* :class:`Queue` — a bounded FIFO channel.  ``put`` blocks when full,
  ``get`` blocks when empty.  The front end maps ``put``/``get`` to the
  RC channel operations ``send``/``recv``.
* :func:`spawn` — launch a worker thread running ``fn(*args)``.  Each
  ``spawn(...)`` at module level becomes one process of the verified
  system.
* :data:`env` — the **open interface**.  ``env.anything(...)`` is an
  environment procedure: a value the program's surroundings provide.
  The front end lifts each distinct ``env.<name>`` to an RC
  ``extern proc`` declaration, exactly the surface the closing
  transformation replaces with nondeterministic ``VS_toss`` choices.
  The stub returns ``0`` (bind a callable with :meth:`_Env.bind` to
  experiment with specific environments by hand).
* :func:`log` — emit a value to the environment (an always-enabled
  env-sink ``send``); the stub prints it.
* :func:`toss` — explicit nondeterminism, lifted to ``VS_toss(n)``;
  the stub deterministically returns ``0``.
* :func:`join_all` — wait for every spawned worker and re-raise the
  first failure (handy for tests; not part of the lifted vocabulary).

A program whose assertions hold under the stub environment can still be
wrong under an adversarial one — finding that environment is the whole
point of ``repro close`` / ``repro search``.
"""

from __future__ import annotations

import queue as _queue
import threading as _threading

__all__ = ["Queue", "env", "join_all", "log", "spawn", "toss"]


class Queue:
    """A bounded FIFO channel (the RC ``channel`` object).

    ``capacity`` is the channel bound (default 1, like RC channels).
    """

    def __init__(self, capacity: int = 1):
        if not isinstance(capacity, int) or isinstance(capacity, bool) or capacity < 1:
            raise ValueError(f"Queue capacity must be a positive int, got {capacity!r}")
        self.capacity = capacity
        self._queue: _queue.Queue = _queue.Queue(maxsize=capacity)

    def put(self, value) -> None:
        """Append ``value``; blocks while the queue is full (RC ``send``)."""
        self._queue.put(value)

    def get(self):
        """Pop the oldest value; blocks while empty (RC ``recv``)."""
        return self._queue.get()


class _Env:
    """``env.<name>(...)`` — calls into the environment.

    Every attribute is an environment procedure.  The stub returns 0
    unless a callable was bound for the name with :meth:`bind`.
    """

    def __init__(self):
        self._bindings: dict[str, object] = {}

    def bind(self, name: str, fn) -> None:
        """Make ``env.<name>(...)`` call ``fn`` instead of returning 0."""
        self._bindings[name] = fn

    def __getattr__(self, name: str):
        if name.startswith("_"):
            raise AttributeError(name)
        bound = self._bindings.get(name)
        if bound is not None:
            return bound
        return lambda *args: 0


#: The process's environment: the open interface of the program.
env = _Env()

_threads: list[_threading.Thread] = []
_failures: list[BaseException] = []


def spawn(fn, *args) -> _threading.Thread:
    """Start a worker thread running ``fn(*args)`` (one system process).

    Threads are non-daemon, so a directly-executed program waits for
    its workers before exiting.  Failures are recorded and re-raised by
    :func:`join_all`.
    """

    def run():
        try:
            fn(*args)
        except BaseException as exc:  # noqa: BLE001 - recorded for join_all
            _failures.append(exc)
            raise

    thread = _threading.Thread(target=run, name=f"pyruntime-{fn.__name__}")
    _threads.append(thread)
    thread.start()
    return thread


def log(value) -> None:
    """Emit ``value`` to the environment (an env-sink ``send``)."""
    print(f"[log] {value}")


def toss(bound: int) -> int:
    """Nondeterministic choice in ``0..bound`` (RC ``VS_toss``).

    The verifier explores every value; the stub deterministically
    returns 0.
    """
    if not isinstance(bound, int) or isinstance(bound, bool) or bound < 0:
        raise ValueError(f"toss bound must be a non-negative int, got {bound!r}")
    return 0


def join_all(timeout: float | None = None) -> None:
    """Join every spawned worker; re-raise the first recorded failure."""
    for thread in list(_threads):
        thread.join(timeout)
    _threads.clear()
    if _failures:
        failure = _failures[0]
        _failures.clear()
        raise failure
