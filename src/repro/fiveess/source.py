"""RC source generators for the call-processing application.

Each function emits one process family; :func:`generate_source` splices
them into a complete open program parameterized by the number of
subscriber lines.  Channel names are static (``setup_0``, ``resp_1``,
...) with small dispatch procedures switching over line ids, mirroring
how switch software indexes per-line data structures.
"""

from __future__ import annotations


def _dispatch_send(name: str, channel_prefix: str, n: int, payload: str) -> str:
    """A procedure that sends ``payload`` on ``<prefix>_<target>``."""
    cases = "\n".join(
        f"    case {i}:\n        send({channel_prefix}_{i}, {payload});"
        for i in range(n)
    )
    return f"""
proc {name}(target, {payload}) {{
    switch (target) {{
{cases}
    default:
        send({channel_prefix}_0, {payload});
    }}
}}
"""


def _provision_cases(n: int) -> str:
    """Arms line i to forward to line (i+1) mod n."""
    return "\n".join(
        f"""        case {i}:
            write(fwd_{i}, {(i + 1) % n});"""
        for i in range(n)
    )


def _dispatch_recv(name: str, channel_prefix: str, n: int) -> str:
    """A procedure that receives from ``<prefix>_<index>``."""
    cases = "\n".join(
        f"""    case {i}:
        m = recv({channel_prefix}_{i});"""
        for i in range(n)
    )
    return f"""
proc {name}(index) {{
    var m;
    switch (index) {{
{cases}
    default:
        m = recv({channel_prefix}_0);
    }}
    return m;
}}
"""


def generate_source(
    n_lines: int = 2,
    calls_per_line: int = 1,
    seed_billing_bug: bool = True,
) -> str:
    """The complete open RC program for ``n_lines`` subscriber lines.

    ``seed_billing_bug`` controls whether the billing daemon asserts the
    (wrong under concurrency) invariant "at most one call is ever
    active"; with it off, the daemon asserts the correct trunk bound.
    """
    if n_lines < 1:
        raise ValueError("need at least one line")

    billing_limit = 1 if seed_billing_bug else n_lines

    parts: list[str] = []
    parts.append(
        """
// ---- open interface: the rest of the 5ESS switch --------------------
extern proc next_subscriber_event();   // hook state changes, huge domain
extern proc answer_decision();         // callee behaviour
extern proc radio_measurement();       // signal reports, 32-bit
extern proc maintenance_code();        // maintenance opcodes
"""
    )

    parts.append(
        f"""
// ---- manual stub (paper Section 6: a small number of inputs the ----
// ---- developers want to control are modelled by hand) --------------
proc collect_digits() {{
    var t;
    t = VS_toss({n_lines - 1});
    return t;
}}
"""
    )

    parts.append(_dispatch_send("route_setup", "setup", n_lines, "orig"))
    parts.append(_dispatch_send("route_resp", "resp", n_lines, "code"))
    parts.append(_dispatch_send("route_teardown", "teardown", n_lines, "orig"))
    parts.append(_dispatch_recv("await_resp", "resp", n_lines))

    # Per-line call-forwarding registers, read via a dispatcher.
    fwd_cases = "\n".join(
        f"""    case {i}:
        t = read(fwd_{i});"""
        for i in range(n_lines)
    )
    parts.append(
        f"""
// ---- call forwarding -----------------------------------------------
proc read_forward(line_id) {{
    var t;
    switch (line_id) {{
{fwd_cases}
    default:
        t = read(fwd_0);
    }}
    return t;
}}

// The provisioning daemon arms forwarding according to a feature code
// from the switch administration interface (environment): the *choice*
// is environment-controlled, the forwarding data itself is constant.
proc provisioning_daemon(line_id) {{
    var code;
    code = maintenance_code();
    if (code % 4 == 1) {{
        switch (line_id) {{
{_provision_cases(n_lines)}
        default:
            skip;
        }}
    }}
    send(status, 'provisioned');
}}
"""
    )

    parts.append(
        """
// ---- originating side -----------------------------------------------
proc originate(line_id, target) {
    sem_p(trunks);
    var call = record();
    call.orig = line_id;
    call.target = target;
    // Setup payload encodes (originating line, forwarding hop count).
    route_setup(target, line_id * 2);
    var resp;
    resp = await_resp(line_id);
    if (resp == 1) {
        send(billing, 'answer');
        route_teardown(target, line_id);
        send(billing, 'release');
    } else {
        send(billing, 'abandon');
    }
    sem_v(trunks);
}

proc line_handler(line_id, attempts) {
    var k = 0;
    while (k < attempts) {
        var ev;
        ev = next_subscriber_event();
        if (ev % 4 == 0) {
            send(billing, 'abandon');
        } else {
            var target;
            target = collect_digits();
            originate(line_id, target);
        }
        k = k + 1;
    }
    send(status, 'line-done');
}
"""
    )

    term_loop = """
// ---- terminating side (one handler per line) --------------------------
proc term_handler(line_id) {
    while (true) {
        var m;
        m = await_setup(line_id);
        var orig = m / 2;
        var hop = m % 2;
        var fwd;
        fwd = read_forward(line_id);
        if (hop == 0 && fwd >= 0) {
            // Call forwarding: hand the setup to the forwarded-to line,
            // marking the hop so forwarding chains cannot loop.
            route_setup(fwd, orig * 2 + 1);
        } else {
            var busy;
            busy = read(line_busy);
            var ans;
            ans = answer_decision();
            if (busy == 1) {
                route_resp(orig, 0);
            } else {
                if (ans % 2 == 1) {
                    write(line_busy, 1);
                    route_resp(orig, 1);
                    var t;
                    t = await_teardown(line_id);
                    write(line_busy, 0);
                } else {
                    route_resp(orig, 0);
                }
            }
        }
    }
}
"""
    parts.append(_dispatch_recv("await_setup", "setup", n_lines))
    parts.append(_dispatch_recv("await_teardown", "teardown", n_lines))
    parts.append(term_loop)

    parts.append(
        f"""
// ---- billing ----------------------------------------------------------
// The billing engineer believed calls were serialized; under real
// concurrency `active` can reach the trunk limit, violating the seeded
// invariant (active <= {billing_limit}).
proc billing_daemon() {{
    var active = 0;
    while (true) {{
        var m;
        m = recv(billing);
        if (m == 'answer') {{
            active = active + 1;
        }}
        if (m == 'release') {{
            active = active - 1;
        }}
        VS_assert(active >= 0);
        VS_assert(active <= {billing_limit});
    }}
}}
"""
    )

    parts.append(
        """
// ---- mobility: registration and handover ------------------------------
proc registration_server() {
    while (true) {
        var msg;
        msg = recv(reg);
        write(location, msg);
    }
}

proc mobile_station(station_id) {
    var m;
    m = radio_measurement();
    send(reg, m % 8);
    send(status, 'mobile-done');
}

proc handover_manager(first_cell, second_cell) {
    var m;
    m = radio_measurement();
    if (m % 2 == 1) {
        sem_p(first_cell);
        sem_p(second_cell);
        send(status, 'handover');
        sem_v(second_cell);
        sem_v(first_cell);
    } else {
        send(status, 'no-handover');
    }
}
"""
    )

    parts.append(
        """
// ---- maintenance and audit --------------------------------------------
proc maintenance_daemon() {
    var code;
    code = maintenance_code();
    var severity = code % 16;
    if (severity == 3) {
        write(alarm, 1);
    } else {
        write(alarm, 0);
    }
    send(status, 'maintenance-done');
}

proc audit_daemon() {
    var loc;
    loc = read(location);
    // `location` holds values derived from radio measurements, so it is
    // environment-tainted: this check is *not preserved* by the closing
    // transformation (its subject is erased) — the paper's
    // preserved-assertion distinction.
    VS_assert(loc >= 0);
    var a;
    a = read(alarm);
    // `alarm` is only ever written the constants 0/1 (the *choice* is
    // environment-dependent but the data is not), so this assertion IS
    // preserved, as is the line_busy check below.
    VS_assert(a == 0 || a == 1);
    var b;
    b = read(line_busy);
    VS_assert(b == 0 || b == 1);
    send(status, 'audit-done');
}
"""
    )
    return "\n".join(parts)
