"""Assembly of the call-processing application into runnable systems."""

from __future__ import annotations

from dataclasses import dataclass

from ..closing import ClosedProgram, ClosingSpec, close_program
from ..runtime import System, SystemConfig
from .source import generate_source


@dataclass
class CallProcessingApp:
    """The open application plus everything needed to close and run it."""

    n_lines: int
    calls_per_line: int
    seed_deadlock: bool
    seed_billing_bug: bool
    source: str
    spec: ClosingSpec

    #: Process families instantiated by :meth:`make_system` (for reports).
    SERVER_PROCESSES = ("term", "billing", "registration")

    def close(self) -> ClosedProgram:
        """Run the paper's transformation over the whole application."""
        return close_program(self.source, self.spec)

    def make_system(
        self,
        closed: ClosedProgram | None = None,
        with_mobility: bool = True,
        with_maintenance: bool = True,
        with_forwarding: bool = False,
        config: SystemConfig | None = None,
    ) -> System:
        """Build the closed, runnable multi-process system.

        When ``closed`` is omitted the app is closed on the fly.  The
        returned system contains, for ``n_lines = N``:

        * N line handlers and N terminating handlers,
        * the billing daemon and (optionally) registration server, two
          mobile stations, two handover managers, the maintenance and
          audit daemons,
        * channels ``setup_i`` / ``resp_i`` / ``teardown_i`` per line,
          ``billing``, ``reg``; semaphores ``trunks``, ``cell_a``,
          ``cell_b``; shared variables ``line_busy``, ``location``,
          ``alarm``; and the ``status`` sink.
        """
        if closed is None:
            closed = self.close()
        system = System(closed.cfgs, config=config)
        n = self.n_lines
        for i in range(n):
            system.add_channel(f"setup_{i}", capacity=max(1, n))
            system.add_channel(f"resp_{i}", capacity=1)
            system.add_channel(f"teardown_{i}", capacity=1)
        system.add_channel("billing", capacity=2 * n)
        system.add_channel("reg", capacity=2)
        system.add_semaphore("trunks", initial=max(1, n))
        cell_a = system.add_semaphore("cell_a", initial=1)
        cell_b = system.add_semaphore("cell_b", initial=1)
        system.add_shared("line_busy", initial=0)
        system.add_shared("location", initial=0)
        system.add_shared("alarm", initial=0)
        for i in range(n):
            # -1 = forwarding disarmed; provisioning arms it.
            system.add_shared(f"fwd_{i}", initial=-1)
        system.add_env_sink("status")

        def args_for(proc: str, args: list) -> list:
            """Drop launch arguments whose parameter Step 5 removed."""
            removed = closed.removed_params.get(proc, ())
            original = self._original_params(proc)
            return [a for p, a in zip(original, args) if p not in removed]

        for i in range(n):
            system.add_process(
                f"line_{i}", "line_handler", args_for("line_handler", [i, self.calls_per_line])
            )
            system.add_process(f"term_{i}", "term_handler", args_for("term_handler", [i]))
        system.add_process("billing", "billing_daemon", args_for("billing_daemon", []))
        if with_mobility:
            system.add_process(
                "registration", "registration_server", args_for("registration_server", [])
            )
            system.add_process("mobile_0", "mobile_station", args_for("mobile_station", [0]))
            system.add_process("mobile_1", "mobile_station", args_for("mobile_station", [1]))
            if self.seed_deadlock:
                first, second = (cell_a, cell_b), (cell_b, cell_a)
            else:
                first, second = (cell_a, cell_b), (cell_a, cell_b)
            system.add_process(
                "handover_0", "handover_manager", args_for("handover_manager", list(first))
            )
            system.add_process(
                "handover_1", "handover_manager", args_for("handover_manager", list(second))
            )
        if with_maintenance:
            system.add_process("maintenance", "maintenance_daemon", args_for("maintenance_daemon", []))
            system.add_process("audit", "audit_daemon", args_for("audit_daemon", []))
        if with_forwarding:
            for i in range(n):
                system.add_process(
                    f"provisioning_{i}",
                    "provisioning_daemon",
                    args_for("provisioning_daemon", [i]),
                )
        return system

    def _original_params(self, proc: str) -> tuple[str, ...]:
        from ..lang import parse_program

        if not hasattr(self, "_param_cache"):
            program = parse_program(self.source)
            object.__setattr__(
                self,
                "_param_cache",
                {name: p.params for name, p in program.procs.items()},
            )
        return self._param_cache[proc]

    @staticmethod
    def classify_deadlock(blocked: tuple[str, ...]) -> str:
        """Distinguish the seeded lock-order deadlock from quiescence.

        A reactive system that has consumed all its work blocks every
        server on its input channel — by the paper's definition that is a
        deadlock, but an expected one.  The *seeded* defect shows up as a
        handover manager stuck holding one cell semaphore.
        """
        if any(name.startswith("handover") for name in blocked):
            return "seeded-lock-order"
        return "quiescence"

    @classmethod
    def classify_event(cls, event) -> str:
        """Classify a :class:`~repro.verisoft.results.DeadlockEvent`.

        Like :meth:`classify_deadlock`, but the per-process waiting
        details additionally expose the *forwarding feature interaction*:
        a terminating handler stuck waiting for a teardown that was
        routed to the originally-dialled line instead of the
        forwarded-to line that answered the call.
        """
        base = cls.classify_deadlock(event.blocked)
        if base != "quiescence":
            return base
        for name, op, obj in event.waiting:
            if (
                name.startswith("term")
                and op == "recv"
                and obj is not None
                and obj.startswith("teardown")
            ):
                return "forwarding-teardown-leak"
        return base


def build_app(
    n_lines: int = 2,
    calls_per_line: int = 1,
    seed_deadlock: bool = True,
    seed_billing_bug: bool = True,
) -> CallProcessingApp:
    """Create the open call-processing application.

    The open interface (everything the environment provides):

    * ``next_subscriber_event()`` — hook state changes;
    * ``answer_decision()`` — callee behaviour;
    * ``radio_measurement()`` — 32-bit signal reports;
    * ``maintenance_code()`` — maintenance opcodes.

    ``collect_digits`` is the one manually-stubbed input (a bounded
    ``VS_toss`` over the dial plan), following the paper's methodology.
    """
    source = generate_source(
        n_lines=n_lines,
        calls_per_line=calls_per_line,
        seed_billing_bug=seed_billing_bug,
    )
    return _make_app(n_lines, calls_per_line, seed_deadlock, seed_billing_bug, source)


def demo_system():
    """A small closed call-processing system, as a zero-argument factory.

    One line, one call, both seeded defects — the counterexample
    engine's stock target: ``repro replay trace.json --module
    repro.fiveess.app:demo_system`` rebuilds exactly this system, so a
    trace captured on it can be replayed or shrunk without carrying the
    system description along.
    """
    return build_app(n_lines=1, calls_per_line=1).make_system(with_maintenance=False)


def _make_app(n_lines, calls_per_line, seed_deadlock, seed_billing_bug, source):
    """Assemble the :class:`CallProcessingApp` record for ``source``."""
    object_bindings = {
        ("handover_manager", "first_cell"): frozenset({"cell_a", "cell_b"}),
        ("handover_manager", "second_cell"): frozenset({"cell_a", "cell_b"}),
    }
    spec = ClosingSpec.make(object_bindings=object_bindings)
    return CallProcessingApp(
        n_lines=n_lines,
        calls_per_line=calls_per_line,
        seed_deadlock=seed_deadlock,
        seed_billing_bug=seed_billing_bug,
        source=source,
        spec=spec,
    )
