"""A synthetic multi-process telephone call-processing application.

Stands in for the Lucent 5ESS wireless call-processing case study of
Section 6 of the paper (the original is proprietary and millions of
lines).  The app preserves the structural properties that made the case
study meaningful:

* many families of concurrent reactive processes (line handling,
  originating/terminating call control, registration/mobility, handover,
  billing, maintenance, audit) communicating through FIFO channels,
  semaphores and shared variables;
* a wide open interface to "the rest of the switch": subscriber events,
  answering decisions, radio measurements and maintenance opcodes arrive
  from the environment with huge value domains;
* a *manual stub* for one input the developers want to control precisely
  (digit collection is stubbed with a bounded ``VS_toss``, exactly the
  paper's "we manually developed software stubs for ... basic external
  events we wanted to control"), while everything else is closed
  automatically;
* seeded concurrency defects for the explorer to find: a lock-ordering
  deadlock between handover managers, a billing invariant violated by
  concurrent calls, and — with the call-forwarding feature enabled — a
  feature-interaction bug where the teardown message is routed to the
  originally dialled line rather than the forwarded-to line that
  answered, leaving that handler (and the line-busy flag) stuck.
"""

from .app import CallProcessingApp, build_app

__all__ = ["CallProcessingApp", "build_app"]
