"""Structured run manifests: every exploration is reconstructable.

A saved trace answers "what went wrong"; the manifest answers "what ran
at all" — the exact options, the system fingerprint, the code version,
the host, the phase timings and the final telemetry, written as
``run.json`` next to whatever artifacts the run produced (saved traces,
Chrome trace exports).  Two runs whose manifests agree on
``options``/``fingerprint``/``git`` are replays of each other; two that
do not explain *why* their numbers differ.

Everything here degrades gracefully: no git checkout, no problem (the
``git`` block is ``None``); the manifest never fails a run.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import socket
import subprocess
import sys
from typing import Any

#: Schema version of the manifest file.
MANIFEST_VERSION = 1

#: Default file name, written next to run artifacts.
MANIFEST_NAME = "run.json"


def git_info(cwd: str | pathlib.Path | None = None) -> dict[str, str] | None:
    """``git describe`` + commit hash of the working tree (``None``
    when not in a git checkout, or git is unavailable)."""
    def run(*args: str) -> str | None:
        try:
            proc = subprocess.run(
                ["git", *args],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=5,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout.strip()

    commit = run("rev-parse", "HEAD")
    if not commit:
        return None
    info: dict[str, str] = {"commit": commit}
    describe = run("describe", "--always", "--dirty")
    if describe:
        info["describe"] = describe
    return info


def host_info() -> dict[str, Any]:
    """A fingerprint of the machine the run executed on."""
    import os

    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def build_manifest(
    *,
    argv: list[str] | None = None,
    options: Any = None,
    report: Any = None,
    system: Any = None,
    phases: dict[str, float] | None = None,
    artifacts: list[str] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the ``run.json`` dictionary.

    Arguments (all optional — the manifest records what it is given):

    * ``argv`` — the command line that launched the run;
    * ``options`` — a :class:`~repro.verisoft.search.SearchOptions`
      (serialized via its ``as_dict``);
    * ``report`` — the final
      :class:`~repro.verisoft.results.ExplorationReport` (summary line,
      stats, triage group count, profile when collected);
    * ``system`` — the explored :class:`~repro.runtime.System` (its
      structural fingerprint is recorded);
    * ``phases`` — phase-name → seconds (see
      :meth:`repro.obs.tracer.Tracer.phase_timings`);
    * ``artifacts`` — paths of files the run wrote (trace JSONs, saved
      counterexample traces);
    * ``extra`` — any additional JSON-serializable block.
    """
    from .. import __version__

    manifest: dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "tool": {"name": "repro", "version": __version__},
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "argv": list(argv) if argv is not None else list(sys.argv),
        "host": host_info(),
        "git": git_info(),
    }
    if options is not None:
        manifest["options"] = options.as_dict()
    if system is not None:
        try:
            manifest["system_fingerprint"] = system.fingerprint()
        except Exception:  # fingerprinting must never sink a run
            manifest["system_fingerprint"] = None
    if report is not None:
        block: dict[str, Any] = {
            "summary": report.summary(),
            "ok": report.ok,
            "paths_explored": report.paths_explored,
            "states_visited": report.states_visited,
            "transitions_executed": report.transitions_executed,
            "truncated": report.truncated,
            "incomplete": report.incomplete,
            "violation_groups": len(report.triage()) if not report.ok else 0,
        }
        if report.stats is not None:
            # First-class headline metrics (also inside "stats", but
            # dashboards comparing runs shouldn't have to dig for them).
            block["replay_fraction"] = report.stats.replay_fraction
            block["states_per_second"] = report.stats.states_per_second
            block["stats"] = report.stats.json_dict()
        profile = getattr(report, "profile", None)
        if profile is not None:
            block["profile"] = profile.as_dict()
        workers = getattr(report, "worker_summary", None)
        if workers is not None:
            # Work-stealing runs: per-worker lease counts and liveness.
            block["workers"] = workers
        manifest["report"] = block
    if phases:
        manifest["phases"] = {
            name: round(seconds, 6) for name, seconds in phases.items()
        }
    if artifacts:
        manifest["artifacts"] = [str(path) for path in artifacts]
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(
    directory_or_path: str | pathlib.Path, manifest: dict[str, Any]
) -> pathlib.Path:
    """Write ``manifest`` as JSON.  A directory argument gets the
    default ``run.json`` name inside it; a file path is used verbatim.
    Returns the path written."""
    path = pathlib.Path(directory_or_path)
    if path.is_dir():
        path = path / MANIFEST_NAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, default=str) + "\n")
    return path
