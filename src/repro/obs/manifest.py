"""Structured run manifests: every exploration is reconstructable.

A saved trace answers "what went wrong"; the manifest answers "what ran
at all" — the exact options, the system fingerprint, the code version,
the host, the phase timings and the final telemetry, written as
``run.json`` next to whatever artifacts the run produced (saved traces,
Chrome trace exports).  Two runs whose manifests agree on
``options``/``fingerprint``/``git`` are replays of each other; two that
do not explain *why* their numbers differ.

Everything here degrades gracefully: no git checkout, no problem (the
``git`` block is ``None``); the manifest never fails a run.
"""

from __future__ import annotations

import datetime
import json
import pathlib
import platform
import socket
import subprocess
import sys
from typing import Any

#: Schema version of the manifest file.
MANIFEST_VERSION = 1

#: Default file name, written next to run artifacts.
MANIFEST_NAME = "run.json"


def git_info(cwd: str | pathlib.Path | None = None) -> dict[str, str] | None:
    """``git describe`` + commit hash of the working tree (``None``
    when not in a git checkout, or git is unavailable)."""
    def run(*args: str) -> str | None:
        try:
            proc = subprocess.run(
                ["git", *args],
                cwd=cwd,
                capture_output=True,
                text=True,
                timeout=5,
            )
        except (OSError, subprocess.TimeoutExpired):
            return None
        if proc.returncode != 0:
            return None
        return proc.stdout.strip()

    commit = run("rev-parse", "HEAD")
    if not commit:
        return None
    info: dict[str, str] = {"commit": commit}
    describe = run("describe", "--always", "--dirty")
    if describe:
        info["describe"] = describe
    return info


def host_info() -> dict[str, Any]:
    """A fingerprint of the machine the run executed on."""
    import os

    return {
        "hostname": socket.gethostname(),
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "implementation": platform.python_implementation(),
        "cpu_count": os.cpu_count(),
    }


def build_manifest(
    *,
    argv: list[str] | None = None,
    options: Any = None,
    report: Any = None,
    system: Any = None,
    phases: dict[str, float] | None = None,
    artifacts: list[str] | None = None,
    language: str | None = None,
    engine: str | None = None,
    source: dict[str, str] | None = None,
    extra: dict[str, Any] | None = None,
) -> dict[str, Any]:
    """Assemble the ``run.json`` dictionary.

    Arguments (all optional — the manifest records what it is given):

    * ``argv`` — the command line that launched the run;
    * ``options`` — a :class:`~repro.verisoft.search.SearchOptions`
      (serialized via its ``as_dict``);
    * ``report`` — the final
      :class:`~repro.verisoft.results.ExplorationReport` (summary line,
      stats, triage groups, profile and coverage when collected);
    * ``system`` — the explored :class:`~repro.runtime.System` (its
      structural fingerprint is recorded);
    * ``phases`` — phase-name → seconds (see
      :meth:`repro.obs.tracer.Tracer.phase_timings`);
    * ``artifacts`` — paths of files the run wrote (trace JSONs, saved
      counterexample traces);
    * ``language`` / ``engine`` — source language of the verified
      program and the resolved execution engine; recorded (with the
      tool name and version) under the single ``meta`` key that every
      manifest-writing path shares.  ``engine`` defaults to the
      report's ``stats.engine`` when available;
    * ``source`` — ``{"path": ..., "text": ...}`` of the verified
      program, embedded so ``repro report`` can annotate coverage onto
      source lines without re-reading the original file;
    * ``extra`` — any additional JSON-serializable block.
    """
    from .. import __version__

    if engine is None and report is not None and report.stats is not None:
        engine = report.stats.engine
    manifest: dict[str, Any] = {
        "manifest_version": MANIFEST_VERSION,
        "tool": {"name": "repro", "version": __version__},
        # The one provenance block shared by every manifest writer
        # (search / replay / shrink / service): what tool, what engine,
        # what source language.  The legacy top-level "tool" and
        # "language" keys stay for older consumers.
        "meta": {
            "tool": "repro",
            "version": __version__,
            "engine": engine,
            "language": language,
        },
        "created": datetime.datetime.now(datetime.timezone.utc).isoformat(),
        "argv": list(argv) if argv is not None else list(sys.argv),
        "host": host_info(),
        "git": git_info(),
    }
    if language is not None:
        manifest["language"] = language
    if source is not None:
        manifest["program"] = {
            "path": source.get("path"),
            "text": source.get("text"),
        }
    if options is not None:
        manifest["options"] = options.as_dict()
    if system is not None:
        try:
            manifest["system_fingerprint"] = system.fingerprint()
        except Exception:  # fingerprinting must never sink a run
            manifest["system_fingerprint"] = None
    if report is not None:
        block: dict[str, Any] = {
            "summary": report.summary(),
            "ok": report.ok,
            "paths_explored": report.paths_explored,
            "states_visited": report.states_visited,
            "transitions_executed": report.transitions_executed,
            "truncated": report.truncated,
            "incomplete": report.incomplete,
            "violation_groups": len(report.triage()) if not report.ok else 0,
        }
        if report.stats is not None:
            # First-class headline metrics (also inside "stats", but
            # dashboards comparing runs shouldn't have to dig for them).
            block["replay_fraction"] = report.stats.replay_fraction
            block["states_per_second"] = report.stats.states_per_second
            block["stats"] = report.stats.json_dict()
        if not report.ok:
            groups = report.triage()
            block["triage"] = [
                {
                    "kind": group.kind,
                    "count": group.count,
                    "label": group.describe(system=system),
                }
                for group in groups
            ]
        profile = getattr(report, "profile", None)
        if profile is not None:
            block["profile"] = profile.as_dict()
        coverage = getattr(report, "coverage", None)
        if coverage is not None:
            block["coverage"] = coverage.as_dict()
        workers = getattr(report, "worker_summary", None)
        if workers is not None:
            # Work-stealing runs: per-worker lease counts and liveness.
            block["workers"] = workers
        manifest["report"] = block
    if phases:
        manifest["phases"] = {
            name: round(seconds, 6) for name, seconds in phases.items()
        }
    if artifacts:
        manifest["artifacts"] = [str(path) for path in artifacts]
    if extra:
        manifest.update(extra)
    return manifest


def write_manifest(
    directory_or_path: str | pathlib.Path, manifest: dict[str, Any]
) -> pathlib.Path:
    """Write ``manifest`` as JSON.  A directory argument gets the
    default ``run.json`` name inside it; a file path is used verbatim.
    Returns the path written."""
    path = pathlib.Path(directory_or_path)
    if path.is_dir():
        path = path / MANIFEST_NAME
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(manifest, indent=2, default=str) + "\n")
    return path
