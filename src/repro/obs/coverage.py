"""CFG / source / environment-input coverage for verification runs.

:class:`CoverageCollector` consumes the per-process node traces that the
execution engines record (``Interpreter`` / ``CompiledEngine`` with
``enable_trace()``) and accumulates, at the same exact-counter anchoring
as the hot-spot profiler:

* per-CFG-node and per-edge visit counts,
* per-process reached node sets (against a statically computed
  reachable universe),
* **environment-input coverage** — the distribution of ``VS_toss``
  values actually driven at each toss point.  After the closing
  transformation every extern-procedure call site *is* a TOSS node
  carrying the call site's :class:`~repro.lang.errors.SourceLocation`,
  so toss-point coverage is extern-call-site coverage.

The explorer drains each engine's trace buffer right after the segment
that produced it (process startup, a toss answer, a visible-operation
execution) and tells the collector whether that segment ran on *fresh*
ground (``_ExecState.fresh_edge``) or was prefix replay.  Replayed
segments still advance the collector's control-context parser (the call
stack must track every executed node) but are not counted — which is
what makes coverage merge counter-exactly across parallel workers and
work-stealing shards: every fresh edge is counted exactly once
system-wide, so ``jobs=1``, ``jobs=4`` and ``--scheduler steal`` produce
bit-identical counters, as do the walk and compiled engines (their
traces are instruction-for-instruction identical).

Edges are derived, not recorded: the engines only log visited nodes
``(proc_name, node_id)``.  Because a START node never has in-arcs and a
RETURN node never has out-arcs, procedure entry and return are
recognisable from static node kinds alone; the parser keeps a per-process
caller stack so the ``call -> next`` arc in the caller is credited when
the callee returns.

Internally an edge is keyed by its ``(src_entry, dst_entry)`` pair —
every recordable edge is intra-procedure (procedure entry pushes, it
does not draw an arc), so the pair maps 1:1 onto the static ``(proc,
src, dst)`` arc and lets the hot path count a whole boundary-free
segment with three C-speed bulk updates (``Counter.update`` /
``set.update`` / ``zip``) instead of a Python-level loop per node.

The collector pickles its counters plus a JSON-ready static table
(:attr:`static`) and drops the transient parser state, so worker shards
ship their shard back to the coordinator exactly like ``SearchStats`` /
``HotSpotProfiler`` and :meth:`as_dict` stays self-contained for the
HTML report generator.
"""

from __future__ import annotations

from collections import Counter
from itertools import chain
from typing import Any, Iterable, Mapping, Sequence

from ..cfg.nodes import NodeKind

__all__ = ["CoverageCollector"]

_START = NodeKind.START
_RETURN = NodeKind.RETURN
_EXIT = NodeKind.EXIT


class _Parser:
    """Per-process control-context parser state."""

    __slots__ = ("stack", "last")

    def __init__(self) -> None:
        self.stack: list[tuple[str, int]] = []  # pending CALL nodes, outermost first
        self.last: tuple[str, int] | None = None  # previously executed node


def _static_tables(system: Any) -> tuple[dict, dict]:
    """Build (static_json, kind_table) from a System's CFGs + process specs."""
    procs: dict[str, Any] = {}
    kinds: dict[tuple[str, int], NodeKind] = {}
    callees: dict[str, set[str]] = {}
    for proc_name in sorted(system.cfgs):
        cfg = system.cfgs[proc_name]
        nodes = {}
        called: set[str] = set()
        for node_id in sorted(cfg.nodes):
            node = cfg.nodes[node_id]
            kinds[(proc_name, node_id)] = node.kind
            info: dict[str, Any] = {
                "kind": node.kind.value,
                "line": node.location.line,
                "column": node.location.column,
            }
            if node.kind is NodeKind.TOSS:
                info["bound"] = node.bound
            if node.kind is NodeKind.CALL and node.callee in system.cfgs:
                called.add(node.callee)
            nodes[str(node_id)] = info
        callees[proc_name] = called
        procs[proc_name] = {
            "start": cfg.start_id,
            "nodes": nodes,
            "arcs": sorted((arc.src, arc.dst) for arc in cfg.arcs),
        }
    processes: dict[str, Any] = {}
    for name, top_proc, _args in system.process_specs:
        reachable: list[str] = []
        seen = {top_proc}
        frontier = [top_proc]
        while frontier:
            proc = frontier.pop()
            reachable.append(proc)
            for callee in sorted(callees.get(proc, ())):
                if callee not in seen:
                    seen.add(callee)
                    frontier.append(callee)
        processes[name] = {"proc": top_proc, "procs": sorted(reachable)}
    static = {"procs": procs, "processes": processes}
    return static, kinds


class CoverageCollector:
    """Accumulates node/edge/toss-value coverage from engine traces.

    Construct with the :class:`~repro.runtime.system.System` being
    explored (the static universe); a bare ``CoverageCollector()`` is an
    empty accumulator suitable as a merge target.
    """

    def __init__(self, system: Any | None = None):
        #: visit count per (proc_name, node_id), fresh segments only
        self.nodes: Counter = Counter()
        #: visit count per ((proc_name, src_id), (proc_name, dst_id))
        #: entry pair — see the module docstring; every edge is
        #: intra-procedure, so this is 1:1 with the static arcs
        self.edges: Counter = Counter()
        #: count per (proc_name, toss_node_id, value)
        self.toss_values: Counter = Counter()
        #: process name -> set of (proc_name, node_id) it reached
        self.process_nodes: dict[str, set] = {}
        self.static: dict | None = None
        self._kinds: dict | None = None
        #: entries whose node kind is START / RETURN / EXIT — the only
        #: places the edge derivation needs per-node logic; a segment
        #: disjoint from this set takes the bulk-update fast path
        self._boundary: frozenset = frozenset()
        self._parsers: dict[str, _Parser] = {}
        if system is not None:
            self.static, self._kinds = _static_tables(system)
            self._boundary = frozenset(
                entry
                for entry, kind in self._kinds.items()
                if kind is _START or kind is _RETURN or kind is _EXIT
            )

    # -- pickling (worker -> coordinator shipping) ----------------------------------

    def __getstate__(self) -> dict:
        return {
            "nodes": self.nodes,
            "edges": self.edges,
            "toss_values": self.toss_values,
            "process_nodes": self.process_nodes,
            "static": self.static,
        }

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._kinds = None
        self._boundary = frozenset()
        self._parsers = {}

    # -- trace consumption -----------------------------------------------------------

    def begin_run(self) -> None:
        """Reset parser state for a fresh ``Run`` (new ``_execute`` pass)."""
        self._parsers.clear()

    def sync(self, process: str, control: Sequence[tuple[str, int]]) -> None:
        """Re-anchor the parser after a checkpoint restore.

        ``control`` is the engine's activation stack, outermost first
        (:meth:`control_nodes`) as a sequence of ``(proc_name, node_id)``
        tuples: every activation below the top is a CALL node waiting for
        its callee; the top activation's node is the pending request node
        — the node whose out-edge the next resume will take.  Runs once
        per process on every checkpoint restore, so it must stay cheap.
        """
        parser = self._parsers.get(process)
        if parser is None:
            parser = self._parsers[process] = _Parser()
        if control:
            parser.stack = list(control[:-1])
            parser.last = control[-1]
        else:
            parser.stack = []
            parser.last = None

    def segment(
        self,
        process: str,
        entries: Iterable[tuple[str, int]],
        counted: bool,
    ) -> None:
        """Consume one drained trace segment of ``process``.

        ``counted`` is the segment's freshness: replayed segments update
        only the parser context so subsequent fresh segments attribute
        their edges correctly.
        """
        if self._kinds is None:
            raise RuntimeError("collector has no static tables (unpickled shard?)")
        kinds = self._kinds
        parser = self._parsers.get(process)
        if parser is None:
            parser = self._parsers[process] = _Parser()
        last = parser.last
        if not isinstance(entries, (list, tuple)):
            entries = list(entries)
        if not entries:
            return
        # Bulk path: a long segment with no procedure entry/return/exit
        # anywhere in sight — every consecutive pair is a plain
        # intra-procedure edge, so the whole segment counts in three
        # C-speed bulk operations.  Short segments (the common case for
        # call-heavy programs, where segments average a handful of
        # entries) go straight to the loop: the boundary scan costs more
        # than it saves below ~8 entries.
        if (
            len(entries) >= 8
            and last is not None
            and last not in self._boundary
            and self._boundary.isdisjoint(entries)
        ):
            if counted:
                self.nodes.update(entries)
                reached = self.process_nodes.get(process)
                if reached is None:
                    reached = self.process_nodes[process] = set()
                reached.update(entries)
                self.edges.update(zip(chain((last,), entries), entries))
            parser.last = entries[-1]
            return
        stack = parser.stack
        lkind = kinds[last] if last is not None else None
        nodes = self.nodes
        edges = self.edges
        reached = None
        if counted:
            reached = self.process_nodes.get(process)
            if reached is None:
                reached = self.process_nodes[process] = set()
        for entry in entries:
            ekind = kinds[entry]
            edge = None
            if last is not None:
                if lkind is _RETURN:
                    if stack:
                        caller = stack.pop()
                        edge = (caller, entry)
                elif ekind is _START:
                    stack.append(last)
                elif lkind is not _EXIT:
                    edge = (last, entry)
            if counted:
                nodes[entry] += 1
                reached.add(entry)
                if edge is not None:
                    edges[edge] += 1
            last = entry
            lkind = ekind
        parser.last = last

    def toss_value(self, proc_name: str, node_id: int, value: int) -> None:
        """Record one fresh toss answer at ``(proc_name, node_id)``."""
        self.toss_values[(proc_name, node_id, value)] += 1

    # -- merging ----------------------------------------------------------------------

    def add(self, other: "CoverageCollector") -> None:
        """Fold another collector's counters into this one (plain sums)."""
        self.nodes.update(other.nodes)
        self.edges.update(other.edges)
        self.toss_values.update(other.toss_values)
        for process, reached in other.process_nodes.items():
            self.process_nodes.setdefault(process, set()).update(reached)
        if self.static is None:
            self.static = other.static
            self._kinds = other._kinds
            self._boundary = other._boundary

    @classmethod
    def merged(cls, parts: Iterable["CoverageCollector | None"]) -> "CoverageCollector":
        """Merge worker shards; ``None`` entries are skipped."""
        out = cls()
        for part in parts:
            if part is not None:
                out.add(part)
        return out

    # -- derived views -----------------------------------------------------------------

    @property
    def nodes_total(self) -> int:
        if not self.static:
            return 0
        return sum(len(proc["nodes"]) for proc in self.static["procs"].values())

    @property
    def nodes_covered(self) -> int:
        return len(self.nodes)

    @property
    def edges_total(self) -> int:
        if not self.static:
            return 0
        return sum(len(proc["arcs"]) for proc in self.static["procs"].values())

    @property
    def edges_covered(self) -> int:
        return len(self.edges)

    def node_percent(self) -> float:
        total = self.nodes_total
        return 100.0 * self.nodes_covered / total if total else 0.0

    def unreached_nodes(self) -> dict[str, list[int]]:
        """proc_name -> sorted node ids never visited (any process)."""
        if not self.static:
            return {}
        out: dict[str, list[int]] = {}
        for proc_name, proc in self.static["procs"].items():
            missing = [
                int(nid) for nid in proc["nodes"] if (proc_name, int(nid)) not in self.nodes
            ]
            if missing:
                out[proc_name] = sorted(missing)
        return out

    def toss_points(self) -> dict[tuple[str, int], dict]:
        """Per toss point: static bound, observed value counts, missing values."""
        bounds: dict[tuple[str, int], int] = {}
        if self.static:
            for proc_name, proc in self.static["procs"].items():
                for nid, info in proc["nodes"].items():
                    if info["kind"] == NodeKind.TOSS.value:
                        bounds[(proc_name, int(nid))] = info["bound"]
        points: dict[tuple[str, int], dict] = {
            key: {"bound": bound, "values": {}} for key, bound in bounds.items()
        }
        for (proc_name, node_id, value), count in self.toss_values.items():
            point = points.setdefault(
                (proc_name, node_id), {"bound": None, "values": {}}
            )
            point["values"][value] = point["values"].get(value, 0) + count
        for point in points.values():
            bound = point["bound"]
            if bound is not None:
                point["missing"] = [
                    value for value in range(bound + 1) if value not in point["values"]
                ]
            else:
                point["missing"] = []
        return points

    def line_coverage(self) -> dict[int, dict]:
        """Source-line projection over all procedures.

        Returns ``line -> {"nodes": total, "covered": reached, "count":
        visit sum}`` for every node with a real location (line > 0 —
        synthesized closing nodes keep their extern call site's
        location, so they project too).
        """
        if not self.static:
            return {}
        lines: dict[int, dict] = {}
        for proc_name, proc in self.static["procs"].items():
            for nid, info in proc["nodes"].items():
                line = info["line"]
                if line <= 0:
                    continue
                entry = lines.setdefault(line, {"nodes": 0, "covered": 0, "count": 0})
                entry["nodes"] += 1
                count = self.nodes.get((proc_name, int(nid)), 0)
                if count:
                    entry["covered"] += 1
                    entry["count"] += count
        return lines

    def lines_reached(self) -> tuple[int, int, list[int]]:
        """(reached, total, sorted never-executed lines)."""
        lines = self.line_coverage()
        reached = sum(1 for entry in lines.values() if entry["covered"])
        missing = sorted(line for line, entry in lines.items() if not entry["covered"])
        return reached, len(lines), missing

    # -- serialisation ----------------------------------------------------------------

    def as_dict(self) -> dict:
        """JSON-ready, self-contained dict (static tables included)."""

        def strkeys(counter: Mapping) -> dict:
            ranked = sorted(counter.items(), key=lambda item: (-item[1], str(item[0])))
            return {
                ":".join(str(part) for part in key): count for key, count in ranked
            }

        def edge_strkeys(counter: Mapping) -> dict:
            ranked = sorted(counter.items(), key=lambda item: (-item[1], str(item[0])))
            return {
                f"{src[0]}:{src[1]}:{dst[1]}": count for (src, dst), count in ranked
            }

        per_proc: dict[str, Any] = {}
        unreached = self.unreached_nodes()
        if self.static:
            for proc_name, proc in self.static["procs"].items():
                total = len(proc["nodes"])
                covered = sum(
                    1 for nid in proc["nodes"] if (proc_name, int(nid)) in self.nodes
                )
                per_proc[proc_name] = {
                    "nodes_total": total,
                    "nodes_covered": covered,
                    "unreached": unreached.get(proc_name, []),
                }
        per_process: dict[str, Any] = {}
        if self.static:
            for process, info in self.static["processes"].items():
                universe = {
                    (proc, int(nid))
                    for proc in info["procs"]
                    for nid in self.static["procs"][proc]["nodes"]
                }
                reached = self.process_nodes.get(process, set()) & universe
                per_process[process] = {
                    "procs": info["procs"],
                    "nodes_total": len(universe),
                    "nodes_covered": len(reached),
                    "unreached": sorted(
                        f"{proc}:{nid}" for proc, nid in universe - reached
                    ),
                }
        toss = {}
        for (proc_name, node_id), point in sorted(
            self.toss_points().items(), key=lambda item: (item[0][0], item[0][1])
        ):
            toss[f"{proc_name}:{node_id}"] = {
                "bound": point["bound"],
                "values": {
                    str(value): count for value, count in sorted(point["values"].items())
                },
                "missing": point["missing"],
            }
        reached, total, missing_lines = self.lines_reached()
        return {
            "version": 1,
            "summary": {
                "nodes_total": self.nodes_total,
                "nodes_covered": self.nodes_covered,
                "node_percent": round(self.node_percent(), 2),
                "edges_total": self.edges_total,
                "edges_covered": self.edges_covered,
                "toss_points_total": len(
                    [1 for point in self.toss_points().values() if point["bound"] is not None]
                ),
                "toss_points_covered": len(
                    {(proc, nid) for proc, nid, _value in self.toss_values}
                ),
                "lines_total": total,
                "lines_reached": reached,
                "lines_missing": missing_lines,
            },
            "procs": per_proc,
            "processes": per_process,
            "nodes": strkeys(self.nodes),
            "edges": edge_strkeys(self.edges),
            "toss_values": toss,
            "static": self.static,
        }

    # -- rendering --------------------------------------------------------------------

    def render_summary(self, program: str | None = None) -> str:
        """A short multi-line text summary (CLI ``--coverage``)."""
        label = f"{program}: " if program else ""
        lines_out = [
            f"coverage: {label}nodes {self.nodes_covered}/{self.nodes_total}"
            f" ({self.node_percent():.1f}%), edges"
            f" {self.edges_covered}/{self.edges_total}"
        ]
        for proc_name, info in sorted(self.unreached_nodes().items()):
            lines_out.append(
                f"  {proc_name}: unreached nodes {', '.join(map(str, info))}"
            )
        reached, total, missing = self.lines_reached()
        if total:
            tail = f"; never executed: {', '.join(map(str, missing))}" if missing else ""
            lines_out.append(f"  lines: {reached}/{total} reached{tail}")
        for (proc_name, node_id), point in sorted(self.toss_points().items()):
            if point["bound"] is None:
                continue
            seen = sorted(point["values"])
            missing_values = point["missing"]
            if missing_values:
                lines_out.append(
                    f"  toss {proc_name}:{node_id}: saw {len(seen)}/"
                    f"{point['bound'] + 1} values (missing"
                    f" {', '.join(map(str, missing_values))})"
                )
        return "\n".join(lines_out)
