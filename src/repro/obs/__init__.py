"""repro.obs — the observability layer: tracing, profiling, health.

VeriSoft-style stateless search spends nearly all of its time
re-executing the program; this package is the measurement layer over
that machinery, threaded through the whole pipeline (parse → dataflow →
closing transform → search/replay/shrink):

* :mod:`repro.obs.tracer` — a lightweight span/event tracer with
  Chrome trace-event JSON export (``chrome://tracing`` / Perfetto):
  pipeline phases, per-path DFS spans, replay prefixes, per-worker
  parallel timelines;
* :mod:`repro.obs.profile` — a hot-spot profiler riding the explorer's
  ``on_step`` observer: per-CFG-node / per-operation / per-toss-point
  execution counts plus depth and branching histograms, rendered as
  top-N tables (``repro search --profile`` / ``repro profile``);
* :mod:`repro.obs.heartbeat` — worker heartbeats and stall detection
  for the parallel search: per-worker progress lines in the ticker and
  warnings when a worker stops making progress;
* :mod:`repro.obs.manifest` — structured ``run.json`` manifests
  (options, system fingerprint, git version, host, phase timings,
  final stats) written next to saved artifacts;
* :mod:`repro.obs.coverage` — CFG node/edge, source-line and
  environment-input (``VS_toss``) coverage riding the engines' node
  traces, counter-exact across engines, job counts and work-stealing
  shards (``repro search --coverage``);
* :mod:`repro.obs.report` — self-contained, zero-asset HTML run
  reports rendered from manifests (``repro report run.json -o
  report.html``);
* :mod:`repro.obs.metrics` — Prometheus textfile exporter for the job
  service (``repro serve --metrics-out FILE``).

Every hook is **zero-cost when disabled**: instrumentation sites are
guarded by a single ``if tracer is not None`` / ``if on_step is not
None`` and nothing is constructed unless requested (overhead measured
by ``benchmarks/bench_obs.py``).
"""

from .coverage import CoverageCollector
from .heartbeat import Heartbeat, HeartbeatMonitor, WorkerHealth
from .manifest import (
    MANIFEST_NAME,
    MANIFEST_VERSION,
    build_manifest,
    git_info,
    host_info,
    write_manifest,
)
from .metrics import render_prometheus, write_metrics
from .profile import HotSpotProfiler
from .report import load_manifest, render_html, write_report
from .tracer import Tracer, validate_chrome_trace

__all__ = [
    "CoverageCollector",
    "Heartbeat",
    "HeartbeatMonitor",
    "HotSpotProfiler",
    "MANIFEST_NAME",
    "MANIFEST_VERSION",
    "Tracer",
    "WorkerHealth",
    "build_manifest",
    "git_info",
    "host_info",
    "load_manifest",
    "render_html",
    "render_prometheus",
    "validate_chrome_trace",
    "write_manifest",
    "write_metrics",
    "write_report",
]
