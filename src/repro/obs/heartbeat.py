"""Worker heartbeats and stall detection for the parallel search.

A prefix-partitioned parallel search (:mod:`repro.verisoft.parallel`)
fans subtrees out to worker processes that may run for minutes; without
telemetry a *hung* worker (deadlocked pool, runaway subtree) is
indistinguishable from a *slow* one.  The heartbeat protocol fixes
that:

* each worker periodically puts a :class:`Heartbeat` — worker pid, the
  prefix (subtree) it is exploring, its live state/transition counters
  and a wall-clock timestamp — onto a shared queue (piggybacking on the
  explorer's existing ``progress`` callback, so the reporting interval
  is the search's ``progress_interval``);
* the coordinator drains the queue between result completions, keeps a
  :class:`WorkerHealth` record per worker, surfaces per-worker lines in
  the progress ticker, and raises a warning when a worker has made *no
  progress* (counters unchanged, or silence) past a configurable stall
  threshold.

"Progress" is counter movement, not message arrival: a worker stuck
inside one transition stops beating *and* stops counting, so both hang
modes trip the same detector.  A stall warning fires once per episode
and a recovery is announced when the counters move again.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Any, Callable

#: Heartbeat message kinds.
KINDS = ("start", "beat", "done")


@dataclass(frozen=True, slots=True)
class Heartbeat:
    """One worker report (picklable; travels over the heartbeat queue)."""

    #: ``"start"`` (picked up a prefix), ``"beat"`` (periodic progress)
    #: or ``"done"`` (finished the prefix).
    kind: str
    #: Worker process id.
    worker: int
    #: Index of the prefix (subtree) the worker is exploring.
    prefix: int
    #: States visited within the current subtree so far.
    states: int
    #: Transitions executed (including replays) within the subtree.
    transitions: int
    #: ``time.time()`` at the worker when the beat was sent.
    sent_at: float


class WorkerHealth:
    """The coordinator's live record of one worker process."""

    def __init__(self, worker: int, now: float):
        self.worker = worker
        self.prefix: int | None = None
        self.states = 0
        self.transitions = 0
        #: Last time any message arrived from this worker.
        self.last_seen = now
        #: Last time the worker demonstrably made progress (counters
        #: moved, or a start/done transition).
        self.last_progress = now
        #: Whether the worker currently holds a prefix.
        self.busy = False
        #: Whether a stall warning is currently outstanding.
        self.stalled = False
        #: Subtrees completed by this worker.
        self.completed = 0

    def note(self, beat: Heartbeat) -> None:
        """Fold one heartbeat into the record."""
        self.last_seen = beat.sent_at
        if beat.kind == "start":
            self.busy = True
            self.prefix = beat.prefix
            self.states = 0
            self.transitions = 0
            self.last_progress = beat.sent_at
        elif beat.kind == "done":
            self.busy = False
            self.completed += 1
            self.last_progress = beat.sent_at
        else:
            if beat.states > self.states or beat.transitions > self.transitions:
                self.last_progress = beat.sent_at
            self.states = beat.states
            self.transitions = beat.transitions

    def describe(self, now: float) -> str:
        """One ticker line for this worker."""
        if not self.busy:
            return (
                f"worker {self.worker}: idle "
                f"({self.completed} subtree(s) done)"
            )
        ago = max(0.0, now - self.last_progress)
        state = "STALLED" if self.stalled else "busy"
        return (
            f"worker {self.worker}: {state} prefix {self.prefix} "
            f"states={self.states} transitions={self.transitions} "
            f"last progress {ago:.1f}s ago"
        )


class HeartbeatMonitor:
    """Tracks every worker's health; detects and reports stalls.

    ``on_warn`` (when given) receives human-readable warning strings —
    the parallel driver wires it to the progress printer's ``warn`` or
    to stderr.  ``stall_timeout`` is the no-progress threshold in
    seconds; ``None`` disables stall detection (heartbeats still feed
    the ticker).
    """

    def __init__(
        self,
        stall_timeout: float | None = 10.0,
        on_warn: Callable[[str], None] | None = None,
        clock: Callable[[], float] = time.time,
    ):
        self._stall_timeout = stall_timeout
        self._on_warn = on_warn
        self._clock = clock
        self._workers: dict[int, WorkerHealth] = {}

    @property
    def workers(self) -> dict[int, WorkerHealth]:
        """Per-worker health records, keyed by worker pid."""
        return self._workers

    def note(self, beat: Heartbeat) -> None:
        """Record one heartbeat (and clear its worker's stall flag if
        the beat demonstrates progress)."""
        record = self._workers.get(beat.worker)
        if record is None:
            record = self._workers[beat.worker] = WorkerHealth(
                beat.worker, beat.sent_at
            )
        previously = record.last_progress
        record.note(beat)
        if record.stalled and record.last_progress > previously:
            record.stalled = False
            if self._on_warn is not None:
                self._on_warn(
                    f"worker {beat.worker} recovered (prefix "
                    f"{record.prefix}, states={record.states})"
                )

    def drain(self, queue: Any) -> int:
        """Consume every pending heartbeat from ``queue`` (any object
        with a non-blocking ``get_nowait``); returns how many arrived."""
        import queue as queue_module

        count = 0
        while True:
            try:
                beat = queue.get_nowait()
            except (queue_module.Empty, OSError, EOFError):
                break
            self.note(beat)
            count += 1
        return count

    def check_stalls(self, now: float | None = None) -> list[WorkerHealth]:
        """Flag workers with no progress for longer than the stall
        threshold; returns the *newly* stalled ones (each also reported
        through ``on_warn``, once per stall episode)."""
        if self._stall_timeout is None:
            return []
        if now is None:
            now = self._clock()
        newly = []
        for record in self._workers.values():
            if not record.busy or record.stalled:
                continue
            silent = now - record.last_progress
            if silent > self._stall_timeout:
                record.stalled = True
                newly.append(record)
                if self._on_warn is not None:
                    self._on_warn(
                        f"worker {record.worker} has made no progress for "
                        f"{silent:.1f}s (prefix {record.prefix}, "
                        f"states={record.states}) — stalled or very slow"
                    )
        return newly

    def lines(self, now: float | None = None) -> list[str]:
        """Per-worker ticker lines, in stable (pid) order."""
        if now is None:
            now = self._clock()
        return [
            self._workers[worker].describe(now)
            for worker in sorted(self._workers)
        ]

    def inflight(self) -> tuple[int, int]:
        """``(states, transitions)`` currently reported by *busy*
        workers — work in flight that no completed report covers yet
        (the live ticker adds it to the merged totals)."""
        states = sum(r.states for r in self._workers.values() if r.busy)
        transitions = sum(
            r.transitions for r in self._workers.values() if r.busy
        )
        return states, transitions

    def summary(self) -> dict[str, Any]:
        """A JSON-friendly snapshot for manifests and stats dumps."""
        return {
            "workers": len(self._workers),
            "stalled": sum(1 for r in self._workers.values() if r.stalled),
            "subtrees_completed": sum(
                r.completed for r in self._workers.values()
            ),
        }
