"""Span/event tracing with Chrome trace-event JSON export.

The tracer is the timeline half of the observability layer
(:mod:`repro.obs`): lightweight spans (context-manager API, monotonic
timestamps, microsecond resolution) recorded into an in-memory buffer
and exported in the Chrome trace-event format, so a whole search run —
pipeline phases, per-path DFS spans, replay prefixes, per-worker
parallel timelines — can be dropped into ``chrome://tracing`` or
https://ui.perfetto.dev and inspected visually.

Design constraints, in order:

* **Zero cost when absent.**  Nothing in the hot paths constructs a
  tracer by default; every instrumentation site is guarded by a single
  ``if tracer is not None``.  The only price of the feature when unused
  is that one branch.
* **Thread- and process-safety.**  The event buffer is guarded by a
  lock (cheap, uncontended in the single-threaded explorer); separate
  *processes* each own a private tracer whose buffer travels back to
  the coordinator as a plain-dict payload (:meth:`Tracer.export`) and
  is spliced onto the coordinator's timeline (:meth:`Tracer.merge`)
  using wall-clock epochs to align the clocks.
* **Bounded memory.**  A 45k-state sweep can emit one span per DFS
  path; past ``max_events`` the tracer counts drops instead of growing
  (the export records how many were dropped, so truncation is never
  silent).

Events use the ``"X"`` (complete) phase — one record per span with
``ts``/``dur`` — plus ``"i"`` instants and ``"C"`` counters, all with
the ``pid``/``tid``/``name``/``cat`` keys the viewers expect.
"""

from __future__ import annotations

import json
import os
import pathlib
import threading
import time
from contextlib import contextmanager
from typing import Any, Callable, Iterator

#: Version tag of the exported worker-payload format (see
#: :meth:`Tracer.export` / :meth:`Tracer.merge`).
EXPORT_FORMAT = "repro-obs-events/1"

#: Category used for pipeline phases; :meth:`Tracer.phase_timings`
#: aggregates only spans in this category.
PHASE_CATEGORY = "phase"


class Tracer:
    """An append-only span/event recorder with Chrome trace export.

    Timestamps are ``time.monotonic()`` microseconds relative to the
    tracer's construction; ``epoch_unix`` (wall clock at construction)
    lets buffers from different processes be aligned on one timeline.

    Use :meth:`span` (a context manager) for durations, :meth:`instant`
    for point events and :meth:`counter` for sampled values::

        tracer = Tracer()
        with tracer.span("close", cat="phase", procs=3):
            ...
        tracer.instant("violation", process="line_0")
        tracer.write("trace.json")          # Perfetto-loadable
    """

    def __init__(
        self,
        *,
        max_events: int = 1_000_000,
        clock: Callable[[], float] = time.monotonic,
    ):
        self._clock = clock
        self._epoch = clock()
        #: Wall-clock time at construction, for cross-process alignment.
        self.epoch_unix = time.time()
        self._lock = threading.Lock()
        self._events: list[dict[str, Any]] = []
        self._max_events = max_events
        self._dropped = 0
        self._pid = os.getpid()

    # -- recording -----------------------------------------------------------

    def _now_us(self) -> float:
        return (self._clock() - self._epoch) * 1e6

    def _emit(self, event: dict[str, Any]) -> None:
        with self._lock:
            if len(self._events) >= self._max_events:
                self._dropped += 1
                return
            self._events.append(event)

    @contextmanager
    def span(self, name: str, cat: str = "span", **args: Any) -> Iterator[None]:
        """Record a complete (``ph="X"``) event covering the ``with`` body."""
        start = self._now_us()
        try:
            yield
        finally:
            now = self._now_us()
            event: dict[str, Any] = {
                "name": name,
                "cat": cat,
                "ph": "X",
                "ts": start,
                "dur": now - start,
                "pid": self._pid,
                "tid": threading.get_native_id(),
            }
            if args:
                event["args"] = args
            self._emit(event)

    def phase(self, name: str, **args: Any):
        """A :meth:`span` in the ``"phase"`` category — one top-level
        pipeline stage (parse, close, search, save-traces, ...).  Phase
        durations are aggregated by :meth:`phase_timings` and recorded
        in run manifests."""
        return self.span(name, cat=PHASE_CATEGORY, **args)

    def instant(self, name: str, cat: str = "event", **args: Any) -> None:
        """Record a point-in-time (``ph="i"``) event."""
        event: dict[str, Any] = {
            "name": name,
            "cat": cat,
            "ph": "i",
            "s": "t",  # thread-scoped instant
            "ts": self._now_us(),
            "pid": self._pid,
            "tid": threading.get_native_id(),
        }
        if args:
            event["args"] = args
        self._emit(event)

    def counter(self, name: str, cat: str = "counter", **values: float) -> None:
        """Record a sampled counter (``ph="C"``): the viewers chart each
        key of ``values`` as a stacked series over time."""
        self._emit(
            {
                "name": name,
                "cat": cat,
                "ph": "C",
                "ts": self._now_us(),
                "pid": self._pid,
                "tid": threading.get_native_id(),
                "args": dict(values),
            }
        )

    # -- inspection ----------------------------------------------------------

    @property
    def events(self) -> list[dict[str, Any]]:
        """A snapshot of the recorded events (copies the buffer)."""
        with self._lock:
            return list(self._events)

    @property
    def dropped(self) -> int:
        """Events discarded after the buffer hit ``max_events``."""
        with self._lock:
            return self._dropped

    def phase_timings(self) -> dict[str, float]:
        """Summed duration in *seconds* per phase-span name (spans
        recorded via :meth:`phase`), for run manifests."""
        out: dict[str, float] = {}
        for event in self.events:
            if event.get("cat") == PHASE_CATEGORY and event.get("ph") == "X":
                out[event["name"]] = out.get(event["name"], 0.0) + event["dur"] / 1e6
        return out

    # -- cross-process merge -------------------------------------------------

    def export(self, label: str | None = None) -> dict[str, Any]:
        """The picklable payload a worker process ships back to the
        coordinator: buffer + clock epoch + pid (+ optional ``label``
        naming the worker's timeline track)."""
        with self._lock:
            return {
                "format": EXPORT_FORMAT,
                "pid": self._pid,
                "epoch_unix": self.epoch_unix,
                "label": label,
                "dropped": self._dropped,
                "events": list(self._events),
            }

    def merge(self, payload: dict[str, Any]) -> None:
        """Splice a worker's :meth:`export` payload onto this tracer's
        timeline.  Timestamps are shifted by the wall-clock epoch delta
        so the worker's spans land where they actually happened relative
        to the coordinator; the worker's own pid keeps its events on a
        separate track (the per-worker timeline)."""
        if payload.get("format") != EXPORT_FORMAT:
            raise ValueError(
                f"unknown trace payload format {payload.get('format')!r}"
            )
        shift = (payload["epoch_unix"] - self.epoch_unix) * 1e6
        shifted = []
        for event in payload["events"]:
            event = dict(event)
            event["ts"] = event["ts"] + shift
            shifted.append(event)
        label = payload.get("label")
        if label:
            shifted.insert(
                0,
                {
                    "name": "process_name",
                    "ph": "M",
                    "ts": 0,
                    "pid": payload["pid"],
                    "tid": 0,
                    "args": {"name": label},
                },
            )
        with self._lock:
            self._events.extend(shifted)
            self._dropped += payload.get("dropped", 0)

    # -- export --------------------------------------------------------------

    def chrome_trace(self, process_name: str = "repro") -> dict[str, Any]:
        """The Chrome trace-event JSON object (``chrome://tracing`` /
        Perfetto loadable): metadata naming this process, then every
        recorded event sorted by timestamp."""
        with self._lock:
            events = sorted(self._events, key=lambda e: e["ts"])
            dropped = self._dropped
        meta = [
            {
                "name": "process_name",
                "ph": "M",
                "ts": 0,
                "pid": self._pid,
                "tid": 0,
                "args": {"name": process_name},
            }
        ]
        trace: dict[str, Any] = {
            "traceEvents": meta + events,
            "displayTimeUnit": "ms",
        }
        if dropped:
            trace["otherData"] = {"dropped_events": dropped}
        return trace

    def write(self, path: str | pathlib.Path, process_name: str = "repro") -> pathlib.Path:
        """Serialize :meth:`chrome_trace` to ``path`` and return it."""
        path = pathlib.Path(path)
        path.write_text(json.dumps(self.chrome_trace(process_name)) + "\n")
        return path


def validate_chrome_trace(trace: dict[str, Any]) -> list[str]:
    """Schema-check a Chrome trace-event object; returns the problems
    found (empty list = valid).  Used by the golden-file tests and
    handy for asserting third-party loadability without a browser:
    every event needs ``ph``/``ts``/``pid``/``tid``/``name``, complete
    events need a non-negative ``dur``, and instants need a scope."""
    problems: list[str] = []
    events = trace.get("traceEvents")
    if not isinstance(events, list):
        return ["traceEvents missing or not a list"]
    for index, event in enumerate(events):
        for key in ("ph", "ts", "pid", "tid", "name"):
            if key not in event:
                problems.append(f"event {index} missing {key!r}")
        ph = event.get("ph")
        if ph == "X":
            dur = event.get("dur")
            if not isinstance(dur, (int, float)) or dur < 0:
                problems.append(f"event {index}: complete event with bad dur {dur!r}")
        elif ph == "i" and "s" not in event:
            problems.append(f"event {index}: instant without scope 's'")
        elif ph not in ("X", "i", "C", "M", "B", "E"):
            problems.append(f"event {index}: unknown phase {ph!r}")
    return problems
