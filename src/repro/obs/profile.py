"""Hot-spot profiling of the search: where do the transitions go?

A stateless search's cost is execution: almost every cycle is spent
re-running transitions.  The :class:`HotSpotProfiler` answers *which*
transitions — it attaches to the explorer's ``on_step`` observer (see
:class:`repro.verisoft.explorer.Explorer`) and accumulates

* per-CFG-node execution counts (which program points dominate),
* per-operation counts (``send`` on which object, ``sem_p``, ...),
* per-process counts (which process is scheduled most),
* per-toss-point counts (which inserted ``VS_toss`` choice points fan
  the search out),
* depth and branching-degree histograms of the explored choice tree, and
* a **per-phase wall-time breakdown** (:attr:`HotSpotProfiler.phases`):
  seconds spent in the engine (stepping processes), computing canonical
  state fingerprints, in POR analysis, in the state cache and in the
  coverage collector.  The explorer fills it through its
  ``phase_profile`` hook; phases not exercised by a configuration
  (e.g. ``fingerprint`` with nothing consuming state keys) simply stay
  absent.

All counts are anchored exactly like the search counters — schedule
steps on *fresh edges*, toss points at choice-point creation — so the
profile totals equal ``transitions_executed`` / ``toss_points`` and a
merged parallel profile (jobs=N) is counter-for-counter identical to
the sequential one.  Profiles are plain ``Counter`` aggregates:
picklable (workers ship theirs back to the coordinator), mergeable
(:meth:`HotSpotProfiler.add`) and JSON-exportable
(:meth:`HotSpotProfiler.as_dict`).
"""

from __future__ import annotations

from collections import Counter
from typing import Any

#: Default number of rows in each rendered top-N table.
DEFAULT_TOP = 10


class HotSpotProfiler:
    """Accumulates hot-spot counters; also the ``on_step`` callable.

    The explorer invokes the observer as ``on_step(kind, process,
    request, depth, fanout, created)`` where

    * ``kind`` — ``"schedule"`` (a visible transition just executed on a
      fresh edge) or ``"toss"`` (a fresh ``VS_toss`` choice point was
      created);
    * ``process`` — scheduled process name;
    * ``request`` — the runtime request (carries ``proc_name``,
      ``node_id``, and for visible operations ``op``/``obj``);
    * ``depth`` — transitions executed before this one on the path;
    * ``fanout`` — alternatives at the governing choice point;
    * ``created`` — whether the choice point was created by this call
      (``False`` for siblings reached by backtracking).
    """

    def __init__(self) -> None:
        #: (cfg proc name, node id) -> visible-operation executions.
        self.nodes: Counter = Counter()
        #: (operation, object name or None) -> executions.
        self.operations: Counter = Counter()
        #: process name -> scheduled transitions.
        self.processes: Counter = Counter()
        #: (cfg proc name, node id) -> fresh VS_toss choice points.
        self.tosses: Counter = Counter()
        #: depth -> fresh transitions executed at that depth.
        self.depth_hist: Counter = Counter()
        #: branching degree -> choice points created with that fan-out.
        self.branching_hist: Counter = Counter()
        #: explorer phase name -> wall seconds (``engine`` /
        #: ``fingerprint`` / ``por`` / ``cache`` / ``coverage``), filled
        #: through the explorer's ``phase_profile`` hook.  A ``Counter``
        #: so absent phases read as 0.0 and merging is a plain sum.
        self.phases: Counter = Counter()

    # -- the observer --------------------------------------------------------

    def __call__(
        self,
        kind: str,
        process: str,
        request: Any,
        depth: int,
        fanout: int,
        created: bool,
    ) -> None:
        """The ``on_step`` observer protocol (see the class docstring)."""
        if kind == "schedule":
            self.nodes[(request.proc_name, request.node_id)] += 1
            obj = request.obj
            self.operations[(request.op, obj.name if obj is not None else None)] += 1
            self.processes[process] += 1
            self.depth_hist[depth] += 1
            if created:
                self.branching_hist[fanout] += 1
        else:  # "toss": fires at creation only
            self.tosses[(request.proc_name, request.node_id)] += 1
            self.branching_hist[fanout] += 1

    # -- aggregation ---------------------------------------------------------

    def add(self, other: "HotSpotProfiler") -> None:
        """Fold another profile in (coordinator merging worker profiles).

        Every field is a plain sum, so merging commutes and a parallel
        profile equals the sequential one."""
        self.nodes.update(other.nodes)
        self.operations.update(other.operations)
        self.processes.update(other.processes)
        self.tosses.update(other.tosses)
        self.depth_hist.update(other.depth_hist)
        self.branching_hist.update(other.branching_hist)
        self.phases.update(other.phases)

    @classmethod
    def merged(cls, parts) -> "HotSpotProfiler":
        """A fresh profile holding the sum of ``parts``."""
        out = cls()
        for part in parts:
            if part is not None:
                out.add(part)
        return out

    @property
    def total_transitions(self) -> int:
        """Transitions profiled; equals the search's
        ``transitions_executed``."""
        return sum(self.processes.values())

    # -- presentation --------------------------------------------------------

    def _ranked(self, counter: Counter) -> list[tuple[Any, int]]:
        """Deterministic ranking: by count descending, then key."""
        return sorted(counter.items(), key=lambda item: (-item[1], str(item[0])))

    def top_nodes(self, n: int = DEFAULT_TOP) -> list[tuple[tuple[str, int], int]]:
        """The ``n`` hottest CFG nodes as ``((proc, node_id), count)``."""
        return self._ranked(self.nodes)[:n]

    def top_tosses(self, n: int = DEFAULT_TOP) -> list[tuple[tuple[str, int], int]]:
        """The ``n`` hottest toss points as ``((proc, node_id), count)``."""
        return self._ranked(self.tosses)[:n]

    def top_operations(self, n: int = DEFAULT_TOP) -> list[tuple[tuple[str, str | None], int]]:
        """The ``n`` hottest operations as ``((op, obj), count)``."""
        return self._ranked(self.operations)[:n]

    @staticmethod
    def _histogram_line(hist: Counter) -> str:
        if not hist:
            return "(empty)"
        total = sum(hist.values())
        parts = [f"{key}:{hist[key]}" for key in sorted(hist)]
        return f"n={total}  " + " ".join(parts)

    def render_table(self, top: int = DEFAULT_TOP, system: Any = None) -> str:
        """The human-readable hot-spot report (``repro search --profile``).

        ``system`` (a :class:`repro.runtime.System`), when given,
        annotates CFG nodes with their source description.
        """

        def node_label(proc: str, node_id: int) -> str:
            label = f"{proc}:{node_id}"
            if system is not None:
                cfg = getattr(system, "cfgs", {}).get(proc)
                if cfg is not None and node_id in cfg.nodes:
                    label += f"  {cfg.nodes[node_id].describe()}"
            return label

        total = self.total_transitions
        lines = [f"hot spots ({total} transitions profiled)"]

        lines.append(f"\n  top {top} CFG nodes (visible-operation executions):")
        for rank, ((proc, node_id), count) in enumerate(self.top_nodes(top), 1):
            share = count / total if total else 0.0
            lines.append(
                f"    {rank:>2}. {count:>9}  {share:>6.1%}  {node_label(proc, node_id)}"
            )

        if self.tosses:
            toss_total = sum(self.tosses.values())
            lines.append(
                f"\n  top {top} toss points ({toss_total} choice points):"
            )
            for rank, ((proc, node_id), count) in enumerate(self.top_tosses(top), 1):
                share = count / toss_total if toss_total else 0.0
                lines.append(
                    f"    {rank:>2}. {count:>9}  {share:>6.1%}  {node_label(proc, node_id)}"
                )

        lines.append(f"\n  top {top} operations:")
        for rank, ((op, obj), count) in enumerate(self.top_operations(top), 1):
            share = count / total if total else 0.0
            where = f"{op}({obj})" if obj else op
            lines.append(f"    {rank:>2}. {count:>9}  {share:>6.1%}  {where}")

        lines.append("\n  scheduled transitions per process:")
        for process, count in self._ranked(self.processes):
            share = count / total if total else 0.0
            lines.append(f"    {count:>12}  {share:>6.1%}  {process}")

        lines.append(f"\n  depth histogram:     {self._histogram_line(self.depth_hist)}")
        lines.append(f"  branching histogram: {self._histogram_line(self.branching_hist)}")

        if self.phases:
            phase_total = sum(self.phases.values())
            lines.append("\n  wall seconds per explorer phase:")
            for phase, seconds in sorted(
                self.phases.items(), key=lambda item: (-item[1], item[0])
            ):
                share = seconds / phase_total if phase_total else 0.0
                lines.append(f"    {seconds:>12.4f}  {share:>6.1%}  {phase}")
        return "\n".join(lines)

    # -- serialization -------------------------------------------------------

    def as_dict(self) -> dict[str, Any]:
        """JSON-serializable snapshot (tuple keys become ``"a:b"``
        strings); embedded in ``--stats-json`` output and manifests."""

        def strkeys(counter: Counter) -> dict[str, int]:
            return {
                ":".join("" if part is None else str(part) for part in key)
                if isinstance(key, tuple)
                else str(key): count
                for key, count in sorted(
                    counter.items(), key=lambda item: (-item[1], str(item[0]))
                )
            }

        return {
            "total_transitions": self.total_transitions,
            "nodes": strkeys(self.nodes),
            "operations": strkeys(self.operations),
            "processes": strkeys(self.processes),
            "tosses": strkeys(self.tosses),
            "depth_hist": {str(k): v for k, v in sorted(self.depth_hist.items())},
            "branching_hist": {
                str(k): v for k, v in sorted(self.branching_hist.items())
            },
            "phases_s": {k: round(v, 6) for k, v in sorted(self.phases.items())},
        }
