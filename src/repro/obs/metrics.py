"""Prometheus textfile exporter for the job service.

``repro serve --metrics-out FILE`` keeps ``FILE`` updated with the
current state of the job store in the `Prometheus text exposition
format <https://prometheus.io/docs/instrumenting/exposition_formats/>`_,
ready for the node_exporter *textfile collector* (point
``--collector.textfile.directory`` at the parent directory).  No HTTP
server, no client library — just a file the scrape loop reads — which is
the right shape for a batch verification service: the exporter costs
nothing when nobody scrapes, and a crashed server leaves behind its
last-known state instead of a connection error.

The gauges mirror the live ``stats.json`` heartbeats each running job
already streams (:mod:`repro.service.jobs`): search counters, coverage
gauges and the pending-lease frontier depth, labelled by job id and
name.  Files are written atomically (write-to-temp + rename) so a
concurrent scrape never sees a half-written file.
"""

from __future__ import annotations

import os
import pathlib
from typing import Any, Iterable

__all__ = ["render_prometheus", "write_metrics"]

#: Job-state gauge values: every known state gets a series so dashboards
#: can sum over states without gaps appearing when a state empties.
_STATES = ("queued", "running", "stopped", "done", "failed")

#: stats.json heartbeat keys exported per job, with metric name and help.
_STAT_GAUGES: tuple[tuple[str, str, str], ...] = (
    ("states_visited", "states_visited", "Global states encountered by the search"),
    ("transitions_executed", "transitions_total", "Visible transitions executed"),
    ("paths_explored", "paths_total", "Exploration paths completed"),
    ("toss_points", "toss_points_total", "VS_toss decision points answered"),
    ("wall_time", "wall_time_seconds", "Search wall-clock time in seconds"),
    ("states_per_second", "states_per_second", "Search throughput, states per second"),
    ("coverage_nodes", "coverage_nodes", "Distinct CFG nodes covered so far"),
    ("coverage_nodes_total", "coverage_nodes_limit", "CFG nodes in the static universe"),
    ("frontier_pending", "frontier_pending_leases", "Pending subtree leases in the work-stealing frontier"),
    ("leases", "leases_total", "Subtree leases issued"),
    ("steals", "steals_total", "Leases stolen from busy workers"),
)


def _label_value(value: Any) -> str:
    """Escape a label value per the exposition format."""
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(**labels: Any) -> str:
    inner = ",".join(
        f'{key}="{_label_value(value)}"' for key, value in labels.items() if value is not None
    )
    return f"{{{inner}}}" if inner else ""


def render_prometheus(
    jobs: Iterable[dict[str, Any]],
    *,
    prefix: str = "repro",
) -> str:
    """Render job snapshots as Prometheus text format.

    Each snapshot is a dict with ``id``, ``name``, ``state`` and an
    optional ``stats`` block (a ``SearchStats.json_dict()`` payload, the
    same shape the service's ``stats.json`` heartbeats carry).  The
    per-state job counts and one labelled series per stat gauge are
    emitted; jobs without a heartbeat yet contribute only to the counts.
    """
    snapshots = list(jobs)
    lines: list[str] = []

    name = f"{prefix}_jobs"
    lines.append(f"# HELP {name} Jobs in the store, by state.")
    lines.append(f"# TYPE {name} gauge")
    counts = {state: 0 for state in _STATES}
    for snap in snapshots:
        counts[snap.get("state", "queued")] = counts.get(snap.get("state", "queued"), 0) + 1
    for state, count in counts.items():
        lines.append(f"{name}{_labels(state=state)} {count}")

    name = f"{prefix}_job_info"
    lines.append(f"# HELP {name} Per-job identity and current state (value is always 1).")
    lines.append(f"# TYPE {name} gauge")
    for snap in snapshots:
        lines.append(
            f"{name}{_labels(job=snap.get('id'), name=snap.get('name'), state=snap.get('state'))} 1"
        )

    coverage_percent_done = False
    for stat_key, metric, help_text in _STAT_GAUGES:
        series = []
        for snap in snapshots:
            stats = snap.get("stats") or {}
            value = stats.get(stat_key)
            if value is None:
                continue
            series.append((snap, value))
        if not series:
            continue
        name = f"{prefix}_{metric}"
        lines.append(f"# HELP {name} {help_text}")
        lines.append(f"# TYPE {name} gauge")
        for snap, value in series:
            rendered = f"{value:.6g}" if isinstance(value, float) else str(value)
            lines.append(f"{name}{_labels(job=snap.get('id'), name=snap.get('name'))} {rendered}")
        if stat_key == "coverage_nodes_total":
            coverage_percent_done = True

    if coverage_percent_done:
        name = f"{prefix}_coverage_percent"
        lines.append(f"# HELP {name} CFG node coverage percentage.")
        lines.append(f"# TYPE {name} gauge")
        for snap in snapshots:
            stats = snap.get("stats") or {}
            total = stats.get("coverage_nodes_total")
            if total:
                pct = 100.0 * stats.get("coverage_nodes", 0) / total
                lines.append(
                    f"{name}{_labels(job=snap.get('id'), name=snap.get('name'))} {pct:.4f}"
                )

    return "\n".join(lines) + "\n"


def write_metrics(
    jobs: Iterable[dict[str, Any]],
    path: str | pathlib.Path,
    *,
    prefix: str = "repro",
) -> pathlib.Path:
    """Atomically write the rendered metrics to ``path``.

    The textfile collector convention: write next to the target and
    rename into place, so a scrape never reads a torn file.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    tmp = target.with_name(target.name + ".tmp")
    tmp.write_text(render_prometheus(jobs, prefix=prefix))
    os.replace(tmp, target)
    return target
