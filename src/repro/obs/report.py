"""Self-contained HTML run reports from ``run.json`` manifests.

``repro report run.json -o report.html`` turns a run manifest (see
:mod:`repro.obs.manifest`) into a single HTML file with **zero external
assets** — inline CSS, no JavaScript, no fonts, no CDN — so it can be
attached to a CI run, mailed around, or archived next to the manifest
and still render identically years later.

Sections (each rendered only when its data is present in the manifest):

* run summary — verdict badge, headline counters, provenance
  (tool/engine/language ``meta`` block, git, host, command line);
* triage — violation groups with multiplicities;
* coverage — node/edge/toss-point tables from the embedded
  :meth:`~repro.obs.coverage.CoverageCollector.as_dict` payload,
  uncovered-code callouts, and (when the manifest embeds the program
  text) a per-source-line annotated listing;
* hot spots — top-N node/operation/toss tables from the embedded
  :class:`~repro.obs.profile.HotSpotProfiler` payload;
* workers — per-worker lease accounting of work-stealing runs.

Everything here is stdlib-only and pure (manifest dict in, HTML string
out), so it is equally usable as a library:

    from repro.obs.report import render_html
    html = render_html(json.loads(run_json_text))
"""

from __future__ import annotations

import html as _html
import json
import pathlib
from typing import Any

__all__ = ["render_html", "write_report"]


def _esc(value: Any) -> str:
    return _html.escape(str(value), quote=True)


_CSS = """
body { font-family: -apple-system, 'Segoe UI', Roboto, Helvetica, Arial,
       sans-serif; margin: 2rem auto; max-width: 70rem; padding: 0 1rem;
       color: #1b1f24; background: #ffffff; }
h1 { font-size: 1.5rem; border-bottom: 2px solid #d0d7de;
     padding-bottom: .4rem; }
h2 { font-size: 1.15rem; margin-top: 2rem; border-bottom: 1px solid
     #d0d7de; padding-bottom: .3rem; }
table { border-collapse: collapse; margin: .8rem 0; font-size: .9rem; }
th, td { border: 1px solid #d0d7de; padding: .3rem .6rem;
         text-align: left; vertical-align: top; }
th { background: #f6f8fa; }
td.num, th.num { text-align: right; font-variant-numeric: tabular-nums; }
.badge { display: inline-block; padding: .15rem .6rem; border-radius:
         .8rem; font-weight: 600; font-size: .85rem; color: #fff; }
.badge.ok { background: #1a7f37; }
.badge.bad { background: #cf222e; }
.badge.warn { background: #9a6700; }
.cards { display: flex; flex-wrap: wrap; gap: .8rem; margin: 1rem 0; }
.card { border: 1px solid #d0d7de; border-radius: .4rem; padding:
        .5rem .9rem; min-width: 7rem; background: #f6f8fa; }
.card .value { font-size: 1.3rem; font-weight: 600;
               font-variant-numeric: tabular-nums; }
.card .label { font-size: .75rem; color: #57606a;
               text-transform: uppercase; letter-spacing: .03em; }
.bar { display: inline-block; width: 8rem; height: .7rem; background:
       #eaeef2; border-radius: .35rem; overflow: hidden;
       vertical-align: middle; margin-right: .5rem; }
.bar span { display: block; height: 100%; background: #1a7f37; }
.bar.partial span { background: #9a6700; }
.bar.low span { background: #cf222e; }
.mono { font-family: ui-monospace, 'SF Mono', Menlo, Consolas,
        monospace; font-size: .85rem; }
.callout { border-left: 4px solid #cf222e; background: #fff1f0;
           padding: .5rem .8rem; margin: .6rem 0; font-size: .9rem; }
.callout.info { border-color: #0969da; background: #f0f6ff; }
pre.src { border: 1px solid #d0d7de; border-radius: .4rem; padding: 0;
          overflow-x: auto; font-size: .8rem; line-height: 1.45;
          font-family: ui-monospace, 'SF Mono', Menlo, Consolas,
          monospace; }
pre.src .ln { display: block; margin: 0; padding: 0 .6rem;
              white-space: pre; }
pre.src .ln .no { display: inline-block; width: 3.2rem; color: #8c959f;
                  text-align: right; padding-right: .8rem;
                  user-select: none; }
pre.src .ln .ct { display: inline-block; width: 4rem; color: #57606a;
                  text-align: right; padding-right: .8rem; }
pre.src .hit { background: #dafbe1; }
pre.src .miss { background: #ffd8d3; }
footer { margin-top: 3rem; color: #57606a; font-size: .8rem;
         border-top: 1px solid #d0d7de; padding-top: .5rem; }
"""


def _bar(percent: float) -> str:
    cls = "bar" if percent >= 99.995 else ("bar partial" if percent >= 50 else "bar low")
    width = max(0.0, min(100.0, percent))
    return (
        f'<span class="{cls}"><span style="width:{width:.1f}%"></span></span>'
        f"{percent:.1f}%"
    )


def _cards(pairs: list[tuple[str, Any]]) -> str:
    cells = "".join(
        f'<div class="card"><div class="value">{_esc(value)}</div>'
        f'<div class="label">{_esc(label)}</div></div>'
        for label, value in pairs
        if value is not None
    )
    return f'<div class="cards">{cells}</div>'


def _table(headers: list[str], rows: list[list[str]], numeric: set[int] = frozenset()) -> str:
    """Rows are pre-escaped/pre-rendered HTML cell strings."""
    head = "".join(
        f'<th class="num">{h}</th>' if i in numeric else f"<th>{h}</th>"
        for i, h in enumerate(headers)
    )
    body = "".join(
        "<tr>"
        + "".join(
            f'<td class="num">{cell}</td>' if i in numeric else f"<td>{cell}</td>"
            for i, cell in enumerate(row)
        )
        + "</tr>"
        for row in rows
    )
    return f"<table><thead><tr>{head}</tr></thead><tbody>{body}</tbody></table>"


# ---------------------------------------------------------------------------
# Sections
# ---------------------------------------------------------------------------


def _summary_section(manifest: dict) -> str:
    report = manifest.get("report") or {}
    meta = manifest.get("meta") or {}
    stats = report.get("stats") or {}
    ok = report.get("ok")
    if ok is None:
        badge = '<span class="badge warn">no report</span>'
    elif ok:
        badge = '<span class="badge ok">clean</span>'
    else:
        badge = '<span class="badge bad">violations</span>'
    flags = []
    if report.get("truncated"):
        flags.append('<span class="badge warn">truncated</span>')
    if report.get("incomplete"):
        flags.append('<span class="badge warn">incomplete</span>')

    sps = stats.get("states_per_second")
    coverage_pct = stats.get("coverage_percent")
    cards = _cards(
        [
            ("paths", report.get("paths_explored")),
            ("states", report.get("states_visited")),
            ("transitions", report.get("transitions_executed")),
            ("states/s", None if sps is None else f"{sps:,.0f}"),
            ("wall time", None if "wall_time" not in stats else f"{stats['wall_time']:.2f}s"),
            ("coverage", None if coverage_pct is None else f"{coverage_pct:.1f}%"),
            ("violation groups", report.get("violation_groups")),
        ]
    )

    prov_rows = []
    for label, value in [
        ("tool", f"{meta.get('tool', 'repro')} {meta.get('version', '?')}"),
        ("engine", meta.get("engine")),
        ("language", meta.get("language")),
        ("strategy", stats.get("strategy")),
        ("jobs", stats.get("jobs") or None),
        ("created", manifest.get("created")),
        ("system fingerprint", manifest.get("system_fingerprint")),
        ("git", (manifest.get("git") or {}).get("describe") or (manifest.get("git") or {}).get("commit")),
        ("host", (manifest.get("host") or {}).get("hostname")),
        ("command", " ".join(manifest.get("argv") or []) or None),
    ]:
        if value is not None:
            prov_rows.append([_esc(label), f'<span class="mono">{_esc(value)}</span>'])

    summary_line = report.get("summary")
    line = (
        f'<p class="mono">{_esc(summary_line)}</p>' if summary_line else ""
    )
    return (
        f"<h2>Run summary</h2><p>{badge} {' '.join(flags)}</p>"
        + cards
        + line
        + _table(["", ""], prov_rows)
    )


def _triage_section(manifest: dict) -> str:
    report = manifest.get("report") or {}
    groups = report.get("triage")
    if not groups:
        return ""
    rows = [
        [_esc(g.get("kind", "?")), _esc(g.get("count", "?")), _esc(g.get("label", ""))]
        for g in groups
    ]
    return "<h2>Violation groups</h2>" + _table(
        ["kind", "count", "signature"], rows, numeric={1}
    )


def _node_label(static: dict, proc: str, nid: str) -> str:
    info = ((static.get("procs") or {}).get(proc) or {}).get("nodes", {}).get(str(nid))
    if not info:
        return f"{proc}:{nid}"
    where = f" line {info['line']}" if info.get("line", 0) > 0 else ""
    return f"{proc}:{nid} ({info.get('kind', '?')}{where})"


def _coverage_section(manifest: dict) -> str:
    report = manifest.get("report") or {}
    coverage = report.get("coverage")
    if not coverage:
        return ""
    summary = coverage.get("summary") or {}
    static = coverage.get("static") or {}
    out = ["<h2>Coverage</h2>"]
    nodes_total = summary.get("nodes_total", 0)
    node_pct = summary.get("node_percent", 0.0)
    out.append(
        _cards(
            [
                ("nodes", f"{summary.get('nodes_covered', 0)}/{nodes_total}"),
                ("edges", f"{summary.get('edges_covered', 0)}/{summary.get('edges_total', 0)}"),
                (
                    "toss points",
                    f"{summary.get('toss_points_covered', 0)}/{summary.get('toss_points_total', 0)}",
                ),
                (
                    "source lines",
                    None
                    if not summary.get("lines_total")
                    else f"{summary.get('lines_reached', 0)}/{summary.get('lines_total', 0)}",
                ),
            ]
        )
    )

    # Per-procedure node coverage.
    procs = coverage.get("procs") or {}
    if procs:
        rows = []
        for proc_name in sorted(procs):
            info = procs[proc_name]
            total = info.get("nodes_total", 0)
            covered = info.get("nodes_covered", 0)
            pct = 100.0 * covered / total if total else 0.0
            unreached = info.get("unreached") or []
            rows.append(
                [
                    f'<span class="mono">{_esc(proc_name)}</span>',
                    f"{covered}/{total}",
                    _bar(pct),
                    _esc(", ".join(map(str, unreached))) if unreached else "&mdash;",
                ]
            )
        out.append("<h3>Per procedure</h3>")
        out.append(_table(["procedure", "nodes", "coverage", "unreached node ids"], rows, numeric={1}))

    # Per-process coverage (each process only sees its reachable procs).
    processes = coverage.get("processes") or {}
    if processes:
        rows = []
        for name in sorted(processes):
            info = processes[name]
            total = info.get("nodes_total", 0)
            covered = info.get("nodes_covered", 0)
            pct = 100.0 * covered / total if total else 0.0
            rows.append(
                [
                    f'<span class="mono">{_esc(name)}</span>',
                    _esc(", ".join(info.get("procs") or [])),
                    f"{covered}/{total}",
                    _bar(pct),
                ]
            )
        out.append("<h3>Per process</h3>")
        out.append(_table(["process", "procedures", "nodes", "coverage"], rows, numeric={2}))

    # Environment-input (toss) coverage — after closing, every extern
    # call site is a toss point, so this is extern-call coverage too.
    toss = coverage.get("toss_values") or {}
    if toss:
        rows = []
        for key in sorted(toss):
            point = toss[key]
            bound = point.get("bound")
            values = point.get("values") or {}
            missing = point.get("missing") or []
            proc, _, nid = key.rpartition(":")
            seen = ", ".join(
                f"{value}&times;{count}" for value, count in sorted(
                    values.items(), key=lambda item: int(item[0])
                )
            )
            rows.append(
                [
                    f'<span class="mono">{_esc(_node_label(static, proc, nid))}</span>',
                    "?" if bound is None else f"0&ndash;{bound}",
                    seen or "&mdash;",
                    _esc(", ".join(map(str, missing))) if missing else "&mdash;",
                ]
            )
        out.append("<h3>Environment inputs (toss points)</h3>")
        out.append(_table(["toss point", "range", "values seen (&times; count)", "never driven"], rows))

    # Uncovered-code callouts.
    callouts = []
    for proc_name in sorted(procs):
        for nid in procs[proc_name].get("unreached") or []:
            callouts.append(_node_label(static, proc_name, nid))
    if callouts:
        items = "".join(f"<li><span class='mono'>{_esc(c)}</span></li>" for c in callouts)
        out.append(
            f'<div class="callout"><strong>Never executed:</strong>'
            f"<ul>{items}</ul></div>"
        )
    missing_lines = summary.get("lines_missing") or []
    if missing_lines:
        out.append(
            '<div class="callout"><strong>Source lines never executed:</strong> '
            + _esc(", ".join(map(str, missing_lines)))
            + "</div>"
        )
    elif summary.get("lines_total"):
        out.append(
            '<div class="callout info">Every source line with executable '
            "code was reached.</div>"
        )
    return "".join(out)


def _line_counts(coverage: dict) -> dict[int, tuple[int, int, int]]:
    """line -> (nodes, covered, visit count), from the embedded payload."""
    static = coverage.get("static") or {}
    counts = coverage.get("nodes") or {}
    lines: dict[int, list[int]] = {}
    for proc_name, proc in (static.get("procs") or {}).items():
        for nid, info in (proc.get("nodes") or {}).items():
            line = info.get("line", 0)
            if line <= 0:
                continue
            entry = lines.setdefault(line, [0, 0, 0])
            entry[0] += 1
            count = counts.get(f"{proc_name}:{nid}", 0)
            if count:
                entry[1] += 1
                entry[2] += count
    return {line: tuple(entry) for line, entry in lines.items()}


def _source_section(manifest: dict) -> str:
    program = manifest.get("program") or {}
    text = program.get("text")
    coverage = (manifest.get("report") or {}).get("coverage")
    if not text or not coverage:
        return ""
    lines = _line_counts(coverage)
    rendered = []
    for number, content in enumerate(text.splitlines(), start=1):
        entry = lines.get(number)
        if entry is None:
            cls, count = "", ""
        elif entry[1]:
            cls, count = "hit", f"{entry[2]}&times;"
        else:
            cls, count = "miss", "0"
        rendered.append(
            f'<span class="ln {cls}"><span class="no">{number}</span>'
            f'<span class="ct">{count}</span>{_esc(content) or " "}</span>'
        )
    name = program.get("path") or "program"
    return (
        f"<h2>Source coverage &mdash; <span class='mono'>{_esc(name)}</span></h2>"
        '<pre class="src">' + "".join(rendered) + "</pre>"
    )


def _profile_section(manifest: dict, top: int = 10) -> str:
    profile = (manifest.get("report") or {}).get("profile")
    if not profile:
        return ""
    out = ["<h2>Hot spots</h2>"]
    for key, title in [
        ("nodes", "CFG nodes"),
        ("operations", "Visible operations"),
        ("tosses", "Toss points"),
    ]:
        counter = profile.get(key) or {}
        if not counter:
            continue
        rows = [
            [f'<span class="mono">{_esc(name)}</span>', f"{count:,}"]
            for name, count in list(counter.items())[:top]
        ]
        out.append(f"<h3>{title}</h3>")
        out.append(_table([title.lower(), "count"], rows, numeric={1}))
    return "".join(out)


def _workers_section(manifest: dict) -> str:
    workers = (manifest.get("report") or {}).get("workers")
    if not workers:
        return ""
    rows = [
        [
            f'<span class="mono">{_esc(label)}</span>',
            _esc(info.get("leases", 0)),
            _esc(info.get("stolen_from", 0)),
            "yes" if info.get("alive", True) else "no",
        ]
        for label, info in sorted(workers.items())
    ]
    return "<h2>Workers</h2>" + _table(
        ["worker", "leases", "stolen from", "alive at exit"], rows, numeric={1, 2}
    )


def render_html(manifest: dict) -> str:
    """Render a ``run.json`` manifest dict as a self-contained HTML page."""
    meta = manifest.get("meta") or {}
    title = "repro run report"
    program = (manifest.get("program") or {}).get("path")
    if program:
        title += f" — {program}"
    sections = [
        _summary_section(manifest),
        _triage_section(manifest),
        _coverage_section(manifest),
        _source_section(manifest),
        _profile_section(manifest),
        _workers_section(manifest),
    ]
    version = meta.get("version") or (manifest.get("tool") or {}).get("version", "?")
    return (
        "<!DOCTYPE html>\n"
        '<html lang="en"><head><meta charset="utf-8">\n'
        f"<title>{_esc(title)}</title>\n"
        f"<style>{_CSS}</style></head>\n"
        f"<body><h1>{_esc(title)}</h1>\n"
        + "\n".join(section for section in sections if section)
        + f"\n<footer>generated by repro {_esc(version)} from "
        f"manifest version {_esc(manifest.get('manifest_version', '?'))}"
        "</footer></body></html>\n"
    )


def write_report(manifest: dict, path: str | pathlib.Path) -> pathlib.Path:
    """Render ``manifest`` and write the HTML to ``path``."""
    out = pathlib.Path(path)
    out.parent.mkdir(parents=True, exist_ok=True)
    out.write_text(render_html(manifest))
    return out


def load_manifest(path: str | pathlib.Path) -> dict:
    """Read a ``run.json`` manifest file."""
    return json.loads(pathlib.Path(path).read_text())
