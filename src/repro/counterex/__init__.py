"""The counterexample engine: persistence, replay, shrinking, triage.

The point of closing an open program is to hand it to the VeriSoft-style
explorer and get back *reproducible erroneous scenarios* — and a
scenario is only useful if it outlives the process that found it, is
small enough to read, and is not one of fifty duplicates.  This package
layers those three concerns on the stateless runtime:

* :mod:`repro.counterex.traceio` — a versioned JSON trace format with
  save/load, carrying the choice sequence, the violation, the system
  fingerprint and the search metadata (``repro search --save-traces``);
* :mod:`repro.counterex.replay` — replay from disk with a precise
  divergence diagnosis when the program has changed (``repro replay``);
* :mod:`repro.counterex.shrink` — ddmin over the choice sequence plus
  greedy toss-value minimization, with deterministic re-execution as
  the oracle (``repro shrink``);
* :mod:`repro.counterex.triage` — stable violation signatures, dedup
  and grouping across a search's events (``report.triage()``).
"""

from .replay import (
    IncrementalReplayer,
    ReplayOutcome,
    ReplayVerdict,
    reproduces,
    run_choices,
    verify_trace,
)
from .shrink import ShrinkError, ShrinkResult, ddmin, shrink, shrink_choices
from .traceio import (
    FORMAT,
    VERSION,
    TraceFile,
    TraceFormatError,
    load_trace,
    save_report_traces,
    save_trace,
    trace_file_for_event,
)
from .triage import (
    Signature,
    ViolationGroup,
    describe_groups,
    event_kind,
    event_signature,
    group_events,
    source_anchor,
)

__all__ = [
    "FORMAT",
    "IncrementalReplayer",
    "ReplayOutcome",
    "ReplayVerdict",
    "ShrinkError",
    "ShrinkResult",
    "Signature",
    "TraceFile",
    "TraceFormatError",
    "VERSION",
    "ViolationGroup",
    "ddmin",
    "describe_groups",
    "event_kind",
    "event_signature",
    "group_events",
    "load_trace",
    "reproduces",
    "run_choices",
    "save_report_traces",
    "save_trace",
    "shrink",
    "shrink_choices",
    "source_anchor",
    "trace_file_for_event",
    "verify_trace",
]
