"""Violation triage: stable signatures, dedup and grouping.

A long search (or a merged parallel search) typically reports the same
*defect* many times — dozens of interleavings all ending in the same
lock-order deadlock, the same assertion failing on every path through a
buggy branch.  Handing a user 25 traces for one bug is noise; triage
collapses them.

The unit of identity is the **violation signature**: a stable, hashable
tuple of the event's *kind* and *location* — the sorted blocked set and
pending operations for a deadlock, the assertion site (procedure +
node) for an assertion violation, the process and fault message for a
crash, the process for a divergence.  Crucially the signature does
*not* include the trace: two different schedules reaching the same bad
place are the same violation.

:func:`group_events` partitions a report's events into
:class:`ViolationGroup` buckets in first-seen order (deterministic, so
``jobs=1`` and ``jobs=N`` parallel searches triage identically — the
merge is order-stable) and elects the *shortest* trace of each group as
its representative, the natural starting point for shrinking
(:mod:`repro.counterex.shrink`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

from ..verisoft.results import (
    AssertionViolationEvent,
    CrashEvent,
    DeadlockEvent,
    DivergenceEvent,
)

#: A stable, hashable violation identity: ``(kind, *location)``.
Signature = tuple

#: Event classes by trace-format kind string (see
#: :mod:`repro.counterex.traceio`).
EVENT_KINDS = {
    "deadlock": DeadlockEvent,
    "assertion": AssertionViolationEvent,
    "crash": CrashEvent,
    "divergence": DivergenceEvent,
}


def event_kind(event: Any) -> str:
    """The trace-format kind string of an event (``"deadlock"``,
    ``"assertion"``, ``"crash"`` or ``"divergence"``)."""
    for kind, cls in EVENT_KINDS.items():
        if isinstance(event, cls):
            return kind
    raise TypeError(f"not a violation event: {event!r}")


def event_signature(event: Any) -> Signature:
    """The stable identity of a violation, independent of its trace.

    * deadlock — the sorted blocked-process set with each process's
      pending operation (the *shape* of the stuck state);
    * assertion — the assertion site: procedure name + CFG node id;
    * crash — the crashing process and fault message;
    * divergence — the diverging process.
    """
    if isinstance(event, DeadlockEvent):
        if event.waiting:
            stuck = tuple(sorted(event.waiting))
        else:
            stuck = tuple((name, "?", None) for name in sorted(event.blocked))
        return ("deadlock", stuck)
    if isinstance(event, AssertionViolationEvent):
        return ("assertion", event.proc_name, event.node_id)
    if isinstance(event, CrashEvent):
        return ("crash", event.process, event.message)
    if isinstance(event, DivergenceEvent):
        return ("divergence", event.process)
    raise TypeError(f"not a violation event: {event!r}")


def signature_to_json(signature: Signature) -> list:
    """Signature as JSON-serializable nested lists (tuples become
    lists; the inverse of :func:`signature_from_json`)."""

    def convert(value):
        if isinstance(value, tuple):
            return [convert(item) for item in value]
        return value

    return convert(signature)


def signature_from_json(payload: list) -> Signature:
    """Rebuild a hashable signature tuple from its JSON list form."""

    def convert(value):
        if isinstance(value, list):
            return tuple(convert(item) for item in value)
        return value

    return convert(payload)


@dataclass
class ViolationGroup:
    """All recorded events sharing one violation signature."""

    signature: Signature
    events: list = field(default_factory=list)

    @property
    def kind(self) -> str:
        """The kind string of the group's signature."""
        return self.signature[0]

    @property
    def count(self) -> int:
        """How many recorded events fell into this group."""
        return len(self.events)

    @property
    def representative(self):
        """The event with the shortest non-empty trace (ties broken by
        report order); the best candidate for saving and shrinking.
        Falls back to the first event when every trace is empty (events
        past the ``max_events`` cap are recorded trace-less)."""
        traced = [e for e in self.events if e.trace.choices]
        if not traced:
            return self.events[0]
        return min(traced, key=lambda e: len(e.trace.choices))

    def describe(self, system=None, program: str | None = None) -> str:
        """One-line rendering: kind, location, multiplicity.

        With ``system`` (and optionally the ``program`` file name) the
        assertion site is anchored back to its source line — for a
        Python-frontend system that is the ``.py`` file and line of the
        failing ``assert``."""
        loc = ", ".join(str(part) for part in signature_to_json(self.signature)[1:])
        times = "once" if self.count == 1 else f"{self.count} times"
        anchor = source_anchor(self.signature, system, program)
        where = f" ({anchor})" if anchor else ""
        return f"{self.kind} at [{loc}]{where} seen {times}"


def group_events(events: Iterable[Any]) -> list[ViolationGroup]:
    """Partition events into signature groups, in first-seen order.

    The ordering is deterministic for a deterministic event list, and
    the parallel driver's merge is order-stable, so sequential and
    merged parallel reports of the same search produce byte-identical
    groupings.
    """
    groups: dict[Signature, ViolationGroup] = {}
    for event in events:
        signature = event_signature(event)
        group = groups.get(signature)
        if group is None:
            group = groups[signature] = ViolationGroup(signature)
        group.events.append(event)
    return list(groups.values())


def source_anchor(signature: Signature, system, program: str | None = None) -> str | None:
    """The ``file:line`` (or ``line N``) a signature points at, if known.

    Assertion signatures carry their CFG node id; the node's
    :class:`~repro.lang.errors.SourceLocation` survives the closing
    transformation, so for front-end programs (``.py``, ``.c``) the
    anchor lands on the original source line of the ``assert``."""
    if system is None or not signature or signature[0] != "assertion":
        return None
    _, proc_name, node_id = signature[:3]
    cfg = getattr(system, "cfgs", {}).get(proc_name)
    if cfg is None:
        return None
    node = cfg.nodes.get(node_id)
    if node is None or node.location is None or node.location.line <= 0:
        return None
    if program:
        return f"{program}:{node.location.line}"
    return f"line {node.location.line}"


def describe_groups(
    groups: list[ViolationGroup], system=None, program: str | None = None
) -> str:
    """The triage report: ``"N violations in K distinct groups"`` plus
    one line per group (the CLI's post-search rendering).  ``system``
    and ``program`` enable source anchors — see
    :meth:`ViolationGroup.describe`."""
    total = sum(group.count for group in groups)
    noun = "violation" if total == 1 else "violations"
    group_noun = "group" if len(groups) == 1 else "groups"
    lines = [f"{total} {noun} in {len(groups)} distinct {group_noun}"]
    for index, group in enumerate(groups):
        lines.append(f"  [{index}] {group.describe(system, program)}")
    return "\n".join(lines)
