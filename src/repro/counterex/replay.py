"""Replay persisted traces and diagnose divergence.

Re-executing a choice sequence on a deterministic runtime either
reproduces the recorded violation exactly or tells you something
changed.  :func:`run_choices` is the shared execution engine (also the
shrinking oracle's substrate): it applies a choice sequence via
:func:`repro.verisoft.explorer.replay`, observes every assertion
outcome, and classifies the final state — collecting typed violation
events exactly as the explorer would have recorded them.
:class:`IncrementalReplayer` is the checkpoint-reusing variant for
query-heavy callers (shrinking): one journaled run, rewound to the
common prefix of consecutive candidates instead of re-executed from
the initial state.

:func:`verify_trace` layers the diagnosis on top for ``repro replay``:
given a loaded :class:`~repro.counterex.traceio.TraceFile` and a
rebuilt system it reports one of

* ``reproduced`` — the recorded violation signature occurred again;
* ``diverged`` — a recorded choice no longer applies (the program
  changed shape: a process is missing, an operation is disabled, a
  ``VS_toss`` bound shrank), with the failing index and reason;
* ``different-violation`` — the replay succeeded but ended in a
  *different* violation signature;
* ``no-violation`` — the replay succeeded and nothing went wrong (the
  bug was fixed, or the trace is stale).

A system-fingerprint mismatch is reported alongside whichever verdict
applies: a changed fingerprint *explains* a divergence, while
``reproduced`` despite a changed fingerprint means the edit did not
affect this scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..runtime.process import ProcessStatus
from ..runtime.system import Run, System
from ..verisoft.explorer import ReplayMismatch, _blocked_info, apply_choice, replay
from ..verisoft.results import (
    AssertionViolationEvent,
    Choice,
    CrashEvent,
    DeadlockEvent,
    DivergenceEvent,
    Trace,
    TraceStep,
)
from .traceio import TraceFile
from .triage import Signature, event_signature


@dataclass
class ReplayOutcome:
    """What actually happened when a choice sequence was re-executed."""

    #: Choices successfully applied (== ``len(choices)`` iff no mismatch).
    applied: int
    #: The structured mismatch, when a choice failed to apply.
    mismatch: ReplayMismatch | None
    #: The executed trace: applied choices + reconstructed steps.
    trace: Trace
    #: Typed violation events observed (assertion violations as they
    #: fired; deadlock / crash / divergence from the final state).
    events: list = field(default_factory=list)
    #: The final run, for state inspection (``None`` after a mismatch).
    run: Run | None = None

    @property
    def ok(self) -> bool:
        """Every choice applied cleanly."""
        return self.mismatch is None

    def signatures(self) -> list[Signature]:
        """Triage signatures of the observed events, in order."""
        return [event_signature(event) for event in self.events]


def run_choices(
    system: System,
    choices: tuple[Choice, ...] | list,
    tracer: Any | None = None,
    engine: str = "walk",
) -> ReplayOutcome:
    """Deterministically re-execute ``choices`` and observe violations.

    Never raises on divergence — a failed choice yields an outcome with
    ``ok=False`` and the mismatch recorded, which is exactly the "this
    candidate does not reproduce" answer the shrinking oracle needs.

    ``tracer`` (a :class:`~repro.obs.tracer.Tracer`), when given,
    records the whole re-execution as one ``"replay"`` span carrying
    the prefix length — replay prefixes show up on the run timeline.
    ``engine`` picks the execution engine; both engines replay any
    trace identically (the choice tree is engine-independent).
    """
    if tracer is not None:
        with tracer.span("replay", cat="replay", n_choices=len(choices)):
            return run_choices(system, choices, engine=engine)
    choices = tuple(choices)
    steps: list[TraceStep] = []
    events: list[Any] = []
    applied = 0

    def on_step(index: int, choice: Choice, request, outcome) -> None:
        nonlocal applied
        applied = index + 1
        if request is not None:
            obj_name = request.obj.name if request.obj is not None else None
            steps.append(TraceStep(choice.process, request.op, obj_name, ""))
        if outcome is not None and outcome.violated:
            events.append(
                AssertionViolationEvent(
                    Trace(choices[:applied], tuple(steps)),
                    outcome.process,
                    outcome.proc_name,
                    outcome.node_id,
                )
            )

    try:
        run = replay(system, choices, on_step=on_step, engine=engine)
    except ReplayMismatch as mismatch:
        return ReplayOutcome(
            applied=applied,
            mismatch=mismatch,
            trace=Trace(choices[:applied], tuple(steps)),
            events=events,
            run=None,
        )

    trace = Trace(choices, tuple(steps))
    for process in run.processes:
        if process.status is ProcessStatus.CRASHED:
            events.append(CrashEvent(trace, process.name, str(process.crash)))
        elif process.status is ProcessStatus.DIVERGED:
            events.append(DivergenceEvent(trace, process.name))
    if run.is_deadlock():
        events.append(DeadlockEvent(trace, *_blocked_info(run)))
    return ReplayOutcome(
        applied=applied, mismatch=None, trace=trace, events=events, run=run
    )


class IncrementalReplayer:
    """A checkpoint-reusing drop-in for :func:`run_choices`.

    The shrinking oracle executes thousands of candidate choice
    sequences that differ only in a suffix (ddmin complements, toss
    tweaks).  A plain oracle re-executes each candidate from the initial
    state; this replayer instead keeps **one journaled run** alive with
    an undo-journal checkpoint *before every applied choice*.  A query
    rewinds the live run to the end of the common prefix with the
    previously applied sequence (O(changes), see
    :mod:`repro.runtime.journal`) and executes only the differing
    suffix.

    Checkpoints are undo-journal marks, so only *ancestor* restores are
    possible — exactly what prefix truncation produces: rewinding to
    prefix length ``k`` invalidates the checkpoints past ``k``, which
    are discarded along with the replayed records.

    Semantics match :func:`run_choices` choice-for-choice: validation in
    :func:`~repro.verisoft.explorer.apply_choice` happens before any
    mutation, so a rejected candidate leaves the live run at the last
    successfully applied choice — still a valid frontier for the next
    query.  The returned outcome's ``run`` is the shared live run (do
    not hold on to it across queries); after a mismatch it is ``None``,
    like the plain function.

    Requires ``system.journalable()`` — construction raises
    :class:`ValueError` otherwise so callers can fall back to
    :func:`run_choices`.
    """

    def __init__(self, system: System, engine: str = "walk"):
        if not system.journalable():
            raise ValueError(
                "system has non-journalable communication objects; "
                "use run_choices() instead"
            )
        self._run = system.start(journal=True, engine=engine)
        self._run.start_processes()
        #: Choices currently applied to the live run.
        self._applied: list[Choice] = []
        #: Per applied choice: (TraceStep | None, violation info | None)
        #: where the violation info is ``(process, proc_name, node_id)``.
        self._records: list[tuple[Any, Any]] = []
        #: ``_checkpoints[i]`` = state *before* choice ``i``;
        #: ``_checkpoints[-1]`` = the current state (len == applied + 1).
        self._checkpoints = [self._run.checkpoint()]
        # -- telemetry ---------------------------------------------------
        #: Queries answered.
        self.queries = 0
        #: Choices executed for real (suffixes past the common prefix).
        self.choices_applied = 0
        #: Choices answered from the retained prefix (no re-execution).
        self.choices_reused = 0

    @property
    def restores(self) -> int:
        """Checkpoint restores performed (from the run's journal)."""
        return self._run.journal.restores

    def run_choices(self, choices) -> ReplayOutcome:
        """Execute ``choices``, reusing the retained common prefix."""
        choices = tuple(choices)
        self.queries += 1

        prefix = 0
        limit = min(len(choices), len(self._applied))
        while prefix < limit and choices[prefix] == self._applied[prefix]:
            prefix += 1
        self.choices_reused += prefix

        if prefix < len(self._applied):
            self._run.restore(self._checkpoints[prefix])
            del self._applied[prefix:]
            del self._records[prefix:]
            del self._checkpoints[prefix + 1 :]

        mismatch: ReplayMismatch | None = None
        for index in range(prefix, len(choices)):
            choice = choices[index]
            try:
                request, outcome = apply_choice(self._run, index, choice)
            except ReplayMismatch as exc:
                mismatch = exc
                break
            self.choices_applied += 1
            step = None
            if request is not None:
                obj_name = request.obj.name if request.obj is not None else None
                step = TraceStep(choice.process, request.op, obj_name, "")
            violation = None
            if outcome is not None and outcome.violated:
                violation = (outcome.process, outcome.proc_name, outcome.node_id)
            self._applied.append(choice)
            self._records.append((step, violation))
            self._checkpoints.append(self._run.checkpoint())

        # Rebuild the outcome from the per-choice records, so reused
        # prefix choices contribute their steps/violations exactly as a
        # from-scratch execution would have recorded them.
        steps: list[TraceStep] = []
        events: list[Any] = []
        applied = len(self._applied)
        for i, (step, violation) in enumerate(self._records):
            if step is not None:
                steps.append(step)
            if violation is not None:
                events.append(
                    AssertionViolationEvent(
                        Trace(choices[: i + 1], tuple(steps)), *violation
                    )
                )
        if mismatch is not None:
            return ReplayOutcome(
                applied=applied,
                mismatch=mismatch,
                trace=Trace(choices[:applied], tuple(steps)),
                events=events,
                run=None,
            )
        trace = Trace(choices, tuple(steps))
        for process in self._run.processes:
            if process.status is ProcessStatus.CRASHED:
                events.append(CrashEvent(trace, process.name, str(process.crash)))
            elif process.status is ProcessStatus.DIVERGED:
                events.append(DivergenceEvent(trace, process.name))
        if self._run.is_deadlock():
            events.append(DeadlockEvent(trace, *_blocked_info(self._run)))
        return ReplayOutcome(
            applied=applied,
            mismatch=None,
            trace=trace,
            events=events,
            run=self._run,
        )


def reproduces(system: System, choices, signature: Signature) -> bool:
    """The shrinking / replay oracle: does executing ``choices`` on
    ``system`` produce a violation with exactly ``signature``?"""
    outcome = run_choices(system, choices)
    return outcome.ok and signature in outcome.signatures()


@dataclass
class ReplayVerdict:
    """The diagnosis of replaying one persisted trace."""

    #: ``"reproduced"`` | ``"diverged"`` | ``"different-violation"`` |
    #: ``"no-violation"``.
    status: str
    #: Human-readable diagnosis lines.
    detail: str
    #: Whether the current system fingerprint matches the recorded one
    #: (``None`` when the trace carries no fingerprint).
    fingerprint_matched: bool | None
    #: The raw execution outcome.
    outcome: ReplayOutcome

    @property
    def ok(self) -> bool:
        """The recorded violation reproduced."""
        return self.status == "reproduced"


def verify_trace(
    system: System, trace_file: TraceFile, engine: str = "walk"
) -> ReplayVerdict:
    """Replay a loaded trace file against ``system`` and diagnose.

    See the module docstring for the verdict taxonomy.  ``engine``
    picks the execution engine for the re-execution; when it differs
    from the engine recorded in the trace's search metadata a note is
    attached (the engines are observationally identical, so this never
    changes the verdict — the note is provenance, not a warning about
    correctness).
    """
    target = trace_file.signature()
    fingerprint_matched: bool | None = None
    notes: list[str] = []
    recorded_engine = trace_file.search.get("engine") or trace_file.search.get(
        "options", {}
    ).get("engine")
    if recorded_engine is not None and recorded_engine != engine:
        notes.append(
            f"engine mismatch: trace was found under the {recorded_engine!r} "
            f"engine, replaying under {engine!r} (engines are "
            "observationally identical; result is unaffected)"
        )
    if trace_file.fingerprint:
        current = system.fingerprint()
        fingerprint_matched = current == trace_file.fingerprint
        if not fingerprint_matched:
            notes.append(
                "system fingerprint mismatch: trace was captured on "
                f"{trace_file.fingerprint}, this system is {current} — "
                "the program or system description has changed"
            )

    outcome = run_choices(system, trace_file.trace.choices, engine=engine)

    if not outcome.ok:
        mismatch = outcome.mismatch
        notes.insert(
            0,
            f"replay diverged at choice {mismatch.index} of "
            f"{len(trace_file.trace.choices)} "
            f"({mismatch.choice.describe()}): {mismatch.reason}",
        )
        if fingerprint_matched is True:
            notes.append(
                "fingerprint matches, so this indicates trace corruption "
                "or a nondeterministic runtime — please report it"
            )
        return ReplayVerdict("diverged", "\n".join(notes), fingerprint_matched, outcome)

    found = outcome.signatures()
    if target in found:
        notes.insert(
            0,
            f"reproduced: {trace_file.kind} violation after "
            f"{len(trace_file.trace.choices)} choices",
        )
        return ReplayVerdict(
            "reproduced", "\n".join(notes), fingerprint_matched, outcome
        )
    if found:
        listed = "; ".join(str(sig) for sig in found)
        notes.insert(
            0,
            "replay succeeded but produced a different violation: "
            f"expected {target}, observed {listed}",
        )
        return ReplayVerdict(
            "different-violation", "\n".join(notes), fingerprint_matched, outcome
        )
    notes.insert(
        0,
        "replay succeeded with no violation: the recorded "
        f"{trace_file.kind} did not occur (bug fixed, or stale trace)",
    )
    return ReplayVerdict("no-violation", "\n".join(notes), fingerprint_matched, outcome)
