"""Replay persisted traces and diagnose divergence.

Re-executing a choice sequence on a deterministic runtime either
reproduces the recorded violation exactly or tells you something
changed.  :func:`run_choices` is the shared execution engine (also the
shrinking oracle's substrate): it applies a choice sequence via
:func:`repro.verisoft.explorer.replay`, observes every assertion
outcome, and classifies the final state — collecting typed violation
events exactly as the explorer would have recorded them.

:func:`verify_trace` layers the diagnosis on top for ``repro replay``:
given a loaded :class:`~repro.counterex.traceio.TraceFile` and a
rebuilt system it reports one of

* ``reproduced`` — the recorded violation signature occurred again;
* ``diverged`` — a recorded choice no longer applies (the program
  changed shape: a process is missing, an operation is disabled, a
  ``VS_toss`` bound shrank), with the failing index and reason;
* ``different-violation`` — the replay succeeded but ended in a
  *different* violation signature;
* ``no-violation`` — the replay succeeded and nothing went wrong (the
  bug was fixed, or the trace is stale).

A system-fingerprint mismatch is reported alongside whichever verdict
applies: a changed fingerprint *explains* a divergence, while
``reproduced`` despite a changed fingerprint means the edit did not
affect this scenario.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from ..runtime.process import ProcessStatus
from ..runtime.system import Run, System
from ..verisoft.explorer import ReplayMismatch, _blocked_info, replay
from ..verisoft.results import (
    AssertionViolationEvent,
    Choice,
    CrashEvent,
    DeadlockEvent,
    DivergenceEvent,
    Trace,
    TraceStep,
)
from .traceio import TraceFile
from .triage import Signature, event_signature


@dataclass
class ReplayOutcome:
    """What actually happened when a choice sequence was re-executed."""

    #: Choices successfully applied (== ``len(choices)`` iff no mismatch).
    applied: int
    #: The structured mismatch, when a choice failed to apply.
    mismatch: ReplayMismatch | None
    #: The executed trace: applied choices + reconstructed steps.
    trace: Trace
    #: Typed violation events observed (assertion violations as they
    #: fired; deadlock / crash / divergence from the final state).
    events: list = field(default_factory=list)
    #: The final run, for state inspection (``None`` after a mismatch).
    run: Run | None = None

    @property
    def ok(self) -> bool:
        """Every choice applied cleanly."""
        return self.mismatch is None

    def signatures(self) -> list[Signature]:
        """Triage signatures of the observed events, in order."""
        return [event_signature(event) for event in self.events]


def run_choices(
    system: System,
    choices: tuple[Choice, ...] | list,
    tracer: Any | None = None,
) -> ReplayOutcome:
    """Deterministically re-execute ``choices`` and observe violations.

    Never raises on divergence — a failed choice yields an outcome with
    ``ok=False`` and the mismatch recorded, which is exactly the "this
    candidate does not reproduce" answer the shrinking oracle needs.

    ``tracer`` (a :class:`~repro.obs.tracer.Tracer`), when given,
    records the whole re-execution as one ``"replay"`` span carrying
    the prefix length — replay prefixes show up on the run timeline.
    """
    if tracer is not None:
        with tracer.span("replay", cat="replay", n_choices=len(choices)):
            return run_choices(system, choices)
    choices = tuple(choices)
    steps: list[TraceStep] = []
    events: list[Any] = []
    applied = 0

    def on_step(index: int, choice: Choice, request, outcome) -> None:
        nonlocal applied
        applied = index + 1
        if request is not None:
            obj_name = request.obj.name if request.obj is not None else None
            steps.append(TraceStep(choice.process, request.op, obj_name, ""))
        if outcome is not None and outcome.violated:
            events.append(
                AssertionViolationEvent(
                    Trace(choices[:applied], tuple(steps)),
                    outcome.process,
                    outcome.proc_name,
                    outcome.node_id,
                )
            )

    try:
        run = replay(system, choices, on_step=on_step)
    except ReplayMismatch as mismatch:
        return ReplayOutcome(
            applied=applied,
            mismatch=mismatch,
            trace=Trace(choices[:applied], tuple(steps)),
            events=events,
            run=None,
        )

    trace = Trace(choices, tuple(steps))
    for process in run.processes:
        if process.status is ProcessStatus.CRASHED:
            events.append(CrashEvent(trace, process.name, str(process.crash)))
        elif process.status is ProcessStatus.DIVERGED:
            events.append(DivergenceEvent(trace, process.name))
    if run.is_deadlock():
        events.append(DeadlockEvent(trace, *_blocked_info(run)))
    return ReplayOutcome(
        applied=applied, mismatch=None, trace=trace, events=events, run=run
    )


def reproduces(system: System, choices, signature: Signature) -> bool:
    """The shrinking / replay oracle: does executing ``choices`` on
    ``system`` produce a violation with exactly ``signature``?"""
    outcome = run_choices(system, choices)
    return outcome.ok and signature in outcome.signatures()


@dataclass
class ReplayVerdict:
    """The diagnosis of replaying one persisted trace."""

    #: ``"reproduced"`` | ``"diverged"`` | ``"different-violation"`` |
    #: ``"no-violation"``.
    status: str
    #: Human-readable diagnosis lines.
    detail: str
    #: Whether the current system fingerprint matches the recorded one
    #: (``None`` when the trace carries no fingerprint).
    fingerprint_matched: bool | None
    #: The raw execution outcome.
    outcome: ReplayOutcome

    @property
    def ok(self) -> bool:
        """The recorded violation reproduced."""
        return self.status == "reproduced"


def verify_trace(system: System, trace_file: TraceFile) -> ReplayVerdict:
    """Replay a loaded trace file against ``system`` and diagnose.

    See the module docstring for the verdict taxonomy.
    """
    target = trace_file.signature()
    fingerprint_matched: bool | None = None
    notes: list[str] = []
    if trace_file.fingerprint:
        current = system.fingerprint()
        fingerprint_matched = current == trace_file.fingerprint
        if not fingerprint_matched:
            notes.append(
                "system fingerprint mismatch: trace was captured on "
                f"{trace_file.fingerprint}, this system is {current} — "
                "the program or system description has changed"
            )

    outcome = run_choices(system, trace_file.trace.choices)

    if not outcome.ok:
        mismatch = outcome.mismatch
        notes.insert(
            0,
            f"replay diverged at choice {mismatch.index} of "
            f"{len(trace_file.trace.choices)} "
            f"({mismatch.choice.describe()}): {mismatch.reason}",
        )
        if fingerprint_matched is True:
            notes.append(
                "fingerprint matches, so this indicates trace corruption "
                "or a nondeterministic runtime — please report it"
            )
        return ReplayVerdict("diverged", "\n".join(notes), fingerprint_matched, outcome)

    found = outcome.signatures()
    if target in found:
        notes.insert(
            0,
            f"reproduced: {trace_file.kind} violation after "
            f"{len(trace_file.trace.choices)} choices",
        )
        return ReplayVerdict(
            "reproduced", "\n".join(notes), fingerprint_matched, outcome
        )
    if found:
        listed = "; ".join(str(sig) for sig in found)
        notes.insert(
            0,
            "replay succeeded but produced a different violation: "
            f"expected {target}, observed {listed}",
        )
        return ReplayVerdict(
            "different-violation", "\n".join(notes), fingerprint_matched, outcome
        )
    notes.insert(
        0,
        "replay succeeded with no violation: the recorded "
        f"{trace_file.kind} did not occur (bug fixed, or stale trace)",
    )
    return ReplayVerdict("no-violation", "\n".join(notes), fingerprint_matched, outcome)
