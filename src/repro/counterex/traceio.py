"""The versioned on-disk counterexample trace format.

A :class:`~repro.verisoft.results.Trace` dies with the Python process;
this module gives it a life on disk.  A **trace file** is a single JSON
document carrying everything needed to reproduce, minimize and triage a
violation long after the search that found it:

* the **choice sequence** — schedule and ``VS_toss`` decisions, the
  exact replay recipe (the runtime is deterministic, so choices are a
  complete encoding of the execution);
* the recorded **steps** — the human-readable visible operations, kept
  so a trace is inspectable without re-execution;
* the **violation** — kind, location fields and the stable triage
  signature (:mod:`repro.counterex.triage`);
* the **system fingerprint** (:meth:`repro.runtime.system.System.fingerprint`)
  — detects that the program changed since capture;
* **search metadata** — strategy, PRNG seed and the full
  :class:`~repro.verisoft.search.SearchOptions` snapshot, so the file
  also records *how* it was found;
* optionally the **system payload** — the JSON system description and
  program source, making the file fully self-contained for
  ``repro replay trace.json`` with no other artifacts.

Version policy (also recorded in DESIGN.md): ``version`` is a single
integer, bumped on any change that older readers would misinterpret.
Readers accept exactly the versions they know; unknown versions raise
:class:`TraceFormatError` instead of guessing.  New *optional* keys may
be added without a bump — readers must ignore unknown keys.
"""

from __future__ import annotations

import json
import pathlib
from dataclasses import dataclass, field
from typing import Any

from ..verisoft.results import (
    AssertionViolationEvent,
    Choice,
    CrashEvent,
    DeadlockEvent,
    DivergenceEvent,
    ExplorationReport,
    ScheduleChoice,
    TossChoice,
    Trace,
    TraceStep,
)
from .triage import (
    Signature,
    event_kind,
    event_signature,
    signature_from_json,
    signature_to_json,
)

#: Magic format tag of every trace file.
FORMAT = "repro-trace"
#: Current (and only) trace-format version this build reads and writes.
VERSION = 1


class TraceFormatError(ValueError):
    """A trace file is malformed or of an unsupported version."""


# ---------------------------------------------------------------------------
# Choice / step (de)serialization
# ---------------------------------------------------------------------------


def choices_to_json(choices: tuple[Choice, ...]) -> list:
    """Choices as compact JSON: ``["s", proc]`` / ``["t", proc, value]``."""
    out: list = []
    for choice in choices:
        if isinstance(choice, TossChoice):
            out.append(["t", choice.process, choice.value])
        else:
            out.append(["s", choice.process])
    return out


def choices_from_json(payload: list) -> tuple[Choice, ...]:
    """Inverse of :func:`choices_to_json`."""
    choices: list[Choice] = []
    for entry in payload:
        tag = entry[0]
        if tag == "s":
            choices.append(ScheduleChoice(entry[1]))
        elif tag == "t":
            choices.append(TossChoice(entry[1], entry[2]))
        else:
            raise TraceFormatError(f"unknown choice tag {tag!r}")
    return tuple(choices)


def steps_to_json(steps: tuple[TraceStep, ...]) -> list:
    """Steps as JSON: ``[process, op, obj_or_null, detail]``."""
    return [[s.process, s.op, s.obj, s.detail] for s in steps]


def steps_from_json(payload: list) -> tuple[TraceStep, ...]:
    """Inverse of :func:`steps_to_json`."""
    return tuple(TraceStep(p, op, obj, detail) for p, op, obj, detail in payload)


# ---------------------------------------------------------------------------
# Violation payloads
# ---------------------------------------------------------------------------


def violation_to_json(event: Any) -> dict:
    """The trace-less event fields plus kind and triage signature."""
    kind = event_kind(event)
    payload: dict[str, Any] = {
        "kind": kind,
        "signature": signature_to_json(event_signature(event)),
    }
    if isinstance(event, DeadlockEvent):
        payload["blocked"] = list(event.blocked)
        payload["waiting"] = [list(entry) for entry in event.waiting]
    elif isinstance(event, AssertionViolationEvent):
        payload["process"] = event.process
        payload["proc_name"] = event.proc_name
        payload["node_id"] = event.node_id
    elif isinstance(event, CrashEvent):
        payload["process"] = event.process
        payload["message"] = event.message
    else:  # DivergenceEvent
        payload["process"] = event.process
    return payload


def violation_from_json(payload: dict, trace: Trace) -> Any:
    """Rebuild the typed event object carrying ``trace``."""
    kind = payload.get("kind")
    if kind == "deadlock":
        return DeadlockEvent(
            trace,
            tuple(payload.get("blocked", ())),
            tuple(tuple(entry) for entry in payload.get("waiting", ())),
        )
    if kind == "assertion":
        return AssertionViolationEvent(
            trace, payload["process"], payload["proc_name"], payload["node_id"]
        )
    if kind == "crash":
        return CrashEvent(trace, payload["process"], payload.get("message", ""))
    if kind == "divergence":
        return DivergenceEvent(trace, payload["process"])
    raise TraceFormatError(f"unknown violation kind {kind!r}")


# ---------------------------------------------------------------------------
# The trace file
# ---------------------------------------------------------------------------


@dataclass
class TraceFile:
    """In-memory form of one persisted counterexample."""

    #: Violation payload: kind, location fields, triage signature.
    violation: dict
    #: The replayable trace (choices + recorded steps).
    trace: Trace
    #: System fingerprint at capture time (``None`` if unrecorded).
    fingerprint: str | None = None
    #: Search metadata: ``strategy``, ``seed``, ``options`` snapshot.
    search: dict = field(default_factory=dict)
    #: Self-contained rebuild payload:
    #: ``{"description": <system JSON>, "program_source": <text>}``.
    system: dict | None = None
    #: Shrink provenance, set by ``repro shrink``:
    #: ``{"original_choices": N, "oracle_runs": R}``.
    shrink: dict | None = None
    version: int = VERSION

    def event(self) -> Any:
        """The typed violation event, trace attached."""
        return violation_from_json(self.violation, self.trace)

    def signature(self) -> Signature:
        """The hashable triage signature recorded in the file."""
        return signature_from_json(self.violation["signature"])

    @property
    def kind(self) -> str:
        """The violation kind string."""
        return self.violation.get("kind", "?")

    def to_json(self) -> dict:
        """The complete JSON document (dict form)."""
        doc: dict[str, Any] = {
            "format": FORMAT,
            "version": self.version,
            "fingerprint": self.fingerprint,
            "violation": self.violation,
            "choices": choices_to_json(self.trace.choices),
            "steps": steps_to_json(self.trace.steps),
            "search": self.search,
        }
        if self.system is not None:
            doc["system"] = self.system
        if self.shrink is not None:
            doc["shrink"] = self.shrink
        return doc

    @classmethod
    def from_json(cls, doc: dict) -> "TraceFile":
        """Parse and validate a JSON document."""
        if not isinstance(doc, dict) or doc.get("format") != FORMAT:
            raise TraceFormatError(
                f"not a {FORMAT} file (format tag: {doc.get('format')!r})"
                if isinstance(doc, dict)
                else "not a trace file: top level must be a JSON object"
            )
        version = doc.get("version")
        if version != VERSION:
            raise TraceFormatError(
                f"unsupported trace format version {version!r} "
                f"(this build reads version {VERSION})"
            )
        if "violation" not in doc or "choices" not in doc:
            raise TraceFormatError("trace file lacks 'violation' or 'choices'")
        trace = Trace(
            choices_from_json(doc["choices"]),
            steps_from_json(doc.get("steps", [])),
        )
        return cls(
            violation=doc["violation"],
            trace=trace,
            fingerprint=doc.get("fingerprint"),
            search=doc.get("search", {}),
            system=doc.get("system"),
            shrink=doc.get("shrink"),
            version=version,
        )


def search_metadata(report: ExplorationReport | None) -> dict:
    """The ``search`` block of a trace file, from a report's recorded
    provenance (strategy, seed, options — see
    :attr:`~repro.verisoft.results.ExplorationReport.options`)."""
    if report is None:
        return {}
    meta: dict[str, Any] = {}
    if report.stats is not None:
        meta["strategy"] = report.stats.strategy
        # The *resolved* engine (after any compilability fallback), so a
        # replay can warn when re-executing under a different one.
        meta["engine"] = report.stats.engine
    if report.seed is not None:
        meta["seed"] = report.seed
    if report.options is not None:
        meta["options"] = report.options.as_dict()
        meta.setdefault("strategy", report.options.strategy)
    return meta


def trace_file_for_event(
    event: Any,
    *,
    system=None,
    report: ExplorationReport | None = None,
    system_payload: dict | None = None,
    language: str | None = None,
) -> TraceFile:
    """Build a :class:`TraceFile` for one violation event.

    ``system`` (a :class:`~repro.runtime.system.System`) supplies the
    fingerprint; ``report`` the search metadata; ``system_payload`` the
    optional self-contained rebuild block; ``language`` records the
    front end (``rc``/``c``/``python``) the program came through, so
    artifacts are self-describing.
    """
    if not event.trace.choices:
        raise ValueError(
            "event carries no trace (recorded past the max_events cap); "
            "re-run with a higher --max-events to persist it"
        )
    search = search_metadata(report)
    if language is not None:
        search["language"] = language
    return TraceFile(
        violation=violation_to_json(event),
        trace=event.trace,
        fingerprint=system.fingerprint() if system is not None else None,
        search=search,
        system=system_payload,
    )


def save_trace(path: str | pathlib.Path, trace_file: TraceFile) -> pathlib.Path:
    """Write ``trace_file`` as JSON; returns the path written."""
    path = pathlib.Path(path)
    path.write_text(json.dumps(trace_file.to_json(), indent=2) + "\n")
    return path


def load_trace(path: str | pathlib.Path) -> TraceFile:
    """Read and validate a trace file."""
    path = pathlib.Path(path)
    try:
        doc = json.loads(path.read_text())
    except json.JSONDecodeError as err:
        raise TraceFormatError(f"{path}: not valid JSON: {err}") from err
    return TraceFile.from_json(doc)


def save_report_traces(
    directory: str | pathlib.Path,
    report: ExplorationReport,
    *,
    system=None,
    system_payload: dict | None = None,
    language: str | None = None,
) -> list[pathlib.Path]:
    """Write one trace file per recorded violation of ``report``.

    Files are named ``<kind>-<NNN>.json`` in stable report order;
    trace-less placeholder events (past the ``max_events`` cap) are
    skipped.  ``language`` stamps each trace's search metadata with the
    originating front end.  Returns the paths written.
    """
    directory = pathlib.Path(directory)
    directory.mkdir(parents=True, exist_ok=True)
    written: list[pathlib.Path] = []
    counters: dict[str, int] = {}
    for event in report.all_events():
        if not event.trace.choices:
            continue
        kind = event_kind(event)
        index = counters.get(kind, 0)
        counters[kind] = index + 1
        trace_file = trace_file_for_event(
            event,
            system=system,
            report=report,
            system_payload=system_payload,
            language=language,
        )
        written.append(
            save_trace(directory / f"{kind}-{index:03d}.json", trace_file)
        )
    return written
