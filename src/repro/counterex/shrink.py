"""Counterexample minimization: ddmin over choices + toss shrinking.

A depth-24 counterexample from the 5ESS search interleaves the buggy
scenario with dozens of irrelevant scheduling decisions; nobody debugs
from that.  Because the runtime is deterministic, *re-execution is a
perfect oracle*: a candidate choice sequence either reproduces the
violation signature or it does not, with zero flakiness — the ideal
setting for delta debugging.

Two passes:

1. **ddmin** (Zeller's delta-debugging minimization) over the choice
   sequence.  Candidates that drop a choice a later choice depends on
   simply fail to replay (the oracle answers "no"), so no dependency
   analysis is needed.  The result is 1-minimal: removing any single
   remaining choice breaks reproduction — which also makes shrinking
   idempotent (shrinking a shrunk trace is a no-op).
2. **Greedy toss minimization**: each surviving ``VS_toss`` answer is
   lowered toward 0 (smallest reproducing value wins), so environment
   inputs in the minimized scenario are as boring as possible — the
   concern *Environment Assumptions for Synthesis* frames as finding
   the weakest environment behaviour that still matters.

Every oracle query is a deterministic re-execution.  On journalable
systems (all built-in object kinds) the oracle runs on an
:class:`~repro.counterex.replay.IncrementalReplayer`: consecutive
candidates share long prefixes, so each query rewinds one live
journaled run to the common prefix and executes only the differing
suffix — the same undo-journal machinery the restore-mode explorer
backtracks with.  ``oracle_runs`` in the :class:`ShrinkResult` reports
the query count; ``oracle_choices_applied`` / ``oracle_choices_reused``
report how much execution the checkpoint reuse avoided.
"""

from __future__ import annotations

from dataclasses import dataclass, replace as dc_replace
from typing import Any, Callable

from ..runtime.system import System
from ..verisoft.results import Choice, Trace, TossChoice
from .replay import IncrementalReplayer, ReplayOutcome, run_choices
from .triage import Signature, event_signature


class ShrinkError(ValueError):
    """The event to shrink does not reproduce on the given system."""


@dataclass
class ShrinkResult:
    """Outcome of minimizing one violation event."""

    #: The minimized event (same type/signature, minimal trace).
    event: Any
    #: The minimized replayable trace.
    trace: Trace
    #: Choice count before shrinking.
    original_length: int
    #: Deterministic re-executions the oracle performed.
    oracle_runs: int
    #: Choices the oracle actually executed (suffixes past retained
    #: prefixes when the incremental replayer was used; every choice of
    #: every query otherwise).
    oracle_choices_applied: int = 0
    #: Choices answered from a retained checkpoint prefix without
    #: re-execution (0 when the plain oracle ran).
    oracle_choices_reused: int = 0
    #: Whether the checkpoint-reusing incremental oracle was used.
    incremental: bool = False

    @property
    def shrunk_length(self) -> int:
        """Choice count after shrinking."""
        return len(self.trace.choices)

    def describe(self) -> str:
        """One-line summary of the shrink."""
        line = (
            f"shrunk {self.original_length} -> {self.shrunk_length} choices "
            f"({self.oracle_runs} oracle runs)"
        )
        total = self.oracle_choices_applied + self.oracle_choices_reused
        if self.incremental and total:
            pct = 100.0 * self.oracle_choices_reused / total
            line += f", {pct:.0f}% of oracle choices reused from checkpoints"
        return line


class _Oracle:
    """Memoizing reproduction oracle over candidate choice sequences.

    ``runner`` maps a candidate to a
    :class:`~repro.counterex.replay.ReplayOutcome` — either plain
    :func:`run_choices` (fresh run per query) or a bound
    :meth:`IncrementalReplayer.run_choices` (checkpoint reuse).
    """

    def __init__(
        self,
        runner: Callable[[tuple[Choice, ...]], ReplayOutcome],
        signature: Signature,
        max_runs: int,
    ):
        self._runner = runner
        self._signature = signature
        self._max_runs = max_runs
        self._cache: dict[tuple[Choice, ...], bool] = {}
        self.runs = 0

    def __call__(self, candidate: tuple[Choice, ...]) -> bool:
        cached = self._cache.get(candidate)
        if cached is not None:
            return cached
        if self.runs >= self._max_runs:
            # Budget exhausted: answer "no" so every pass terminates
            # with the best reproducer found so far (still valid, just
            # possibly not 1-minimal).
            return False
        self.runs += 1
        outcome = self._runner(candidate)
        result = outcome.ok and self._signature in outcome.signatures()
        self._cache[candidate] = result
        return result


def ddmin(
    items: tuple,
    test: Callable[[tuple], bool],
) -> tuple:
    """Zeller's ddmin: a 1-minimal subsequence of ``items`` satisfying
    ``test``.  ``test(items)`` must hold on entry; the result ``r``
    satisfies ``test(r)`` and ``not test(r minus any single element)``.
    """
    assert test(items)
    n = 2
    while len(items) >= 2:
        chunk = len(items) / n
        some_complement_failed = False
        for index in range(n):
            lo = int(index * chunk)
            hi = int((index + 1) * chunk)
            complement = items[:lo] + items[hi:]
            if test(complement):
                items = complement
                n = max(n - 1, 2)
                some_complement_failed = True
                break
        if not some_complement_failed:
            if n >= len(items):
                break
            n = min(n * 2, len(items))
    return items


def _minimize_tosses(
    choices: tuple[Choice, ...], oracle: _Oracle
) -> tuple[Choice, ...]:
    """Lower every toss answer to the smallest value that still
    reproduces (ascending probe from 0, so the first hit is minimal)."""
    choices = tuple(choices)
    for index, choice in enumerate(choices):
        if not isinstance(choice, TossChoice) or choice.value == 0:
            continue
        for value in range(choice.value):
            candidate = (
                choices[:index]
                + (dc_replace(choice, value=value),)
                + choices[index + 1 :]
            )
            if oracle(candidate):
                choices = candidate
                break
    return choices


def shrink_choices(
    system: System,
    choices: tuple[Choice, ...],
    signature: Signature,
    *,
    max_oracle_runs: int = 100_000,
    tracer: Any | None = None,
    stats_out: dict | None = None,
) -> tuple[tuple[Choice, ...], int]:
    """Minimize ``choices`` while preserving the violation ``signature``.

    Returns ``(minimal choices, oracle runs)``.  Raises
    :class:`ShrinkError` when the original sequence does not reproduce
    the signature (wrong system, or a changed program).  ``tracer``
    records one span per ddmin / toss-minimize round (category
    ``"shrink"``), so slow shrinks show where the oracle runs went.

    On journalable systems the oracle queries run on an
    :class:`~repro.counterex.replay.IncrementalReplayer` (checkpoint
    reuse across the shared prefixes of consecutive candidates);
    otherwise each query is a fresh full re-execution.  ``stats_out``,
    when given, receives the oracle telemetry keys ``incremental``,
    ``choices_applied`` and ``choices_reused``.
    """
    replayer: IncrementalReplayer | None = None
    if system.journalable():
        replayer = IncrementalReplayer(system)
        runner = replayer.run_choices
    else:
        runner = lambda candidate: run_choices(system, candidate)  # noqa: E731
    oracle = _Oracle(runner, signature, max_oracle_runs)
    minimal = tuple(choices)
    if not oracle(minimal):
        raise ShrinkError(
            "the original trace does not reproduce the violation on this "
            "system; run 'repro replay' for a divergence diagnosis"
        )
    # Iterate (ddmin ∘ toss-minimize) to a fixpoint.  The fixpoint makes
    # shrinking idempotent by construction — re-shrinking a shrunk trace
    # runs one verification pass that changes nothing — and the oracle's
    # memo cache makes that verification pass almost free.
    rounds = 0
    while True:
        before = minimal
        rounds += 1
        if tracer is None:
            minimal = ddmin(minimal, oracle)
            minimal = _minimize_tosses(minimal, oracle)
        else:
            with tracer.span(
                "ddmin", cat="shrink", round=rounds, length=len(minimal)
            ):
                minimal = ddmin(minimal, oracle)
            with tracer.span(
                "toss-minimize", cat="shrink", round=rounds, length=len(minimal)
            ):
                minimal = _minimize_tosses(minimal, oracle)
        if minimal == before:
            break
    if stats_out is not None:
        stats_out["incremental"] = replayer is not None
        stats_out["choices_applied"] = (
            replayer.choices_applied if replayer is not None else 0
        )
        stats_out["choices_reused"] = (
            replayer.choices_reused if replayer is not None else 0
        )
    return minimal, oracle.runs


def shrink(
    system: System,
    event: Any,
    *,
    max_oracle_runs: int = 100_000,
    tracer: Any | None = None,
) -> ShrinkResult:
    """Minimize one violation event to its smallest reproducer.

    The returned :class:`ShrinkResult` carries a fresh event of the
    same violation signature whose trace is the 1-minimal choice
    sequence (with toss answers minimized toward 0), re-executed so the
    recorded steps describe the *minimal* scenario.  ``tracer`` records
    the per-round shrink spans (see :func:`shrink_choices`).
    """
    signature = event_signature(event)
    oracle_stats: dict = {}
    minimal, runs = shrink_choices(
        system,
        event.trace.choices,
        signature,
        max_oracle_runs=max_oracle_runs,
        tracer=tracer,
        stats_out=oracle_stats,
    )
    # The final pass stays a plain from-scratch replay: the persisted
    # minimal event must be reproduced by the same engine `repro replay`
    # will use, independent of any checkpoint state.
    final = run_choices(system, minimal, tracer=tracer)
    shrunk_event = next(
        e for e in final.events if event_signature(e) == signature
    )
    return ShrinkResult(
        event=shrunk_event,
        trace=shrunk_event.trace,
        original_length=len(event.trace.choices),
        oracle_runs=runs,
        oracle_choices_applied=oracle_stats.get("choices_applied", 0),
        oracle_choices_reused=oracle_stats.get("choices_reused", 0),
        incremental=oracle_stats.get("incremental", False),
    )
