"""Command-line interface: the paper's prototype tool, as a CLI.

Subcommands
-----------

``close``
    Close an open RC (or C) program with its most general environment
    and write the closed program as runnable RC source::

        repro close open.rc --env-param main:x -o closed.rc --stats

``analyze``
    Print the Steps 2–3 analysis (environment-defined inputs, tainted
    objects, marked/eliminated nodes) without transforming.

``graph``
    Dump control-flow graphs in Graphviz DOT (before and, with
    ``--closed``, after the transformation).

``search``
    The unified search front end: run any strategy (``dfs``, ``random``
    or ``parallel``) over a *system description* — a JSON file naming
    the program, the communication objects and the processes (see
    ``--help`` for the schema), optionally closing the program first::

        repro search system.json --strategy parallel --jobs 4 --progress

    ``--save-traces DIR`` persists every violation as a replayable JSON
    trace; ``--stats-json FILE`` dumps machine-readable telemetry.
    Exit code 3 signals "violations found" (0 = clean), so CI jobs can
    gate on it.

    Observability (see docs/observability.md): ``--trace-out FILE``
    exports the run as Chrome trace-event JSON (Perfetto-loadable) and
    writes a ``run.json`` manifest; ``--profile`` prints the hot-spot
    tables; ``--stall-timeout`` tunes the parallel worker-stall warning.

``profile``
    ``search`` with profiling-first defaults: run a strategy, print the
    per-CFG-node / per-toss-point hot-spot tables::

        repro profile system.json --strategy parallel -j 4 --top 15

``replay``
    Re-execute a saved trace (``repro replay trace.json``), verify the
    recorded violation reproduces, and diagnose divergence (fingerprint
    mismatch, disabled choice, different violation) when the program
    has changed.  The system is rebuilt from the trace's embedded
    description, ``--system desc.json`` or ``--module pkg.mod:factory``.

``shrink``
    Minimize a saved trace to its smallest reproducer (ddmin over the
    choice sequence + toss-value minimization)::

        repro shrink trace.json -o minimal.json

``submit`` / ``serve`` / ``jobs`` / ``stop`` / ``resume``
    The durable job service (see docs/service.md): ``submit`` enqueues
    a search as a self-contained job in an on-disk store, ``serve``
    claims and runs queued jobs under the work-stealing scheduler,
    ``jobs`` lists live status from the streamed heartbeats, ``stop``
    checkpoints a running job's frontier and suspends it, and
    ``resume`` re-queues it to continue exactly where it left off —
    across process restarts and machines::

        repro submit system.json --jobs-dir jobs -j 4
        repro serve --jobs-dir jobs --once
        repro jobs --jobs-dir jobs

Every search-style command takes ``--engine walk|compiled`` to pick
the execution engine (see docs/engine.md); ``compiled`` translates the
CFGs to Python closures for throughput and falls back to the reference
walking interpreter when the program is not compilable.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

from . import __version__
from .cfg import build_cfgs, to_dot
from .closing import ClosingSpec, close_program
from .lang.errors import LangError
from .runtime import System
from .sysdesc import (
    SYSTEM_SCHEMA as _SYSTEM_SCHEMA,
)
from .sysdesc import (
    DescriptionError,
    description_language,
    load_description,
    load_program,
    system_from_description,
)
from .verisoft import SCHEDULERS, ProgressPrinter, SearchOptions, run_search


def _load_program(path: pathlib.Path):
    return load_program(path)


def _parse_env_params(pairs: list[str]) -> dict[str, list[str]]:
    out: dict[str, list[str]] = {}
    for pair in pairs:
        if ":" not in pair:
            raise SystemExit(f"--env-param expects PROC:PARAM, got {pair!r}")
        proc, param = pair.split(":", 1)
        out.setdefault(proc, []).append(param)
    return out


def _spec_from_args(args) -> ClosingSpec:
    return ClosingSpec.make(
        env_params=_parse_env_params(args.env_param),
        env_channels=args.env_channel,
        env_shared=args.env_shared,
    )


def cmd_close(args) -> int:
    """The ``close`` subcommand."""
    program = _load_program(args.file)
    closed = close_program(program, _spec_from_args(args), optimize=args.optimize)
    source = closed.to_source()
    if args.output:
        args.output.write_text(source)
        print(f"wrote {args.output}")
    else:
        print(source)
    if args.stats:
        print(closed.summary(), file=sys.stderr)
        for proc, params in closed.removed_params.items():
            print(f"  {proc}: interface removed: {', '.join(params)}", file=sys.stderr)
    return 0


def cmd_analyze(args) -> int:
    """The ``analyze`` subcommand."""
    from .closing import analyze_for_closing

    program = _load_program(args.file)
    cfgs = build_cfgs(program)
    analysis = analyze_for_closing(cfgs, _spec_from_args(args))
    print(f"fixpoint rounds: {analysis.rounds}")
    if analysis.tainted_objects:
        print(f"tainted objects: {', '.join(sorted(analysis.tainted_objects))}")
    if analysis.all_objects_tainted:
        print("WARNING: an unresolvable tainted transmission taints every object")
    for proc, pa in sorted(analysis.procs.items()):
        env_params = analysis.env_params.get(proc, frozenset())
        print(f"\nproc {proc}:")
        if env_params:
            print(f"  environment parameters: {', '.join(sorted(env_params))}")
        if proc in analysis.env_returns:
            print("  return value: environment-defined")
        eliminated = [n for n in pa.cfg.nodes if n not in pa.marked]
        print(f"  nodes: {pa.cfg.node_count()}, eliminated: {len(eliminated)}")
        for node_id in sorted(pa.n_i):
            node = pa.cfg.nodes[node_id]
            vi = ", ".join(sorted(pa.vi_of(node_id)))
            print(f"    N_I {node_id:>3}: {node.describe():<30} V_I = {{{vi}}}")
    return 0


def cmd_graph(args) -> int:
    """The ``graph`` subcommand."""
    program = _load_program(args.file)
    cfgs = build_cfgs(program)
    if args.closed:
        closed = close_program(program, _spec_from_args(args))
        cfgs = closed.cfgs
    procs = [args.proc] if args.proc else list(cfgs)
    for proc in procs:
        if proc not in cfgs:
            raise SystemExit(f"unknown procedure {proc!r}")
        dot = to_dot(cfgs[proc])
        if args.out_dir:
            args.out_dir.mkdir(parents=True, exist_ok=True)
            path = args.out_dir / f"{proc}.dot"
            path.write_text(dot)
            print(f"wrote {path}")
        else:
            print(dot)
    return 0


# The description machinery lives in repro.sysdesc (shared with the job
# service); the CLI's job is converting DescriptionError to a clean exit.


def _read_description(description_path: pathlib.Path) -> dict:
    try:
        return load_description(description_path)
    except DescriptionError as err:
        raise SystemExit(str(err))


def _system_from_description(
    description: dict,
    base_dir: pathlib.Path | None,
    program_source: str | None = None,
    tracer=None,
) -> System:
    try:
        return system_from_description(
            description, base_dir, program_source=program_source, tracer=tracer
        )
    except DescriptionError as err:
        raise SystemExit(str(err))


def _build_system(description_path: pathlib.Path) -> System:
    description = _read_description(description_path)
    return _system_from_description(description, description_path.parent)


def _print_report(report, system=None, program: str | None = None) -> None:
    print(report.summary())
    if not report.ok:
        from .counterex import describe_groups

        print(describe_groups(report.triage(), system=system, program=program))
    for event in report.deadlocks[:5]:
        print("\n" + event.describe())
    for event in report.violations[:5]:
        print("\n" + event.describe())
    for event in report.crashes[:5]:
        print(f"\ncrash in {event.process}: {event.message}")
    for event in report.divergences[:5]:
        print(f"\ndivergence in {event.process}")


def _options_from_args(args) -> SearchOptions:
    """Build :class:`SearchOptions` from ``search``-style CLI arguments."""
    return SearchOptions(
        strategy=args.strategy,
        max_depth=args.max_depth,
        por=not args.no_por,
        count_states=args.count_states,
        stop_on_first=args.stop_on_first,
        max_paths=args.max_paths,
        max_transitions=args.max_transitions,
        time_budget=args.time_budget,
        max_events=args.max_events,
        backtrack=args.backtrack,
        engine=args.engine,
        state_cache=args.state_cache,
        cache_bits=args.cache_bits,
        cache_mode=args.cache_mode,
        walks=args.walks,
        seed=args.seed,
        jobs=args.jobs,
        scheduler=getattr(args, "scheduler", "static"),
        prefix_depth=args.prefix_depth,
        profile=args.profile,
        coverage=getattr(args, "coverage", False)
        or getattr(args, "coverage_json", None) is not None,
        stall_timeout=args.stall_timeout or None,
    )


#: ``repro search`` exit code when violations were found (see
#: docs/search.md); 0 = clean search, 2 = usage/input error.
EXIT_VIOLATIONS = 3


def cmd_search(args) -> int:
    """The ``search`` subcommand: the unified search front end."""
    tracer = None
    if args.trace_out is not None:
        from .obs import Tracer

        tracer = Tracer()

    description = _read_description(args.system)
    if tracer is None:
        system = _system_from_description(description, args.system.parent)
    else:
        with tracer.phase("build-system"):
            system = _system_from_description(
                description, args.system.parent, tracer=tracer
            )
    options = _options_from_args(args)
    options.tracer = tracer
    # Oversubscription warnings are emitted (once) by the search
    # drivers themselves — see repro.verisoft.parallel.warn_oversubscription.
    ticker = ProgressPrinter() if args.progress else None
    if ticker is not None:
        options.progress = ticker
    try:
        if tracer is None:
            report = run_search(system, options)
        else:
            with tracer.phase("search", strategy=options.strategy):
                report = run_search(system, options)
    finally:
        if ticker is not None:
            ticker.finish()
    language = description_language(description)
    _print_report(report, system=system, program=description.get("program"))
    if args.profile and report.profile is not None:
        print("\n" + report.profile.render_table(args.profile_top, system=system))
    if report.coverage is not None and getattr(args, "coverage", False):
        print("\n" + report.coverage.render_summary(program=description.get("program")))
    if getattr(args, "coverage_json", None) is not None:
        if report.coverage is None:
            print("no coverage collected", file=sys.stderr)
        else:
            args.coverage_json.write_text(
                json.dumps(report.coverage.as_dict(), indent=2) + "\n"
            )
            print(f"wrote coverage to {args.coverage_json}", file=sys.stderr)
    if args.stats and report.stats is not None:
        print("\n" + report.stats.describe(), file=sys.stderr)
    if args.stats_json is not None and report.stats is not None:
        payload = report.stats.json_dict()
        payload["language"] = language
        if report.profile is not None:
            payload["profile"] = report.profile.as_dict()
        args.stats_json.write_text(json.dumps(payload, indent=2) + "\n")
        print(f"wrote stats to {args.stats_json}", file=sys.stderr)
    artifacts: list[pathlib.Path] = []
    if args.save_traces is not None:
        from .counterex import save_report_traces

        program_text = (args.system.parent / description["program"]).read_text()
        written = save_report_traces(
            args.save_traces,
            report,
            system=system,
            system_payload={
                "description": description,
                "program_source": program_text,
            },
            language=language,
        )
        artifacts.extend(written)
        print(f"wrote {len(written)} trace file(s) to {args.save_traces}")
    if tracer is not None:
        artifacts.append(tracer.write(args.trace_out))
        print(f"wrote trace to {args.trace_out}", file=sys.stderr)
    if (
        args.save_traces is not None
        or tracer is not None
        or getattr(args, "manifest_out", None) is not None
    ):
        from .obs import build_manifest, write_manifest

        source = None
        program_name = description.get("program")
        if program_name:
            try:
                source = {
                    "path": str(program_name),
                    "text": (args.system.parent / program_name).read_text(),
                }
            except OSError:
                source = None
        manifest = build_manifest(
            argv=sys.argv,
            options=options,
            report=report,
            system=system,
            phases=tracer.phase_timings() if tracer is not None else None,
            artifacts=[str(path) for path in artifacts],
            language=language,
            source=source,
        )
        destinations: list[pathlib.Path] = []
        if getattr(args, "manifest_out", None) is not None:
            destinations.append(args.manifest_out)
        if args.save_traces is not None:
            destinations.append(args.save_traces / "run.json")
        elif tracer is not None:
            destinations.append(
                args.trace_out.with_name(args.trace_out.stem + ".run.json")
            )
        for destination in destinations:
            where = write_manifest(destination, manifest)
            print(f"wrote manifest to {where}", file=sys.stderr)
    return 0 if report.ok else EXIT_VIOLATIONS


def _system_for_trace(args, trace_file) -> System:
    """Rebuild the system a trace file talks about.

    Resolution order: ``--module pkg.mod:factory`` (a zero-argument
    callable returning a :class:`System`), ``--system description.json``,
    then the trace file's own embedded system payload.
    """
    if getattr(args, "module", None):
        import importlib

        target = args.module
        if ":" not in target:
            raise SystemExit(f"--module expects MODULE:FACTORY, got {target!r}")
        module_name, attr = target.split(":", 1)
        module = importlib.import_module(module_name)
        factory = getattr(module, attr, None)
        if factory is None:
            raise SystemExit(f"module {module_name!r} has no attribute {attr!r}")
        system = factory()
        if not isinstance(system, System):
            raise SystemExit(f"{target} did not return a System")
        return system
    if getattr(args, "system", None):
        return _build_system(args.system)
    if trace_file.system is not None:
        return _system_from_description(
            trace_file.system["description"],
            base_dir=None,
            program_source=trace_file.system.get("program_source"),
        )
    raise SystemExit(
        "trace file has no embedded system description; "
        "pass --system description.json or --module pkg.mod:factory"
    )


def cmd_replay(args) -> int:
    """The ``replay`` subcommand: re-execute a saved trace and verify
    that the recorded violation reproduces."""
    from .counterex import TraceFormatError, load_trace, verify_trace

    try:
        trace_file = load_trace(args.trace)
    except TraceFormatError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    system = _system_for_trace(args, trace_file)
    verdict = verify_trace(system, trace_file, engine=args.engine)
    print(verdict.detail)
    if args.show_trace and verdict.outcome.trace.steps:
        print("\nscenario:")
        print(verdict.outcome.trace.describe())
    return 0 if verdict.ok else 1


def cmd_shrink(args) -> int:
    """The ``shrink`` subcommand: minimize a saved trace with ddmin +
    toss-value minimization and write the minimal reproducer."""
    from .counterex import (
        ShrinkError,
        TraceFormatError,
        load_trace,
        save_trace,
        shrink,
    )

    try:
        trace_file = load_trace(args.trace)
    except TraceFormatError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    system = _system_for_trace(args, trace_file)
    try:
        result = shrink(system, trace_file.event(), max_oracle_runs=args.max_runs)
    except ShrinkError as err:
        print(f"error: {err}", file=sys.stderr)
        return 1
    print(result.describe())
    shrunk = type(trace_file)(
        violation=trace_file.violation,
        trace=result.trace,
        fingerprint=system.fingerprint(),
        search=trace_file.search,
        system=trace_file.system,
        shrink={
            "original_choices": result.original_length,
            "oracle_runs": result.oracle_runs,
        },
    )
    output = args.output or args.trace
    save_trace(output, shrunk)
    print(f"wrote {output}")
    if args.show_trace:
        print("\nminimal scenario:")
        print(result.trace.describe())
    return 0


def cmd_report(args) -> int:
    """The ``report`` subcommand: render a run manifest as a
    self-contained HTML report."""
    from .obs import load_manifest, render_html, write_report

    try:
        manifest = load_manifest(args.manifest)
    except (OSError, json.JSONDecodeError) as err:
        print(f"error: cannot read manifest: {err}", file=sys.stderr)
        return 2
    if args.source is not None:
        # Override (or supply) the annotated source listing.
        manifest.setdefault("program", {})
        manifest["program"]["path"] = str(args.source)
        manifest["program"]["text"] = args.source.read_text()
    if args.coverage_json is not None:
        coverage = (manifest.get("report") or {}).get("coverage")
        if coverage is None:
            print("manifest has no coverage data", file=sys.stderr)
        else:
            args.coverage_json.write_text(json.dumps(coverage, indent=2) + "\n")
            print(f"wrote coverage to {args.coverage_json}", file=sys.stderr)
    if args.output is not None:
        where = write_report(manifest, args.output)
        print(f"wrote {where}")
    else:
        print(render_html(manifest))
    return 0


def cmd_profile(args) -> int:
    """The ``profile`` subcommand: a search run whose deliverable is the
    hot-spot table (``repro search --profile`` with profiling-first
    defaults)."""
    return cmd_search(args)


# ---------------------------------------------------------------------------
# The job service: submit / serve / jobs / stop / resume
# ---------------------------------------------------------------------------


def _job_store(args):
    from .service import JobStore

    return JobStore(args.jobs_dir)


def cmd_submit(args) -> int:
    """The ``submit`` subcommand: enqueue a search as a durable job."""
    description = _read_description(args.system)
    options = _options_from_args(args)
    options.strategy = "parallel"
    options.scheduler = "steal"
    store = _job_store(args)
    try:
        job = store.submit(
            description,
            options,
            base_dir=args.system.parent,
            name=args.name or args.system.stem,
        )
    except (OSError, KeyError, ValueError) as err:
        raise SystemExit(f"submit failed: {err}")
    print(job.id)
    return 0


def cmd_serve(args) -> int:
    """The ``serve`` subcommand: run queued jobs from a store."""
    from .service.jobs import serve

    store = _job_store(args)

    def log(message: str) -> None:
        print(message, file=sys.stderr)

    ran = serve(
        store,
        once=args.once,
        poll_interval=args.poll,
        log=log,
        max_jobs=args.max_jobs,
        metrics_out=args.metrics_out,
    )
    print(f"ran {ran} job(s)", file=sys.stderr)
    return 0


def cmd_jobs(args) -> int:
    """The ``jobs`` subcommand: list the store, or show one job."""
    store = _job_store(args)
    if args.job_id:
        try:
            job = store.get(args.job_id)
        except KeyError as err:
            raise SystemExit(str(err.args[0]))
        print(job.describe())
        if args.json:
            beat = job.latest_stats()
            doc = {
                "id": job.id,
                "name": job.name,
                "state": job.state,
                "error": job.error,
                "stats": beat.get("stats") if beat else None,
                "has_frontier": job.frontier_path.exists(),
                "has_result": job.result_path.exists(),
                "has_manifest": job.manifest_path.exists(),
            }
            print(json.dumps(doc, indent=2))
        return 0
    jobs = store.jobs()
    if not jobs:
        print("no jobs", file=sys.stderr)
        return 0
    for job in jobs:
        print(job.describe())
    return 0


def cmd_stop(args) -> int:
    """The ``stop`` subcommand: ask a running job to checkpoint and
    suspend (honoured at its next path boundary)."""
    store = _job_store(args)
    try:
        job = store.request_stop(args.job_id)
    except KeyError as err:
        raise SystemExit(str(err.args[0]))
    print(f"stop requested for {job.id} (state: {job.state})")
    return 0


def cmd_resume(args) -> int:
    """The ``resume`` subcommand: re-queue a stopped/failed job; its
    frontier checkpoint (if any) picks up where the search left off."""
    store = _job_store(args)
    try:
        job = store.resume(args.job_id)
    except (KeyError, ValueError) as err:
        raise SystemExit(str(err.args[0]) if err.args else str(err))
    print(f"{job.id} re-queued")
    return 0


def _add_jobs_dir_argument(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--jobs-dir",
        type=pathlib.Path,
        default=pathlib.Path("jobs"),
        metavar="DIR",
        help="the on-disk job store (default: ./jobs)",
    )


def _add_obs_arguments(parser: argparse.ArgumentParser) -> None:
    """The observability flags shared by ``search``-style commands."""
    parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="export the run as Chrome trace-event JSON (load in "
        "chrome://tracing or https://ui.perfetto.dev); also writes a "
        "run manifest next to it",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="collect per-CFG-node / per-toss-point hot-spot counters "
        "and print the top-N tables after the run",
    )
    parser.add_argument(
        "--coverage",
        action="store_true",
        help="collect CFG node/edge and environment-input (VS_toss) "
        "coverage and print the summary after the run",
    )
    parser.add_argument(
        "--coverage-json",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="dump the coverage data as machine-readable JSON "
        "(implies --coverage)",
    )
    parser.add_argument(
        "--manifest-out",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write the run manifest (run.json) here; feed it to "
        "'repro report' for a self-contained HTML run report",
    )
    parser.add_argument(
        "--profile-top",
        type=int,
        default=10,
        metavar="N",
        help="rows per hot-spot table (default: 10)",
    )
    parser.add_argument(
        "--stall-timeout",
        type=float,
        default=10.0,
        metavar="SECONDS",
        help="parallel strategy: warn when a worker makes no progress "
        "for this long (0 disables; default: 10)",
    )


def _add_spec_arguments(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--env-param",
        action="append",
        default=[],
        metavar="PROC:PARAM",
        help="declare a parameter as environment-provided (repeatable)",
    )
    parser.add_argument(
        "--env-channel",
        action="append",
        default=[],
        metavar="NAME",
        help="declare a channel fed by the environment (repeatable)",
    )
    parser.add_argument(
        "--env-shared",
        action="append",
        default=[],
        metavar="NAME",
        help="declare a shared variable written by the environment (repeatable)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Construct the argument parser (exposed for the tests)."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Automatically close open reactive programs (PLDI 1998) "
        "and explore the result.",
    )
    parser.add_argument("--version", action="version", version=f"repro {__version__}")
    sub = parser.add_subparsers(dest="command", required=True)

    close_parser = sub.add_parser("close", help="close an open program")
    close_parser.add_argument(
        "file", type=pathlib.Path, help="RC (.rc), C (.c) or Python (.py) source"
    )
    _add_spec_arguments(close_parser)
    close_parser.add_argument("-o", "--output", type=pathlib.Path)
    close_parser.add_argument("--optimize", action="store_true", help="run clean-up passes")
    close_parser.add_argument("--stats", action="store_true")
    close_parser.set_defaults(func=cmd_close)

    analyze_parser = sub.add_parser("analyze", help="print the Steps 2-3 analysis")
    analyze_parser.add_argument("file", type=pathlib.Path)
    _add_spec_arguments(analyze_parser)
    analyze_parser.set_defaults(func=cmd_analyze)

    graph_parser = sub.add_parser("graph", help="dump control-flow graphs as DOT")
    graph_parser.add_argument("file", type=pathlib.Path)
    graph_parser.add_argument("--proc", help="only this procedure")
    graph_parser.add_argument("--closed", action="store_true", help="graph after closing")
    graph_parser.add_argument("--out-dir", type=pathlib.Path)
    _add_spec_arguments(graph_parser)
    graph_parser.set_defaults(func=cmd_graph)

    search_parser = sub.add_parser(
        "search",
        help="search a system description (unified front end)",
        epilog=_SYSTEM_SCHEMA,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    search_parser.add_argument(
        "system",
        type=pathlib.Path,
        help="system description (.json) or verifiable Python program (.py)",
    )
    search_parser.add_argument(
        "--strategy",
        choices=("dfs", "random", "parallel"),
        default="dfs",
        help="search strategy (default: dfs)",
    )
    search_parser.add_argument("--max-depth", type=int, default=100)
    search_parser.add_argument("--max-paths", type=int, default=None)
    search_parser.add_argument("--max-transitions", type=int, default=None)
    search_parser.add_argument(
        "--time-budget",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget; the report is flagged incomplete when it expires",
    )
    search_parser.add_argument("--no-por", action="store_true")
    search_parser.add_argument("--count-states", action="store_true")
    search_parser.add_argument("--stop-on-first", action="store_true")
    search_parser.add_argument("--max-events", type=int, default=25)
    search_parser.add_argument(
        "--backtrack",
        choices=("restore", "replay"),
        default="restore",
        help="DFS backtracking mode: 'restore' rewinds the live run via "
        "undo-journal checkpoints (O(changes) per backtrack; falls back "
        "to replay automatically if an object is not journalable); "
        "'replay' is classic stateless re-execution. Both report "
        "identical results (default: restore)",
    )
    search_parser.add_argument(
        "--engine",
        choices=("walk", "compiled"),
        default="walk",
        help="execution engine: 'walk' is the reference tree-walking "
        "interpreter; 'compiled' translates the CFGs to Python closures "
        "for throughput, reporting identical results, and falls back to "
        "'walk' when the program uses an uncompilable construct "
        "(default: walk)",
    )
    search_parser.add_argument(
        "--state-cache",
        choices=("off", "exact", "hashcompact", "bitstate"),
        default="off",
        help="prune revisited states with a visited-state store: exact "
        "(full snapshots, sound), hashcompact (64-bit digests) or "
        "bitstate (Bloom filter; see --cache-bits). Default: off "
        "(pure stateless search)",
    )
    search_parser.add_argument(
        "--cache-bits",
        type=int,
        default=24,
        metavar="N",
        help="bitstate store size: 2**N bits (default: 24, i.e. 2 MiB)",
    )
    search_parser.add_argument(
        "--cache-mode",
        choices=("safe", "unsafe-fast"),
        default="safe",
        help="'safe' disables sleep-set pruning while caching (sound); "
        "'unsafe-fast' keeps it and may miss interleavings "
        "(default: safe)",
    )
    search_parser.add_argument(
        "--walks", type=int, default=100, help="random strategy: number of walks"
    )
    search_parser.add_argument(
        "--seed", type=int, default=0, help="random strategy: PRNG seed"
    )
    search_parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=0,
        metavar="N",
        help="parallel strategy: worker processes (0 = all cores)",
    )
    search_parser.add_argument(
        "--scheduler",
        choices=SCHEDULERS,
        default="static",
        help="parallel strategy: 'static' partitions the tree up front "
        "into fixed prefixes; 'steal' hands out subtree leases "
        "dynamically and lets idle workers steal from busy ones "
        "(identical reports either way; default: static)",
    )
    search_parser.add_argument(
        "--prefix-depth",
        type=int,
        default=None,
        help="parallel strategy: frontier depth of the prefix partition "
        "(default: auto-tuned)",
    )
    search_parser.add_argument(
        "--progress",
        action="store_true",
        help="print a live one-line search ticker to stderr",
    )
    search_parser.add_argument(
        "--stats",
        action="store_true",
        help="print the full search-telemetry summary after the run",
    )
    search_parser.add_argument(
        "--stats-json",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="dump the SearchStats telemetry as machine-readable JSON",
    )
    search_parser.add_argument(
        "--save-traces",
        type=pathlib.Path,
        default=None,
        metavar="DIR",
        help="write one replayable JSON trace file per violation to DIR "
        "(replay with 'repro replay', minimize with 'repro shrink')",
    )
    _add_obs_arguments(search_parser)
    search_parser.set_defaults(func=cmd_search)

    profile_parser = sub.add_parser(
        "profile",
        help="search a system and print the hot-spot profile",
        epilog=_SYSTEM_SCHEMA,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    profile_parser.add_argument(
        "system",
        type=pathlib.Path,
        help="system description (.json) or verifiable Python program (.py)",
    )
    profile_parser.add_argument(
        "--strategy",
        choices=("dfs", "random", "parallel"),
        default="dfs",
        help="search strategy to profile (default: dfs)",
    )
    profile_parser.add_argument("--max-depth", type=int, default=100)
    profile_parser.add_argument("--max-paths", type=int, default=None)
    profile_parser.add_argument("--max-transitions", type=int, default=None)
    profile_parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS"
    )
    profile_parser.add_argument("--walks", type=int, default=100)
    profile_parser.add_argument("--seed", type=int, default=0)
    profile_parser.add_argument("--jobs", "-j", type=int, default=0, metavar="N")
    profile_parser.add_argument(
        "--scheduler", choices=SCHEDULERS, default="static"
    )
    profile_parser.add_argument(
        "--engine",
        choices=("walk", "compiled"),
        default="walk",
        help="execution engine to profile (default: walk)",
    )
    profile_parser.add_argument(
        "--top",
        dest="profile_top",
        type=int,
        default=10,
        metavar="N",
        help="rows per hot-spot table (default: 10)",
    )
    profile_parser.add_argument(
        "--trace-out",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="also export a Chrome trace-event JSON timeline",
    )
    profile_parser.add_argument(
        "--stats-json",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="dump telemetry + profile as machine-readable JSON",
    )
    profile_parser.add_argument("--progress", action="store_true")
    profile_parser.set_defaults(
        func=cmd_profile,
        no_por=False,
        count_states=False,
        stop_on_first=False,
        max_events=25,
        backtrack="restore",
        state_cache="off",
        cache_bits=24,
        cache_mode="safe",
        prefix_depth=None,
        stats=False,
        save_traces=None,
        profile=True,
        stall_timeout=10.0,
    )

    report_parser = sub.add_parser(
        "report",
        help="render a run manifest (run.json) as a self-contained HTML report",
    )
    report_parser.add_argument(
        "manifest", type=pathlib.Path, help="run manifest (run.json)"
    )
    report_parser.add_argument(
        "-o",
        "--output",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="write the HTML here (default: print to stdout)",
    )
    report_parser.add_argument(
        "--source",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="annotate coverage onto this source file (overrides the "
        "program text embedded in the manifest)",
    )
    report_parser.add_argument(
        "--coverage-json",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="also extract the manifest's coverage block as JSON",
    )
    report_parser.set_defaults(func=cmd_report)

    replay_parser = sub.add_parser(
        "replay",
        help="re-execute a saved counterexample trace and verify it reproduces",
    )
    replay_parser.add_argument("trace", type=pathlib.Path, help="trace JSON file")
    replay_parser.add_argument(
        "--system",
        type=pathlib.Path,
        default=None,
        help="rebuild the system from this description instead of the "
        "trace's embedded payload",
    )
    replay_parser.add_argument(
        "--module",
        default=None,
        metavar="MODULE:FACTORY",
        help="rebuild the system by calling a zero-argument factory, "
        "e.g. repro.fiveess.app:demo_system",
    )
    replay_parser.add_argument(
        "--show-trace",
        action="store_true",
        help="also print the replayed scenario's visible operations",
    )
    replay_parser.add_argument(
        "--engine",
        choices=("walk", "compiled"),
        default="walk",
        help="execution engine for the re-execution; a note is printed "
        "when it differs from the engine the trace was found under "
        "(default: walk)",
    )
    replay_parser.set_defaults(func=cmd_replay)

    shrink_parser = sub.add_parser(
        "shrink",
        help="minimize a saved trace (ddmin + toss minimization)",
    )
    shrink_parser.add_argument("trace", type=pathlib.Path, help="trace JSON file")
    shrink_parser.add_argument(
        "-o",
        "--output",
        type=pathlib.Path,
        default=None,
        help="where to write the minimal trace (default: overwrite input)",
    )
    shrink_parser.add_argument(
        "--system",
        type=pathlib.Path,
        default=None,
        help="rebuild the system from this description instead of the "
        "trace's embedded payload",
    )
    shrink_parser.add_argument(
        "--module",
        default=None,
        metavar="MODULE:FACTORY",
        help="rebuild the system by calling a zero-argument factory",
    )
    shrink_parser.add_argument(
        "--max-runs",
        type=int,
        default=100_000,
        help="budget of oracle re-executions (default: 100000)",
    )
    shrink_parser.add_argument(
        "--show-trace",
        action="store_true",
        help="also print the minimal scenario's visible operations",
    )
    shrink_parser.set_defaults(func=cmd_shrink)

    submit_parser = sub.add_parser(
        "submit",
        help="enqueue a search as a durable job (run it with 'repro serve')",
        epilog=_SYSTEM_SCHEMA,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    submit_parser.add_argument(
        "system",
        type=pathlib.Path,
        help="system description (.json) or verifiable Python program (.py)",
    )
    _add_jobs_dir_argument(submit_parser)
    submit_parser.add_argument("--name", default=None, help="job display name")
    submit_parser.add_argument("--max-depth", type=int, default=100)
    submit_parser.add_argument("--max-paths", type=int, default=None)
    submit_parser.add_argument("--max-transitions", type=int, default=None)
    submit_parser.add_argument(
        "--time-budget", type=float, default=None, metavar="SECONDS"
    )
    submit_parser.add_argument("--no-por", action="store_true")
    submit_parser.add_argument("--count-states", action="store_true")
    submit_parser.add_argument("--stop-on-first", action="store_true")
    submit_parser.add_argument("--max-events", type=int, default=25)
    submit_parser.add_argument(
        "--backtrack", choices=("restore", "replay"), default="restore"
    )
    submit_parser.add_argument(
        "--engine", choices=("walk", "compiled"), default="walk"
    )
    submit_parser.add_argument(
        "--state-cache",
        choices=("off", "exact", "hashcompact", "bitstate"),
        default="off",
    )
    submit_parser.add_argument("--cache-bits", type=int, default=24, metavar="N")
    submit_parser.add_argument(
        "--cache-mode", choices=("safe", "unsafe-fast"), default="safe"
    )
    submit_parser.add_argument(
        "--jobs",
        "-j",
        type=int,
        default=0,
        metavar="N",
        help="worker processes per job (0 = all cores)",
    )
    submit_parser.add_argument(
        "--coverage",
        action="store_true",
        help="collect node/edge/toss coverage; the gauges stream into "
        "the job's stats.json heartbeats and the final manifest",
    )
    submit_parser.set_defaults(
        func=cmd_submit,
        strategy="parallel",
        scheduler="steal",
        walks=100,
        seed=0,
        prefix_depth=None,
        profile=False,
        stall_timeout=10.0,
    )

    serve_parser = sub.add_parser(
        "serve", help="run queued jobs from an on-disk job store"
    )
    _add_jobs_dir_argument(serve_parser)
    serve_parser.add_argument(
        "--once",
        action="store_true",
        help="drain the queue and exit instead of polling forever",
    )
    serve_parser.add_argument(
        "--poll",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="idle polling interval (default: 1)",
    )
    serve_parser.add_argument(
        "--max-jobs",
        type=int,
        default=None,
        metavar="N",
        help="exit after running N jobs",
    )
    serve_parser.add_argument(
        "--metrics-out",
        type=pathlib.Path,
        default=None,
        metavar="FILE",
        help="keep FILE updated in Prometheus text format (node_exporter "
        "textfile collector): per-job search counters, coverage gauges "
        "and frontier depth",
    )
    serve_parser.set_defaults(func=cmd_serve)

    jobs_parser = sub.add_parser("jobs", help="list jobs (or show one)")
    _add_jobs_dir_argument(jobs_parser)
    jobs_parser.add_argument(
        "job_id", nargs="?", default=None, help="show just this job"
    )
    jobs_parser.add_argument(
        "--json", action="store_true", help="with a job id: dump status as JSON"
    )
    jobs_parser.set_defaults(func=cmd_jobs)

    stop_parser = sub.add_parser(
        "stop", help="ask a running job to checkpoint its frontier and suspend"
    )
    _add_jobs_dir_argument(stop_parser)
    stop_parser.add_argument("job_id")
    stop_parser.set_defaults(func=cmd_stop)

    resume_parser = sub.add_parser(
        "resume", help="re-queue a stopped job to resume from its frontier"
    )
    _add_jobs_dir_argument(resume_parser)
    resume_parser.add_argument("job_id")
    resume_parser.set_defaults(func=cmd_resume)
    return parser


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.func(args)
    except LangError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except FileNotFoundError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2
    except BrokenPipeError:
        # stdout went away (e.g. piped into head); exit quietly.
        return 0
    except ValueError as err:
        print(f"error: {err}", file=sys.stderr)
        return 2


if __name__ == "__main__":
    sys.exit(main())
