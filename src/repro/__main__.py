"""``python -m repro`` — the command-line tool."""

import sys

from .cli import main

sys.exit(main())
