"""Token definitions for the RC language.

RC is the small C-like imperative language used throughout this
reproduction.  Its statement forms are exactly the four kinds assumed by
Section 4 of the paper (assignments, conditionals, procedure calls and
termination statements) plus surface sugar (``for``, ``switch``,
``break``/``continue``) that the normalizer and CFG builder lower.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from .errors import SourceLocation


class TokenKind(enum.Enum):
    """Every lexical token kind of the RC language."""
    # Literals and identifiers.
    INT = "int literal"
    STRING = "string literal"
    IDENT = "identifier"

    # Keywords.
    PROC = "proc"
    EXTERN = "extern"
    VAR = "var"
    IF = "if"
    ELSE = "else"
    WHILE = "while"
    FOR = "for"
    SWITCH = "switch"
    CASE = "case"
    DEFAULT = "default"
    RETURN = "return"
    EXIT = "exit"
    BREAK = "break"
    CONTINUE = "continue"
    SKIP = "skip"
    TRUE = "true"
    FALSE = "false"
    TOP = "top"

    # Punctuation.
    LPAREN = "("
    RPAREN = ")"
    LBRACE = "{"
    RBRACE = "}"
    LBRACKET = "["
    RBRACKET = "]"
    COMMA = ","
    SEMI = ";"
    COLON = ":"
    DOT = "."

    # Operators.
    ASSIGN = "="
    PLUS = "+"
    MINUS = "-"
    STAR = "*"
    SLASH = "/"
    PERCENT = "%"
    AMP = "&"
    EQ = "=="
    NE = "!="
    LT = "<"
    LE = "<="
    GT = ">"
    GE = ">="
    AND = "&&"
    OR = "||"
    NOT = "!"

    EOF = "end of input"


#: Keywords, mapped from their spelling to their token kind.
KEYWORDS: dict[str, TokenKind] = {
    "proc": TokenKind.PROC,
    "extern": TokenKind.EXTERN,
    "var": TokenKind.VAR,
    "if": TokenKind.IF,
    "else": TokenKind.ELSE,
    "while": TokenKind.WHILE,
    "for": TokenKind.FOR,
    "switch": TokenKind.SWITCH,
    "case": TokenKind.CASE,
    "default": TokenKind.DEFAULT,
    "return": TokenKind.RETURN,
    "exit": TokenKind.EXIT,
    "break": TokenKind.BREAK,
    "continue": TokenKind.CONTINUE,
    "skip": TokenKind.SKIP,
    "true": TokenKind.TRUE,
    "false": TokenKind.FALSE,
    "top": TokenKind.TOP,
}


@dataclass(frozen=True, slots=True)
class Token:
    """A single lexical token.

    ``value`` holds the decoded payload: an ``int`` for integer literals,
    the string contents for string literals, and the spelling for
    identifiers; it is ``None`` for punctuation and keywords.
    """

    kind: TokenKind
    value: int | str | None
    location: SourceLocation

    def __str__(self) -> str:
        if self.value is not None:
            return f"{self.kind.name}({self.value!r})"
        return self.kind.name
