"""Recursive-descent parser for the RC language.

Grammar (EBNF, ``[]`` optional, ``{}`` repetition)::

    program   = { procdecl | externdecl }
    externdecl= "extern" "proc" IDENT "(" [ params ] ")" ";"
    procdecl  = "proc" IDENT "(" [ params ] ")" block
    params    = IDENT { "," IDENT }
    block     = "{" { stmt } "}"
    stmt      = "var" IDENT [ "[" INT "]" ] [ "=" expr ] ";"
              | "if" "(" expr ")" block [ "else" ( block | ifstmt ) ]
              | "while" "(" expr ")" block
              | "for" "(" [ simple ] ";" [ expr ] ";" [ simple ] ")" block
              | "switch" "(" expr ")" "{" { case } [ defaultcase ] "}"
              | "return" [ expr ] ";"
              | "exit" ";" | "break" ";" | "continue" ";" | "skip" ";"
              | simple ";"
    simple    = lvalue "=" expr            (assignment; rhs may be a call)
              | IDENT "(" [ args ] ")"     (call statement)
    case      = "case" (INT | STRING) ":" { stmt }
    defaultcase = "default" ":" { stmt }

Expressions use standard C precedence:
``||`` < ``&&`` < ``== !=`` < ``< <= > >=`` < ``+ -`` < ``* / %`` <
unary (``- ! & *``) < postfix (``[...]``, ``.field``, call) < primary.
"""

from __future__ import annotations

from . import ast
from .errors import ParseError
from .lexer import tokenize
from .tokens import Token, TokenKind

_COMPARISONS = {
    TokenKind.EQ: "==",
    TokenKind.NE: "!=",
    TokenKind.LT: "<",
    TokenKind.LE: "<=",
    TokenKind.GT: ">",
    TokenKind.GE: ">=",
}

_ADDITIVE = {TokenKind.PLUS: "+", TokenKind.MINUS: "-"}
_MULTIPLICATIVE = {TokenKind.STAR: "*", TokenKind.SLASH: "/", TokenKind.PERCENT: "%"}


class Parser:
    """Parses a token stream into a :class:`repro.lang.ast.Program`."""

    def __init__(self, tokens: list[Token]):
        self._tokens = tokens
        self._pos = 0

    # -- token plumbing ----------------------------------------------------

    def _peek(self, offset: int = 0) -> Token:
        index = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[index]

    def _at(self, kind: TokenKind) -> bool:
        return self._peek().kind is kind

    def _advance(self) -> Token:
        token = self._tokens[self._pos]
        if token.kind is not TokenKind.EOF:
            self._pos += 1
        return token

    def _expect(self, kind: TokenKind) -> Token:
        token = self._peek()
        if token.kind is not kind:
            raise ParseError(f"expected {kind.value!r}, found {token}", token.location)
        return self._advance()

    def _accept(self, kind: TokenKind) -> Token | None:
        if self._at(kind):
            return self._advance()
        return None

    # -- top level -----------------------------------------------------------

    def parse_program(self) -> ast.Program:
        procs: dict[str, ast.Proc] = {}
        externs: dict[str, ast.ExternDecl] = {}
        while not self._at(TokenKind.EOF):
            if self._at(TokenKind.EXTERN):
                decl = self._parse_extern()
                if decl.name in externs or decl.name in procs:
                    raise ParseError(f"duplicate declaration of {decl.name!r}", decl.location)
                externs[decl.name] = decl
            else:
                proc = self._parse_proc()
                if proc.name in procs or proc.name in externs:
                    raise ParseError(f"duplicate declaration of {proc.name!r}", proc.location)
                procs[proc.name] = proc
        return ast.Program(procs=procs, externs=externs)

    def _parse_extern(self) -> ast.ExternDecl:
        location = self._expect(TokenKind.EXTERN).location
        self._expect(TokenKind.PROC)
        name = self._expect(TokenKind.IDENT)
        params = self._parse_params()
        self._expect(TokenKind.SEMI)
        return ast.ExternDecl(str(name.value), params, location)

    def _parse_proc(self) -> ast.Proc:
        location = self._expect(TokenKind.PROC).location
        name = self._expect(TokenKind.IDENT)
        params = self._parse_params()
        body = self._parse_block()
        return ast.Proc(str(name.value), params, body, location)

    def _parse_params(self) -> tuple[str, ...]:
        self._expect(TokenKind.LPAREN)
        params: list[str] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                token = self._expect(TokenKind.IDENT)
                if token.value in params:
                    raise ParseError(f"duplicate parameter {token.value!r}", token.location)
                params.append(str(token.value))
                if self._accept(TokenKind.COMMA) is None:
                    break
        self._expect(TokenKind.RPAREN)
        return tuple(params)

    # -- statements ----------------------------------------------------------

    def _parse_block(self) -> tuple[ast.Stmt, ...]:
        self._expect(TokenKind.LBRACE)
        stmts: list[ast.Stmt] = []
        while not self._at(TokenKind.RBRACE):
            stmts.append(self._parse_stmt())
        self._expect(TokenKind.RBRACE)
        return tuple(stmts)

    def _parse_stmt(self) -> ast.Stmt:
        token = self._peek()
        kind = token.kind
        if kind is TokenKind.VAR:
            return self._parse_var_decl()
        if kind is TokenKind.IF:
            return self._parse_if()
        if kind is TokenKind.WHILE:
            return self._parse_while()
        if kind is TokenKind.FOR:
            return self._parse_for()
        if kind is TokenKind.SWITCH:
            return self._parse_switch()
        if kind is TokenKind.RETURN:
            self._advance()
            value = None
            if not self._at(TokenKind.SEMI):
                value = self._parse_expr()
            self._expect(TokenKind.SEMI)
            return ast.Return(value, token.location)
        if kind is TokenKind.EXIT:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Exit(token.location)
        if kind is TokenKind.BREAK:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Break(token.location)
        if kind is TokenKind.CONTINUE:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Continue(token.location)
        if kind is TokenKind.SKIP:
            self._advance()
            self._expect(TokenKind.SEMI)
            return ast.Skip(token.location)
        stmt = self._parse_simple_stmt()
        self._expect(TokenKind.SEMI)
        return stmt

    def _parse_var_decl(self) -> ast.VarDecl:
        location = self._expect(TokenKind.VAR).location
        name = self._expect(TokenKind.IDENT)
        array_size = None
        if self._accept(TokenKind.LBRACKET) is not None:
            size = self._expect(TokenKind.INT)
            self._expect(TokenKind.RBRACKET)
            array_size = int(size.value)
            if array_size <= 0:
                raise ParseError("array size must be positive", size.location)
        init = None
        if self._accept(TokenKind.ASSIGN) is not None:
            if array_size is not None:
                raise ParseError("array declarations cannot have initializers", location)
            init = self._parse_expr()
        self._expect(TokenKind.SEMI)
        return ast.VarDecl(str(name.value), init, array_size, location)

    def _parse_if(self) -> ast.If:
        location = self._expect(TokenKind.IF).location
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        then_body = self._parse_block()
        else_body: tuple[ast.Stmt, ...] = ()
        if self._accept(TokenKind.ELSE) is not None:
            if self._at(TokenKind.IF):
                else_body = (self._parse_if(),)
            else:
                else_body = self._parse_block()
        return ast.If(cond, then_body, else_body, location)

    def _parse_while(self) -> ast.While:
        location = self._expect(TokenKind.WHILE).location
        self._expect(TokenKind.LPAREN)
        cond = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        body = self._parse_block()
        return ast.While(cond, body, location)

    def _parse_for(self) -> ast.For:
        location = self._expect(TokenKind.FOR).location
        self._expect(TokenKind.LPAREN)
        init = None
        if self._at(TokenKind.VAR):
            init = self._parse_var_decl()  # consumes its own semicolon
        elif not self._at(TokenKind.SEMI):
            init = self._parse_simple_stmt()
            self._expect(TokenKind.SEMI)
        else:
            self._expect(TokenKind.SEMI)
        cond = None
        if not self._at(TokenKind.SEMI):
            cond = self._parse_expr()
        self._expect(TokenKind.SEMI)
        step = None
        if not self._at(TokenKind.RPAREN):
            step = self._parse_simple_stmt()
        self._expect(TokenKind.RPAREN)
        body = self._parse_block()
        return ast.For(init, cond, step, body, location)

    def _parse_switch(self) -> ast.Switch:
        location = self._expect(TokenKind.SWITCH).location
        self._expect(TokenKind.LPAREN)
        subject = self._parse_expr()
        self._expect(TokenKind.RPAREN)
        self._expect(TokenKind.LBRACE)
        cases: list[ast.SwitchCase] = []
        default: tuple[ast.Stmt, ...] = ()
        seen_default = False
        seen_values: set[int | str] = set()
        while not self._at(TokenKind.RBRACE):
            if self._at(TokenKind.CASE):
                case_loc = self._advance().location
                if seen_default:
                    raise ParseError("case after default", case_loc)
                value_token = self._peek()
                if value_token.kind is TokenKind.INT:
                    value: int | str = int(self._advance().value)
                elif value_token.kind is TokenKind.STRING:
                    value = str(self._advance().value)
                elif value_token.kind is TokenKind.MINUS:
                    self._advance()
                    value = -int(self._expect(TokenKind.INT).value)
                else:
                    raise ParseError("case label must be an integer or string literal", value_token.location)
                if value in seen_values:
                    raise ParseError(f"duplicate case label {value!r}", case_loc)
                seen_values.add(value)
                self._expect(TokenKind.COLON)
                body = self._parse_case_body()
                cases.append(ast.SwitchCase(value, body, case_loc))
            elif self._at(TokenKind.DEFAULT):
                default_loc = self._advance().location
                if seen_default:
                    raise ParseError("duplicate default case", default_loc)
                seen_default = True
                self._expect(TokenKind.COLON)
                default = self._parse_case_body()
            else:
                raise ParseError(f"expected 'case' or 'default', found {self._peek()}", self._peek().location)
        self._expect(TokenKind.RBRACE)
        return ast.Switch(subject, tuple(cases), default, location)

    def _parse_case_body(self) -> tuple[ast.Stmt, ...]:
        stmts: list[ast.Stmt] = []
        while not (
            self._at(TokenKind.CASE) or self._at(TokenKind.DEFAULT) or self._at(TokenKind.RBRACE)
        ):
            stmts.append(self._parse_stmt())
        return tuple(stmts)

    def _parse_simple_stmt(self) -> ast.Stmt:
        """An assignment or a call statement (no trailing semicolon)."""
        location = self._peek().location
        expr = self._parse_expr()
        if self._accept(TokenKind.ASSIGN) is not None:
            if not ast.is_lvalue(expr):
                raise ParseError("assignment target is not an lvalue", location)
            value = self._parse_expr()
            if isinstance(value, ast.CallExpr):
                return ast.CallStmt(value.callee, value.args, expr, location)
            return ast.Assign(expr, value, location)
        if isinstance(expr, ast.CallExpr):
            return ast.CallStmt(expr.callee, expr.args, None, location)
        raise ParseError("expression statement must be a call or assignment", location)

    # -- expressions ---------------------------------------------------------

    def _parse_expr(self) -> ast.Expr:
        return self._parse_or()

    def _parse_or(self) -> ast.Expr:
        left = self._parse_and()
        while self._at(TokenKind.OR):
            location = self._advance().location
            right = self._parse_and()
            left = ast.Binary("||", left, right, location)
        return left

    def _parse_and(self) -> ast.Expr:
        left = self._parse_equality()
        while self._at(TokenKind.AND):
            location = self._advance().location
            right = self._parse_equality()
            left = ast.Binary("&&", left, right, location)
        return left

    def _parse_equality(self) -> ast.Expr:
        left = self._parse_relational()
        while self._peek().kind in (TokenKind.EQ, TokenKind.NE):
            token = self._advance()
            right = self._parse_relational()
            left = ast.Binary(_COMPARISONS[token.kind], left, right, token.location)
        return left

    def _parse_relational(self) -> ast.Expr:
        left = self._parse_additive()
        while self._peek().kind in (TokenKind.LT, TokenKind.LE, TokenKind.GT, TokenKind.GE):
            token = self._advance()
            right = self._parse_additive()
            left = ast.Binary(_COMPARISONS[token.kind], left, right, token.location)
        return left

    def _parse_additive(self) -> ast.Expr:
        left = self._parse_multiplicative()
        while self._peek().kind in _ADDITIVE:
            token = self._advance()
            right = self._parse_multiplicative()
            left = ast.Binary(_ADDITIVE[token.kind], left, right, token.location)
        return left

    def _parse_multiplicative(self) -> ast.Expr:
        left = self._parse_unary()
        while self._peek().kind in _MULTIPLICATIVE:
            token = self._advance()
            right = self._parse_unary()
            left = ast.Binary(_MULTIPLICATIVE[token.kind], left, right, token.location)
        return left

    def _parse_unary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.MINUS:
            self._advance()
            return ast.Unary("-", self._parse_unary(), token.location)
        if token.kind is TokenKind.NOT:
            self._advance()
            return ast.Unary("!", self._parse_unary(), token.location)
        if token.kind is TokenKind.AMP:
            self._advance()
            operand = self._parse_unary()
            if not ast.is_lvalue(operand):
                raise ParseError("'&' requires an lvalue operand", token.location)
            return ast.Unary("&", operand, token.location)
        if token.kind is TokenKind.STAR:
            self._advance()
            return ast.Unary("*", self._parse_unary(), token.location)
        return self._parse_postfix()

    def _parse_postfix(self) -> ast.Expr:
        expr = self._parse_primary()
        while True:
            token = self._peek()
            if token.kind is TokenKind.LBRACKET:
                self._advance()
                index = self._parse_expr()
                self._expect(TokenKind.RBRACKET)
                expr = ast.Index(expr, index, token.location)
            elif token.kind is TokenKind.DOT:
                self._advance()
                field = self._expect(TokenKind.IDENT)
                expr = ast.Field(expr, str(field.value), token.location)
            elif token.kind is TokenKind.LPAREN and isinstance(expr, ast.Name):
                args = self._parse_args()
                expr = ast.CallExpr(expr.ident, args, token.location)
            else:
                return expr

    def _parse_args(self) -> tuple[ast.Expr, ...]:
        self._expect(TokenKind.LPAREN)
        args: list[ast.Expr] = []
        if not self._at(TokenKind.RPAREN):
            while True:
                args.append(self._parse_expr())
                if self._accept(TokenKind.COMMA) is None:
                    break
        self._expect(TokenKind.RPAREN)
        return tuple(args)

    def _parse_primary(self) -> ast.Expr:
        token = self._peek()
        if token.kind is TokenKind.INT:
            self._advance()
            return ast.IntLit(int(token.value), token.location)
        if token.kind is TokenKind.STRING:
            self._advance()
            return ast.StrLit(str(token.value), token.location)
        if token.kind is TokenKind.TRUE:
            self._advance()
            return ast.BoolLit(True, token.location)
        if token.kind is TokenKind.FALSE:
            self._advance()
            return ast.BoolLit(False, token.location)
        if token.kind is TokenKind.TOP:
            self._advance()
            return ast.AbstractLit(token.location)
        if token.kind is TokenKind.IDENT:
            self._advance()
            return ast.Name(str(token.value), token.location)
        if token.kind is TokenKind.LPAREN:
            self._advance()
            expr = self._parse_expr()
            self._expect(TokenKind.RPAREN)
            return expr
        raise ParseError(f"expected expression, found {token}", token.location)


def parse_program(source: str) -> ast.Program:
    """Parse RC source text into a :class:`repro.lang.ast.Program`."""
    parser = Parser(tokenize(source))
    return parser.parse_program()


def parse_expr(source: str) -> ast.Expr:
    """Parse a single RC expression (handy in tests and the REPL examples)."""
    parser = Parser(tokenize(source))
    expr = parser._parse_expr()
    trailing = parser._peek()
    if trailing.kind is not TokenKind.EOF:
        raise ParseError(f"unexpected trailing input {trailing}", trailing.location)
    return expr
