"""Hand-written lexer for the RC language.

The lexer is a straightforward single-pass scanner.  It supports ``//``
line comments and ``/* ... */`` block comments, decimal integer literals,
single- or double-quoted string literals (used as symbolic message tags,
e.g. ``send(out, 'even')``), identifiers and the operator set listed in
:mod:`repro.lang.tokens`.
"""

from __future__ import annotations

from .errors import LexError, SourceLocation
from .tokens import KEYWORDS, Token, TokenKind

_TWO_CHAR_OPERATORS = {
    "==": TokenKind.EQ,
    "!=": TokenKind.NE,
    "<=": TokenKind.LE,
    ">=": TokenKind.GE,
    "&&": TokenKind.AND,
    "||": TokenKind.OR,
}

_ONE_CHAR_OPERATORS = {
    "(": TokenKind.LPAREN,
    ")": TokenKind.RPAREN,
    "{": TokenKind.LBRACE,
    "}": TokenKind.RBRACE,
    "[": TokenKind.LBRACKET,
    "]": TokenKind.RBRACKET,
    ",": TokenKind.COMMA,
    ";": TokenKind.SEMI,
    ":": TokenKind.COLON,
    ".": TokenKind.DOT,
    "=": TokenKind.ASSIGN,
    "+": TokenKind.PLUS,
    "-": TokenKind.MINUS,
    "*": TokenKind.STAR,
    "/": TokenKind.SLASH,
    "%": TokenKind.PERCENT,
    "&": TokenKind.AMP,
    "<": TokenKind.LT,
    ">": TokenKind.GT,
    "!": TokenKind.NOT,
}


_ASCII_DIGITS = frozenset("0123456789")
_ASCII_WORD_START = frozenset(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ_"
)
_ASCII_WORD = _ASCII_WORD_START | _ASCII_DIGITS


class Lexer:
    """Tokenizes RC source text."""

    def __init__(self, source: str):
        self._source = source
        self._pos = 0
        self._line = 1
        self._col = 1

    def tokenize(self) -> list[Token]:
        """Scan the whole input and return the token list (ending in EOF)."""
        tokens: list[Token] = []
        while True:
            token = self._next_token()
            tokens.append(token)
            if token.kind is TokenKind.EOF:
                return tokens

    # -- internals ---------------------------------------------------------

    def _location(self) -> SourceLocation:
        return SourceLocation(self._line, self._col)

    def _peek(self, offset: int = 0) -> str:
        index = self._pos + offset
        if index < len(self._source):
            return self._source[index]
        return ""

    def _advance(self) -> str:
        char = self._source[self._pos]
        self._pos += 1
        if char == "\n":
            self._line += 1
            self._col = 1
        else:
            self._col += 1
        return char

    def _skip_trivia(self) -> None:
        while self._pos < len(self._source):
            char = self._peek()
            if char in " \t\r\n":
                self._advance()
            elif char == "/" and self._peek(1) == "/":
                while self._pos < len(self._source) and self._peek() != "\n":
                    self._advance()
            elif char == "/" and self._peek(1) == "*":
                start = self._location()
                self._advance()
                self._advance()
                while True:
                    if self._pos >= len(self._source):
                        raise LexError("unterminated block comment", start)
                    if self._peek() == "*" and self._peek(1) == "/":
                        self._advance()
                        self._advance()
                        break
                    self._advance()
            else:
                return

    def _next_token(self) -> Token:
        self._skip_trivia()
        location = self._location()
        if self._pos >= len(self._source):
            return Token(TokenKind.EOF, None, location)

        char = self._peek()
        # ASCII-only classification: str.isdigit()/isalpha() accept
        # characters like '²' that int() cannot parse.
        if char in _ASCII_DIGITS:
            return self._lex_number(location)
        if char in _ASCII_WORD_START:
            return self._lex_word(location)
        if char in "'\"":
            return self._lex_string(location)

        two = self._source[self._pos : self._pos + 2]
        if two in _TWO_CHAR_OPERATORS:
            self._advance()
            self._advance()
            return Token(_TWO_CHAR_OPERATORS[two], None, location)
        if char in _ONE_CHAR_OPERATORS:
            self._advance()
            return Token(_ONE_CHAR_OPERATORS[char], None, location)
        raise LexError(f"unexpected character {char!r}", location)

    def _lex_number(self, location: SourceLocation) -> Token:
        digits = []
        while self._pos < len(self._source) and self._peek() in _ASCII_DIGITS:
            digits.append(self._advance())
        if self._pos < len(self._source) and self._peek() in _ASCII_WORD_START:
            raise LexError("identifier may not start with a digit", location)
        return Token(TokenKind.INT, int("".join(digits)), location)

    def _lex_word(self, location: SourceLocation) -> Token:
        chars = []
        while self._pos < len(self._source) and self._peek() in _ASCII_WORD:
            chars.append(self._advance())
        word = "".join(chars)
        keyword = KEYWORDS.get(word)
        if keyword is not None:
            return Token(keyword, None, location)
        return Token(TokenKind.IDENT, word, location)

    def _lex_string(self, location: SourceLocation) -> Token:
        quote = self._advance()
        chars = []
        while True:
            if self._pos >= len(self._source) or self._peek() == "\n":
                raise LexError("unterminated string literal", location)
            char = self._advance()
            if char == quote:
                break
            if char == "\\":
                escape = self._advance()
                replacements = {"n": "\n", "t": "\t", "\\": "\\", "'": "'", '"': '"'}
                if escape not in replacements:
                    raise LexError(f"unknown escape sequence \\{escape}", location)
                chars.append(replacements[escape])
            else:
                chars.append(char)
        return Token(TokenKind.STRING, "".join(chars), location)


def tokenize(source: str) -> list[Token]:
    """Convenience wrapper: tokenize ``source`` in one call."""
    return Lexer(source).tokenize()
