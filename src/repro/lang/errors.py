"""Error types raised by the RC language front end.

Every front-end error carries a :class:`SourceLocation` so tools built on
top of the library (the closing tool, the C front end, the examples) can
report precise positions.  Runtime errors live in :mod:`repro.runtime.errors`.
"""

from __future__ import annotations

from dataclasses import dataclass


@dataclass(frozen=True, slots=True)
class SourceLocation:
    """A position in an RC source text (1-based line and column)."""

    line: int
    column: int

    def __str__(self) -> str:
        return f"{self.line}:{self.column}"


#: Location used for synthesized nodes (normalization temporaries,
#: VS_toss branch nodes inserted by the closing transformation, ...).
SYNTHETIC = SourceLocation(0, 0)


class LangError(Exception):
    """Base class of all RC front-end errors."""

    def __init__(self, message: str, location: SourceLocation | None = None):
        self.location = location
        if location is not None and location != SYNTHETIC:
            message = f"{location}: {message}"
        super().__init__(message)


class LexError(LangError):
    """An unrecognised character or malformed literal in the input."""


class ParseError(LangError):
    """The token stream does not form a valid RC program."""


class NormalizationError(LangError):
    """The program cannot be brought into core form (see lang.normalize)."""


class CFrontError(LangError):
    """The pycparser-based C front end met an unsupported C construct."""
