"""The RC language front end: lexer, parser, AST, pretty-printer,
normalizer, and the optional pycparser-based C front end."""

from . import ast
from .errors import (
    CFrontError,
    LangError,
    LexError,
    NormalizationError,
    ParseError,
    SourceLocation,
)
from .lexer import tokenize
from .normalize import normalize_proc, normalize_program
from .parser import parse_expr, parse_program
from .pretty import pretty, pretty_expr, pretty_proc

__all__ = [
    "CFrontError",
    "LangError",
    "LexError",
    "NormalizationError",
    "ParseError",
    "SourceLocation",
    "ast",
    "normalize_proc",
    "normalize_program",
    "parse_expr",
    "parse_program",
    "pretty",
    "pretty_expr",
    "pretty_proc",
    "tokenize",
]
