"""A pycparser-based front end for a subset of real C.

The paper's prototype tool closed open programs *written in the C
programming language*.  This module mirrors that ingestion path: it
translates a supported C subset into RC ASTs, after which the entire
pipeline (normalize → CFG → close → explore) is identical.

Supported subset:

* function definitions and ``extern``-style prototypes (a prototype with
  no body becomes an RC extern — an environment procedure);
* scalar declarations with optional initializers, constant-size arrays,
  ``struct`` variables (field-insensitive records);
* assignments including compound forms (``+=`` ...), ``++``/``--``;
* ``if``/``while``/``for``/``switch``/``break``/``continue``/``return``;
* the operators ``+ - * / % == != < <= > >= && || !``, unary ``- & *``;
* calls, including the VeriSoft-style primitives ``VS_toss``,
  ``VS_assert`` and the communication operations ``send``/``recv``/
  ``sem_p``/... (spelled as ordinary C function calls);
* ``.`` and ``->`` member access, array indexing.

Anything else (gotos, function pointers, casts with semantic content,
varargs, preprocessor output beyond plain code) raises
:class:`~repro.lang.errors.CFrontError`.  Run the preprocessor first;
``VS_toss``/``VS_assert``/channel primitives need no declarations.
"""

from __future__ import annotations

from . import ast
from .errors import SYNTHETIC, CFrontError, SourceLocation

try:  # pycparser is an optional dependency.
    from pycparser import c_ast, c_parser

    HAVE_PYCPARSER = True
except ImportError:  # pragma: no cover - exercised only without pycparser
    HAVE_PYCPARSER = False


_BINARY_OPS = {
    "+", "-", "*", "/", "%", "==", "!=", "<", "<=", ">", ">=", "&&", "||",
}

_COMPOUND_ASSIGN = {
    "+=": "+",
    "-=": "-",
    "*=": "*",
    "/=": "/",
    "%=": "%",
}

#: Names treated as built-in even though C sees plain function calls.
_PRIMITIVES = {
    "send", "recv", "poll", "sem_p", "sem_v", "read", "write",
    "VS_toss", "VS_assert", "channel", "semaphore", "shared", "record",
}


def _loc(node) -> SourceLocation:
    coord = getattr(node, "coord", None)
    if coord is None:
        return SYNTHETIC
    return SourceLocation(coord.line or 0, coord.column or 0)


class _Translator:
    def __init__(self):
        if not HAVE_PYCPARSER:
            raise CFrontError(
                "pycparser is not installed; install the 'cfront' extra to "
                "translate C sources"
            )

    # -- top level ----------------------------------------------------------------

    def translate(self, c_source: str) -> ast.Program:
        parser = c_parser.CParser()
        try:
            unit = parser.parse(c_source)
        except Exception as err:  # pycparser raises plain Exceptions
            raise CFrontError(f"C parse error: {err}") from err
        procs: dict[str, ast.Proc] = {}
        externs: dict[str, ast.ExternDecl] = {}
        for item in unit.ext:
            if isinstance(item, c_ast.FuncDef):
                proc = self._func_def(item)
                procs[proc.name] = proc
            elif isinstance(item, c_ast.Decl) and isinstance(item.type, c_ast.FuncDecl):
                name = item.name
                if name in _PRIMITIVES:
                    continue  # primitive prototypes need no declaration
                params = self._param_names(item.type)
                externs[name] = ast.ExternDecl(name, params, _loc(item))
            elif isinstance(item, c_ast.Typedef):
                continue  # layout-only; records are structural in RC
            elif isinstance(item, c_ast.Decl) and item.name is None:
                continue  # bare struct/union/enum declaration: layout-only
            elif isinstance(item, c_ast.Decl):
                raise CFrontError(
                    f"global variables are not supported ({item.name}); RC "
                    "processes share data only through communication objects",
                    _loc(item),
                )
            else:
                raise CFrontError(
                    f"unsupported top-level construct {type(item).__name__}", _loc(item)
                )
        # Functions defined later in the file are not externs.
        for name in list(externs):
            if name in procs:
                del externs[name]
        return ast.Program(procs=procs, externs=externs)

    def _param_names(self, func_decl) -> tuple[str, ...]:
        params: list[str] = []
        if func_decl.args is None:
            return ()
        for param in func_decl.args.params:
            if isinstance(param, c_ast.EllipsisParam):
                raise CFrontError("varargs are not supported", _loc(param))
            name = getattr(param, "name", None)
            if name is None:
                # `void` parameter list.
                if self._is_void(param):
                    continue
                raise CFrontError("unnamed parameter", _loc(param))
            params.append(name)
        return tuple(params)

    @staticmethod
    def _is_void(param) -> bool:
        type_ = getattr(param, "type", None)
        names = getattr(getattr(type_, "type", None), "names", None)
        return names == ["void"]

    def _func_def(self, node) -> ast.Proc:
        name = node.decl.name
        params = self._param_names(node.decl.type)
        body = self._compound(node.body)
        return ast.Proc(name, params, tuple(body), _loc(node))

    # -- statements -----------------------------------------------------------------

    def _compound(self, node) -> list[ast.Stmt]:
        if node is None or node.block_items is None:
            return []
        out: list[ast.Stmt] = []
        for item in node.block_items:
            out.extend(self._stmt(item))
        return out

    def _stmt_block(self, node) -> tuple[ast.Stmt, ...]:
        if node is None:
            return ()
        if isinstance(node, c_ast.Compound):
            return tuple(self._compound(node))
        return tuple(self._stmt(node))

    def _stmt(self, node) -> list[ast.Stmt]:
        if isinstance(node, c_ast.Decl):
            return [self._decl(node)]
        if isinstance(node, c_ast.DeclList):
            return [self._decl(decl) for decl in node.decls]
        if isinstance(node, c_ast.Assignment):
            return [self._assignment(node)]
        if isinstance(node, c_ast.UnaryOp) and node.op in ("p++", "p--", "++", "--"):
            return [self._incdec(node)]
        if isinstance(node, c_ast.FuncCall):
            callee, args = self._call_parts(node)
            return [ast.CallStmt(callee, args, None, _loc(node))]
        if isinstance(node, c_ast.If):
            cond = self._expr(node.cond)
            return [
                ast.If(
                    cond,
                    self._stmt_block(node.iftrue),
                    self._stmt_block(node.iffalse),
                    _loc(node),
                )
            ]
        if isinstance(node, c_ast.While):
            return [ast.While(self._expr(node.cond), self._stmt_block(node.stmt), _loc(node))]
        if isinstance(node, c_ast.DoWhile):
            body = self._stmt_block(node.stmt)
            # do { B } while (c)  ==>  B; while (c) { B }
            return list(body) + [ast.While(self._expr(node.cond), body, _loc(node))]
        if isinstance(node, c_ast.For):
            init: ast.Stmt | None = None
            if node.init is not None:
                init_stmts = self._stmt(node.init)
                if len(init_stmts) != 1:
                    raise CFrontError("for-init must be a single statement", _loc(node))
                init = init_stmts[0]
            cond = self._expr(node.cond) if node.cond is not None else None
            step: ast.Stmt | None = None
            if node.next is not None:
                step_stmts = self._stmt(node.next)
                if len(step_stmts) != 1:
                    raise CFrontError("for-step must be a single statement", _loc(node))
                step = step_stmts[0]
            return [ast.For(init, cond, step, self._stmt_block(node.stmt), _loc(node))]
        if isinstance(node, c_ast.Switch):
            return [self._switch(node)]
        if isinstance(node, c_ast.Return):
            value = self._expr(node.expr) if node.expr is not None else None
            return [ast.Return(value, _loc(node))]
        if isinstance(node, c_ast.Break):
            return [ast.Break(_loc(node))]
        if isinstance(node, c_ast.Continue):
            return [ast.Continue(_loc(node))]
        if isinstance(node, c_ast.EmptyStatement):
            return [ast.Skip(_loc(node))]
        if isinstance(node, c_ast.Compound):
            return self._compound(node)
        raise CFrontError(f"unsupported statement {type(node).__name__}", _loc(node))

    def _decl(self, node) -> ast.Stmt:
        if isinstance(node.type, c_ast.ArrayDecl):
            size = node.type.dim
            if not isinstance(size, c_ast.Constant):
                raise CFrontError("array size must be a constant", _loc(node))
            if node.init is not None:
                raise CFrontError("array initializers are not supported", _loc(node))
            return ast.VarDecl(node.name, None, int(size.value, 0), _loc(node))
        init = self._expr(node.init) if node.init is not None else None
        if init is None and self._is_struct_value(node.type):
            # `struct s x;` declares a by-value record: start it empty.
            init = ast.CallExpr("record", (), _loc(node))
        return ast.VarDecl(node.name, init, None, _loc(node))

    @staticmethod
    def _is_struct_value(type_node) -> bool:
        return isinstance(type_node, c_ast.TypeDecl) and isinstance(
            type_node.type, (c_ast.Struct, c_ast.Union)
        )

    def _assignment(self, node) -> ast.Stmt:
        target = self._expr(node.lvalue)
        if not ast.is_lvalue(target):
            raise CFrontError("assignment target is not an lvalue", _loc(node))
        value = self._expr(node.rvalue)
        if node.op == "=":
            if isinstance(value, ast.CallExpr):
                return ast.CallStmt(value.callee, value.args, target, _loc(node))
            return ast.Assign(target, value, _loc(node))
        base_op = _COMPOUND_ASSIGN.get(node.op)
        if base_op is None:
            raise CFrontError(f"unsupported assignment operator {node.op!r}", _loc(node))
        return ast.Assign(
            target, ast.Binary(base_op, target, value, _loc(node)), _loc(node)
        )

    def _incdec(self, node) -> ast.Stmt:
        target = self._expr(node.expr)
        op = "+" if "++" in node.op else "-"
        return ast.Assign(
            target,
            ast.Binary(op, target, ast.IntLit(1, _loc(node)), _loc(node)),
            _loc(node),
        )

    def _switch(self, node) -> ast.Stmt:
        subject = self._expr(node.cond)
        cases: list[ast.SwitchCase] = []
        default: tuple[ast.Stmt, ...] = ()
        if not isinstance(node.stmt, c_ast.Compound) or node.stmt.block_items is None:
            raise CFrontError("switch body must be a compound statement", _loc(node))
        for item in node.stmt.block_items:
            if isinstance(item, c_ast.Case):
                label = self._expr(item.expr)
                if isinstance(label, ast.IntLit):
                    value: int | str = label.value
                elif isinstance(label, ast.Unary) and label.op == "-" and isinstance(
                    label.operand, ast.IntLit
                ):
                    value = -label.operand.value
                elif isinstance(label, ast.StrLit):
                    value = label.value
                else:
                    raise CFrontError("case label must be a constant", _loc(item))
                body = self._case_body(item.stmts)
                cases.append(ast.SwitchCase(value, body, _loc(item)))
            elif isinstance(item, c_ast.Default):
                default = self._case_body(item.stmts)
            else:
                raise CFrontError(
                    "statements between switch cases are not supported", _loc(item)
                )
        return ast.Switch(subject, tuple(cases), default, _loc(node))

    def _case_body(self, stmts) -> tuple[ast.Stmt, ...]:
        out: list[ast.Stmt] = []
        for stmt in stmts or []:
            if isinstance(stmt, c_ast.Break):
                # RC switch arms never fall through; a trailing break is
                # implicit.  (Fall-through between arms is unsupported.)
                break
            out.extend(self._stmt(stmt))
        return tuple(out)

    # -- expressions ---------------------------------------------------------------------

    def _call_parts(self, node) -> tuple[str, tuple[ast.Expr, ...]]:
        if not isinstance(node.name, c_ast.ID):
            raise CFrontError("function pointers are not supported", _loc(node))
        args: tuple[ast.Expr, ...] = ()
        if node.args is not None:
            args = tuple(self._expr(arg) for arg in node.args.exprs)
        return node.name.name, args

    def _expr(self, node) -> ast.Expr:
        if isinstance(node, c_ast.Constant):
            if node.type in ("int", "long int", "unsigned int", "long long int"):
                return ast.IntLit(int(node.value.rstrip("uUlL"), 0), _loc(node))
            if node.type == "char":
                return ast.StrLit(node.value.strip("'"), _loc(node))
            if node.type == "string":
                return ast.StrLit(node.value.strip('"'), _loc(node))
            raise CFrontError(f"unsupported constant type {node.type!r}", _loc(node))
        if isinstance(node, c_ast.ID):
            return ast.Name(node.name, _loc(node))
        if isinstance(node, c_ast.BinaryOp):
            if node.op not in _BINARY_OPS:
                raise CFrontError(f"unsupported binary operator {node.op!r}", _loc(node))
            return ast.Binary(
                node.op, self._expr(node.left), self._expr(node.right), _loc(node)
            )
        if isinstance(node, c_ast.UnaryOp):
            if node.op == "-":
                return ast.Unary("-", self._expr(node.expr), _loc(node))
            if node.op == "+":
                return self._expr(node.expr)
            if node.op == "!":
                return ast.Unary("!", self._expr(node.expr), _loc(node))
            if node.op == "&":
                return ast.Unary("&", self._expr(node.expr), _loc(node))
            if node.op == "*":
                return ast.Unary("*", self._expr(node.expr), _loc(node))
            if node.op == "sizeof":
                raise CFrontError("sizeof is not supported", _loc(node))
            raise CFrontError(f"unsupported unary operator {node.op!r}", _loc(node))
        if isinstance(node, c_ast.ArrayRef):
            return ast.Index(self._expr(node.name), self._expr(node.subscript), _loc(node))
        if isinstance(node, c_ast.StructRef):
            base = self._expr(node.name)
            if node.type == "->":
                base = ast.Unary("*", base, _loc(node))
            return ast.Field(base, node.field.name, _loc(node))
        if isinstance(node, c_ast.FuncCall):
            callee, args = self._call_parts(node)
            return ast.CallExpr(callee, args, _loc(node))
        if isinstance(node, c_ast.TernaryOp):
            raise CFrontError(
                "the ?: operator is not supported; rewrite as if/else", _loc(node)
            )
        if isinstance(node, c_ast.Cast):
            # Value-preserving casts are dropped (RC is untyped).
            return self._expr(node.expr)
        raise CFrontError(f"unsupported expression {type(node).__name__}", _loc(node))


def c_to_program(c_source: str) -> ast.Program:
    """Translate a C translation unit (already preprocessed) into an RC
    program ready for :func:`repro.closing.close_program`."""
    return _Translator().translate(c_source)
