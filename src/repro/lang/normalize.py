"""Normalization of surface RC programs into *core form*.

Core form is the shape assumed by Section 4 of the paper and consumed by
the CFG builder:

* every call appears as a statement (``CallStmt``), never inside an
  expression, and **every call argument is an atom** — a variable name or
  a literal ("we assume that each argument of a procedure call is a
  variable");
* ``for`` loops are desugared to ``while`` loops (``continue`` is
  rewritten to run the step first);
* ``while``/``if``/``switch`` guards contain no calls — calls in a loop
  guard are re-evaluated each iteration via the standard
  ``while (true) {{ t = f(); if (!cond) break; ... }}`` rewrite;
* all local names within a procedure are unique (alpha-renaming), so a
  variable name denotes exactly one memory location per activation,
  matching the paper's semantic notion of "variable";
* every use of a name refers to a declared parameter or local —
  undeclared uses are rejected.

The normalizer introduces temporaries named ``_t0``, ``_t1``, ... chosen
to avoid every identifier occurring in the procedure.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from . import ast
from .errors import SYNTHETIC, NormalizationError


@dataclass
class _Scope:
    """A lexical scope mapping source names to unique names."""

    parent: "_Scope | None" = None
    bindings: dict[str, str] = field(default_factory=dict)

    def lookup(self, name: str) -> str | None:
        scope: _Scope | None = self
        while scope is not None:
            if name in scope.bindings:
                return scope.bindings[name]
            scope = scope.parent
        return None


class _ProcNormalizer:
    """Normalizes a single procedure."""

    def __init__(self, proc: ast.Proc, known_callees: set[str]):
        self._proc = proc
        self._known_callees = known_callees
        self._used_names: set[str] = set(proc.params)
        for stmt in ast.walk_stmts(proc.body):
            if isinstance(stmt, ast.VarDecl):
                self._used_names.add(stmt.name)
        self._temp_counter = 0
        self._unique_counter = 0

    # -- name management ----------------------------------------------------

    def _fresh_temp(self) -> str:
        while True:
            name = f"_t{self._temp_counter}"
            self._temp_counter += 1
            if name not in self._used_names:
                self._used_names.add(name)
                return name

    def _fresh_unique(self, base: str) -> str:
        if base not in self._used_names:
            self._used_names.add(base)
            return base
        while True:
            self._unique_counter += 1
            name = f"{base}_{self._unique_counter}"
            if name not in self._used_names:
                self._used_names.add(name)
                return name

    # -- driver --------------------------------------------------------------

    def run(self) -> ast.Proc:
        scope = _Scope()
        # Parameters keep their names; they are declared first so later
        # locals with the same name get renamed.
        declared: set[str] = set()
        for param in self._proc.params:
            scope.bindings[param] = param
            declared.add(param)
        self._used_names = set(self._proc.params)
        body = self._normalize_block(self._proc.body, scope, loop_step=None)
        return ast.Proc(self._proc.name, self._proc.params, tuple(body), self._proc.location)

    # -- statements ----------------------------------------------------------

    def _normalize_block(
        self,
        stmts: tuple[ast.Stmt, ...],
        scope: _Scope,
        loop_step: ast.Stmt | None,
    ) -> list[ast.Stmt]:
        inner = _Scope(parent=scope)
        out: list[ast.Stmt] = []
        for stmt in stmts:
            out.extend(self._normalize_stmt(stmt, inner, loop_step))
        return out

    def _normalize_stmt(
        self,
        stmt: ast.Stmt,
        scope: _Scope,
        loop_step: ast.Stmt | None,
    ) -> list[ast.Stmt]:
        if isinstance(stmt, ast.VarDecl):
            out: list[ast.Stmt] = []
            init = stmt.init
            if init is not None:
                init = self._normalize_expr(init, scope, out)
            unique = self._fresh_unique(stmt.name)
            scope.bindings[stmt.name] = unique
            out.append(ast.VarDecl(unique, init, stmt.array_size, stmt.location))
            return out

        if isinstance(stmt, ast.Assign):
            out = []
            value = stmt.value
            if isinstance(value, ast.CallExpr):
                args = self._normalize_args(value.callee, value.args, scope, out)
                target = self._normalize_lvalue(stmt.target, scope, out)
                self._check_callee(value.callee, stmt.location)
                out.append(
                    ast.CallStmt(value.callee, tuple(args), target, stmt.location)
                )
                return out
            value = self._normalize_expr(value, scope, out)
            target = self._normalize_lvalue(stmt.target, scope, out)
            out.append(ast.Assign(target, value, stmt.location))
            return out

        if isinstance(stmt, ast.CallStmt):
            out = []
            args = self._normalize_args(stmt.callee, stmt.args, scope, out)
            result = None
            if stmt.result is not None:
                result = self._normalize_lvalue(stmt.result, scope, out)
            self._check_callee(stmt.callee, stmt.location)
            out.append(ast.CallStmt(stmt.callee, tuple(args), result, stmt.location))
            return out

        if isinstance(stmt, ast.If):
            out = []
            cond = self._normalize_expr(stmt.cond, scope, out)
            then_body = self._normalize_block(stmt.then_body, scope, loop_step)
            else_body = self._normalize_block(stmt.else_body, scope, loop_step)
            out.append(ast.If(cond, tuple(then_body), tuple(else_body), stmt.location))
            return out

        if isinstance(stmt, ast.While):
            return self._normalize_while(stmt, scope)

        if isinstance(stmt, ast.For):
            return self._normalize_for(stmt, scope)

        if isinstance(stmt, ast.Switch):
            out = []
            subject = self._normalize_expr(stmt.subject, scope, out)
            cases = tuple(
                ast.SwitchCase(
                    case.value,
                    tuple(self._normalize_block(case.body, scope, loop_step)),
                    case.location,
                )
                for case in stmt.cases
            )
            default = tuple(self._normalize_block(stmt.default, scope, loop_step))
            out.append(ast.Switch(subject, cases, default, stmt.location))
            return out

        if isinstance(stmt, ast.Return):
            out = []
            value = stmt.value
            if value is not None:
                value = self._normalize_expr(value, scope, out)
            out.append(ast.Return(value, stmt.location))
            return out

        if isinstance(stmt, ast.Continue):
            # Inside a desugared for-loop, continue must run the step first.
            if loop_step is not None:
                return [loop_step, stmt]
            return [stmt]

        if isinstance(stmt, (ast.Exit, ast.Break, ast.Skip)):
            return [stmt]

        raise NormalizationError(
            f"unknown statement node {type(stmt).__name__}",
            getattr(stmt, "location", SYNTHETIC),
        )

    def _normalize_while(self, stmt: ast.While, scope: _Scope) -> list[ast.Stmt]:
        hoisted: list[ast.Stmt] = []
        cond = self._normalize_expr(stmt.cond, scope, hoisted)
        if not hoisted:
            body = self._normalize_block(stmt.body, scope, loop_step=None)
            return [ast.While(cond, tuple(body), stmt.location)]
        # The guard contained calls: re-evaluate them on every iteration.
        body = self._normalize_block(stmt.body, scope, loop_step=None)
        guard = ast.If(
            ast.Unary("!", cond, stmt.location),
            (ast.Break(stmt.location),),
            (),
            stmt.location,
        )
        loop_body = tuple(hoisted) + (guard,) + tuple(body)
        return [ast.While(ast.BoolLit(True, stmt.location), loop_body, stmt.location)]

    def _normalize_for(self, stmt: ast.For, scope: _Scope) -> list[ast.Stmt]:
        # A fresh scope so `for (var i = 0; ...)` does not leak `i`.
        for_scope = _Scope(parent=scope)
        out: list[ast.Stmt] = []
        if stmt.init is not None:
            out.extend(self._normalize_stmt(stmt.init, for_scope, loop_step=None))
        cond = stmt.cond if stmt.cond is not None else ast.BoolLit(True, stmt.location)
        step = stmt.step
        # Normalize the step once to know what to inject at continues; the
        # step may not declare variables.
        step_stmts: list[ast.Stmt] = []
        if step is not None:
            step_stmts = self._normalize_stmt(step, for_scope, loop_step=None)
            if len(step_stmts) != 1:
                raise NormalizationError(
                    "for-loop step must normalize to a single statement "
                    "(avoid calls with complex arguments in the step)",
                    stmt.location,
                )
        loop_step = step_stmts[0] if step_stmts else None
        hoisted: list[ast.Stmt] = []
        cond_norm = self._normalize_expr(cond, for_scope, hoisted)
        body = self._normalize_block(stmt.body, for_scope, loop_step=loop_step)
        body.extend(step_stmts)
        if hoisted:
            guard = ast.If(
                ast.Unary("!", cond_norm, stmt.location),
                (ast.Break(stmt.location),),
                (),
                stmt.location,
            )
            loop_body = tuple(hoisted) + (guard,) + tuple(body)
            out.append(ast.While(ast.BoolLit(True, stmt.location), loop_body, stmt.location))
        else:
            out.append(ast.While(cond_norm, tuple(body), stmt.location))
        return out

    # -- expressions ---------------------------------------------------------

    def _check_callee(self, callee: str, location) -> None:
        if callee not in self._known_callees:
            raise NormalizationError(f"call to undeclared procedure {callee!r}", location)

    def _normalize_lvalue(self, expr: ast.Expr, scope: _Scope, out: list[ast.Stmt]) -> ast.Expr:
        """Normalize an assignment target: rename, hoist calls in indices."""
        if isinstance(expr, ast.Name):
            unique = scope.lookup(expr.ident)
            if unique is None:
                raise NormalizationError(f"undeclared variable {expr.ident!r}", expr.location)
            return ast.Name(unique, expr.location)
        if isinstance(expr, ast.Index):
            base = self._normalize_lvalue(expr.base, scope, out)
            index = self._normalize_expr(expr.index, scope, out)
            return ast.Index(base, index, expr.location)
        if isinstance(expr, ast.Field):
            base = self._normalize_lvalue(expr.base, scope, out)
            return ast.Field(base, expr.field, expr.location)
        if isinstance(expr, ast.Unary) and expr.op == "*":
            operand = self._normalize_expr(expr.operand, scope, out)
            return ast.Unary("*", operand, expr.location)
        raise NormalizationError(
            f"invalid assignment target {type(expr).__name__}",
            getattr(expr, "location", SYNTHETIC),
        )

    def _normalize_expr(self, expr: ast.Expr, scope: _Scope, out: list[ast.Stmt]) -> ast.Expr:
        """Normalize an expression, hoisting calls into ``out``."""
        if isinstance(expr, (ast.IntLit, ast.BoolLit, ast.StrLit, ast.AbstractLit)):
            return expr
        if isinstance(expr, ast.Name):
            unique = scope.lookup(expr.ident)
            if unique is None:
                raise NormalizationError(f"undeclared variable {expr.ident!r}", expr.location)
            return ast.Name(unique, expr.location)
        if isinstance(expr, ast.Unary):
            if expr.op == "&":
                operand = self._normalize_lvalue(expr.operand, scope, out)
            else:
                operand = self._normalize_expr(expr.operand, scope, out)
            return ast.Unary(expr.op, operand, expr.location)
        if isinstance(expr, ast.Binary):
            left = self._normalize_expr(expr.left, scope, out)
            right = self._normalize_expr(expr.right, scope, out)
            return ast.Binary(expr.op, left, right, expr.location)
        if isinstance(expr, ast.Index):
            base = self._normalize_expr(expr.base, scope, out)
            index = self._normalize_expr(expr.index, scope, out)
            return ast.Index(base, index, expr.location)
        if isinstance(expr, ast.Field):
            base = self._normalize_expr(expr.base, scope, out)
            return ast.Field(base, expr.field, expr.location)
        if isinstance(expr, ast.CallExpr):
            args = self._normalize_args(expr.callee, expr.args, scope, out)
            self._check_callee(expr.callee, expr.location)
            temp = self._fresh_temp()
            out.append(ast.VarDecl(temp, None, None, expr.location))
            out.append(
                ast.CallStmt(expr.callee, tuple(args), ast.Name(temp, expr.location), expr.location)
            )
            return ast.Name(temp, expr.location)
        raise NormalizationError(
            f"unknown expression node {type(expr).__name__}",
            getattr(expr, "location", SYNTHETIC),
        )

    def _normalize_args(
        self,
        callee: str,
        args: tuple[ast.Expr, ...],
        scope: _Scope,
        out: list[ast.Stmt],
    ) -> list[ast.Expr]:
        """Atomize call arguments.

        The *object argument* of a built-in operation (e.g. the ``out`` in
        ``send(out, v)``) may be a bare name that is not a local variable:
        it then denotes a registered communication object and is lowered
        to a string atom, which the runtime resolves by name.
        """
        from ..runtime.ops import BUILTIN_OPERATIONS

        spec = BUILTIN_OPERATIONS.get(callee)
        object_arg = spec.object_arg if spec is not None else None
        normalized: list[ast.Expr] = []
        for index, arg in enumerate(args):
            if (
                index == object_arg
                and isinstance(arg, ast.Name)
                and scope.lookup(arg.ident) is None
            ):
                normalized.append(ast.StrLit(arg.ident, arg.location))
            else:
                normalized.append(self._atomize(arg, scope, out))
        return normalized

    def _atomize(self, expr: ast.Expr, scope: _Scope, out: list[ast.Stmt]) -> ast.Expr:
        """Normalize a call argument down to a literal or variable name."""
        normalized = self._normalize_expr(expr, scope, out)
        if isinstance(
            normalized, (ast.IntLit, ast.BoolLit, ast.StrLit, ast.AbstractLit, ast.Name)
        ):
            return normalized
        # `&x` arguments are kept intact: they denote the address atom of a
        # variable, which the alias analysis and runtime both understand.
        if isinstance(normalized, ast.Unary) and normalized.op == "&":
            return normalized
        temp = self._fresh_temp()
        location = getattr(expr, "location", SYNTHETIC)
        out.append(ast.VarDecl(temp, normalized, None, location))
        return ast.Name(temp, location)


def normalize_proc(proc: ast.Proc, known_callees: set[str]) -> ast.Proc:
    """Normalize one procedure to core form."""
    return _ProcNormalizer(proc, known_callees).run()


def normalize_program(program: ast.Program) -> ast.Program:
    """Normalize a whole program to core form.

    ``known_callees`` comprises the program's own procedures, its extern
    (environment) procedures, and the built-in operations of the runtime
    (communication-object operations, ``VS_toss``, ``VS_assert``, ...).
    """
    from ..runtime.ops import BUILTIN_OPERATIONS

    known = set(program.procs) | set(program.externs) | set(BUILTIN_OPERATIONS)
    procs = {name: normalize_proc(proc, known) for name, proc in program.procs.items()}
    return ast.Program(procs=procs, externs=dict(program.externs))
