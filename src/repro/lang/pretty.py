"""Pretty-printer: RC ASTs back to parseable source text.

``parse_program(pretty(program))`` is the identity on normalized ASTs up
to source locations; the round-trip property is checked in the test
suite with hypothesis-generated programs.
"""

from __future__ import annotations

from . import ast

#: Binding strength of each binary operator, loosest first.  Used to
#: parenthesize only where needed.
_PRECEDENCE = {
    "||": 1,
    "&&": 2,
    "==": 3,
    "!=": 3,
    "<": 4,
    "<=": 4,
    ">": 4,
    ">=": 4,
    "+": 5,
    "-": 5,
    "*": 6,
    "/": 6,
    "%": 6,
}

_UNARY_PRECEDENCE = 7


def pretty_expr(expr: ast.Expr, parent_precedence: int = 0) -> str:
    """Render ``expr`` with minimal parentheses."""
    if isinstance(expr, ast.IntLit):
        return str(expr.value)
    if isinstance(expr, ast.BoolLit):
        return "true" if expr.value else "false"
    if isinstance(expr, ast.AbstractLit):
        return "top"
    if isinstance(expr, ast.StrLit):
        escaped = expr.value.replace("\\", "\\\\").replace("'", "\\'")
        escaped = escaped.replace("\n", "\\n").replace("\t", "\\t")
        return f"'{escaped}'"
    if isinstance(expr, ast.Name):
        return expr.ident
    if isinstance(expr, ast.Unary):
        inner = pretty_expr(expr.operand, _UNARY_PRECEDENCE)
        text = f"{expr.op}{inner}"
        if parent_precedence > _UNARY_PRECEDENCE:
            return f"({text})"
        return text
    if isinstance(expr, ast.Binary):
        precedence = _PRECEDENCE[expr.op]
        left = pretty_expr(expr.left, precedence)
        # Right operand binds one tighter so that left-associative chains
        # render without parentheses but nested right operands keep theirs.
        right = pretty_expr(expr.right, precedence + 1)
        text = f"{left} {expr.op} {right}"
        if parent_precedence > precedence:
            return f"({text})"
        return text
    if isinstance(expr, ast.Index):
        return f"{pretty_expr(expr.base, _UNARY_PRECEDENCE + 1)}[{pretty_expr(expr.index)}]"
    if isinstance(expr, ast.Field):
        return f"{pretty_expr(expr.base, _UNARY_PRECEDENCE + 1)}.{expr.field}"
    if isinstance(expr, ast.CallExpr):
        args = ", ".join(pretty_expr(arg) for arg in expr.args)
        return f"{expr.callee}({args})"
    raise TypeError(f"unknown expression node {type(expr).__name__}")


class _Printer:
    def __init__(self, indent: str = "    "):
        self._indent = indent
        self._lines: list[str] = []
        self._depth = 0

    def line(self, text: str) -> None:
        self._lines.append(f"{self._indent * self._depth}{text}")

    def render(self) -> str:
        return "\n".join(self._lines) + "\n"

    # -- statements ---------------------------------------------------------

    def stmt(self, stmt: ast.Stmt) -> None:
        if isinstance(stmt, ast.VarDecl):
            if stmt.array_size is not None:
                self.line(f"var {stmt.name}[{stmt.array_size}];")
            elif stmt.init is not None:
                self.line(f"var {stmt.name} = {pretty_expr(stmt.init)};")
            else:
                self.line(f"var {stmt.name};")
        elif isinstance(stmt, ast.Assign):
            self.line(f"{pretty_expr(stmt.target)} = {pretty_expr(stmt.value)};")
        elif isinstance(stmt, ast.CallStmt):
            args = ", ".join(pretty_expr(arg) for arg in stmt.args)
            call = f"{stmt.callee}({args})"
            if stmt.result is not None:
                self.line(f"{pretty_expr(stmt.result)} = {call};")
            else:
                self.line(f"{call};")
        elif isinstance(stmt, ast.If):
            self.line(f"if ({pretty_expr(stmt.cond)}) {{")
            self.block(stmt.then_body)
            if stmt.else_body:
                self.line("} else {")
                self.block(stmt.else_body)
            self.line("}")
        elif isinstance(stmt, ast.While):
            self.line(f"while ({pretty_expr(stmt.cond)}) {{")
            self.block(stmt.body)
            self.line("}")
        elif isinstance(stmt, ast.For):
            init = self._inline_simple(stmt.init)
            cond = pretty_expr(stmt.cond) if stmt.cond is not None else ""
            step = self._inline_simple(stmt.step)
            self.line(f"for ({init}; {cond}; {step}) {{")
            self.block(stmt.body)
            self.line("}")
        elif isinstance(stmt, ast.Switch):
            self.line(f"switch ({pretty_expr(stmt.subject)}) {{")
            self._depth += 1
            for case in stmt.cases:
                label = f"'{case.value}'" if isinstance(case.value, str) else str(case.value)
                self.line(f"case {label}:")
                self.block(case.body)
            if stmt.default:
                self.line("default:")
                self.block(stmt.default)
            self._depth -= 1
            self.line("}")
        elif isinstance(stmt, ast.Return):
            if stmt.value is not None:
                self.line(f"return {pretty_expr(stmt.value)};")
            else:
                self.line("return;")
        elif isinstance(stmt, ast.Exit):
            self.line("exit;")
        elif isinstance(stmt, ast.Break):
            self.line("break;")
        elif isinstance(stmt, ast.Continue):
            self.line("continue;")
        elif isinstance(stmt, ast.Skip):
            self.line("skip;")
        else:
            raise TypeError(f"unknown statement node {type(stmt).__name__}")

    def _inline_simple(self, stmt: ast.Stmt | None) -> str:
        """Render a for-header clause without the trailing semicolon."""
        if stmt is None:
            return ""
        if isinstance(stmt, ast.VarDecl):
            if stmt.init is not None:
                return f"var {stmt.name} = {pretty_expr(stmt.init)}"
            return f"var {stmt.name}"
        if isinstance(stmt, ast.Assign):
            return f"{pretty_expr(stmt.target)} = {pretty_expr(stmt.value)}"
        if isinstance(stmt, ast.CallStmt):
            args = ", ".join(pretty_expr(arg) for arg in stmt.args)
            call = f"{stmt.callee}({args})"
            if stmt.result is not None:
                return f"{pretty_expr(stmt.result)} = {call}"
            return call
        raise TypeError(f"cannot inline statement node {type(stmt).__name__}")

    def block(self, stmts: tuple[ast.Stmt, ...]) -> None:
        self._depth += 1
        for stmt in stmts:
            self.stmt(stmt)
        self._depth -= 1


def pretty_proc(proc: ast.Proc) -> str:
    """Render a single procedure."""
    printer = _Printer()
    printer.line(f"proc {proc.name}({', '.join(proc.params)}) {{")
    printer.block(proc.body)
    printer.line("}")
    return printer.render()


def pretty(program: ast.Program) -> str:
    """Render a whole program (externs first, then procedures)."""
    parts: list[str] = []
    for extern in program.externs.values():
        parts.append(f"extern proc {extern.name}({', '.join(extern.params)});\n")
    for proc in program.procs.values():
        parts.append(pretty_proc(proc))
    return "\n".join(parts)
