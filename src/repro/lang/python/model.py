"""The concurrency model: Python modules → programs + system descriptions.

A verifiable Python program is one file that plays both roles a
``.rc``/``.json`` pair plays for the mini-language:

* its ``def``\\ s are the procedures (lifted by
  :mod:`repro.lang.python.lift`);
* its module prelude *is* the launch configuration — ``Queue(...)``
  assignments declare the communication objects, ``spawn(fn, ...)``
  calls declare the processes, and the ``env.<name>`` call sites inside
  functions declare the open interface (``extern proc``\\ s, which the
  closing transformation replaces with ``VS_toss`` choices).

:func:`python_to_program` yields the lifted
:class:`repro.lang.ast.Program`; :func:`description_from_python`
additionally derives the system-description dict (the same shape
``repro.sysdesc`` reads from ``.json`` files), including
``close.object_bindings`` entries telling the may-alias analysis which
queue each spawned parameter holds.
"""

from __future__ import annotations

import ast as pyast
from dataclasses import dataclass, field

from .. import ast as rc
from .errors import PyFrontError, location_of
from .lift import LOG_SINK, RUNTIME_NAMES, LiftContext, lift_function

__all__ = [
    "LiftedModule",
    "description_from_python",
    "lift_module",
    "python_to_program",
]

RUNTIME_MODULE = "repro.pyruntime"


@dataclass
class _Spawn:
    """One module-level ``spawn(fn, ...)`` call."""

    func: str
    args: list  # int | bool | str values, or ("object", name) pairs
    location: object  # SourceLocation of the call


@dataclass
class LiftedModule:
    """Everything the front end extracted from one Python file."""

    program: rc.Program
    #: queue name -> capacity, in declaration order.
    queues: dict[str, int] = field(default_factory=dict)
    #: processes: (process name, proc name, args) in spawn order.
    processes: list[tuple[str, str, list]] = field(default_factory=list)
    #: "proc.param" -> sorted queue names (for close.object_bindings).
    object_bindings: dict[str, list[str]] = field(default_factory=dict)
    uses_log: bool = False


class _ModuleLifter:
    """Scan a module's top level and drive the function lifter."""

    def __init__(self, text: str, filename: str):
        self.text = text
        self.filename = filename
        self.runtime: dict[str, str] = {}
        self.constants: dict[str, int | bool | str] = {}
        self.queues: dict[str, int] = {}
        self.functions: dict[str, pyast.FunctionDef] = {}
        self.spawns: list[_Spawn] = []

    def error(self, message: str, node) -> PyFrontError:
        return PyFrontError(message, location_of(node), self.filename)

    # -- entry point ------------------------------------------------------------

    def lift(self) -> LiftedModule:
        try:
            module = pyast.parse(self.text, filename=self.filename or "<python>")
        except SyntaxError as err:
            raise PyFrontError(
                f"not valid Python: {err.msg}",
                None if err.lineno is None else location_of(err),
                self.filename,
            ) from err
        self._scan_module(module.body, top=True)
        ctx = LiftContext(
            self.filename,
            self.runtime,
            self.constants,
            {name: {"capacity": cap} for name, cap in self.queues.items()},
            {name: tuple(a.arg for a in fn.args.args) for name, fn in self.functions.items()},
        )
        procs = {
            name: lift_function(ctx, fn) for name, fn in self.functions.items()
        }
        program = rc.Program(procs, dict(ctx.externs))
        lifted = LiftedModule(program, dict(self.queues), uses_log=ctx.uses_log)
        self._resolve_spawns(lifted)
        return lifted

    # -- module scan ------------------------------------------------------------

    def _scan_module(self, body, top: bool) -> None:
        for index, stmt in enumerate(body):
            if (
                top
                and index == 0
                and isinstance(stmt, pyast.Expr)
                and isinstance(stmt.value, pyast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                continue  # module docstring
            self._scan_stmt(stmt, top=top)

    def _scan_stmt(self, stmt, top: bool) -> None:
        if isinstance(stmt, pyast.ImportFrom):
            self._scan_import_from(stmt)
            return
        if isinstance(stmt, pyast.Import):
            raise self.error(
                f"use 'from {RUNTIME_MODULE} import ...' — plain imports are "
                "not part of the subset",
                stmt,
            )
        if isinstance(stmt, pyast.FunctionDef):
            if not top:
                raise self.error(
                    "function definitions must be at module top level", stmt
                )
            if stmt.name in self.functions:
                raise self.error(
                    f"function {stmt.name!r} is defined twice", stmt
                )
            self._check_module_name(stmt.name, stmt, role="function")
            self.functions[stmt.name] = stmt
            return
        if isinstance(stmt, pyast.Assign):
            self._scan_assign(stmt)
            return
        if isinstance(stmt, pyast.Expr):
            self._scan_module_call(stmt.value)
            return
        if isinstance(stmt, pyast.If) and top and self._is_main_guard(stmt.test):
            if stmt.orelse:
                raise self.error(
                    "the __main__ guard cannot have an else branch",
                    stmt.orelse[0],
                )
            self._scan_module(stmt.body, top=False)
            return
        kind = type(stmt).__name__
        raise self.error(
            f"{kind} statements are not allowed at module level; the module "
            "prelude holds imports, constants, Queue(...) declarations, "
            "def's and spawn(...) calls",
            stmt,
        )

    def _is_main_guard(self, test) -> bool:
        return (
            isinstance(test, pyast.Compare)
            and isinstance(test.left, pyast.Name)
            and test.left.id == "__name__"
            and len(test.ops) == 1
            and isinstance(test.ops[0], pyast.Eq)
            and isinstance(test.comparators[0], pyast.Constant)
            and test.comparators[0].value == "__main__"
        )

    def _scan_import_from(self, stmt: pyast.ImportFrom) -> None:
        if stmt.module != RUNTIME_MODULE or stmt.level:
            raise self.error(
                f"only 'from {RUNTIME_MODULE} import ...' is allowed "
                f"(got {stmt.module or '.' * stmt.level!r}); verifiable "
                "programs use the pyruntime vocabulary exclusively",
                stmt,
            )
        for alias in stmt.names:
            if alias.name == "*":
                raise self.error(
                    f"import the names you use explicitly — "
                    f"'from {RUNTIME_MODULE} import *' is not supported",
                    stmt,
                )
            if alias.name not in RUNTIME_NAMES:
                raise self.error(
                    f"{RUNTIME_MODULE} has no verifiable name {alias.name!r}; "
                    f"available: {', '.join(sorted(RUNTIME_NAMES))}",
                    stmt,
                )
            self.runtime[alias.asname or alias.name] = alias.name

    def _check_module_name(self, name: str, node, role: str) -> None:
        owners = {
            "a pyruntime import": self.runtime,
            "a module constant": self.constants,
            "a queue": self.queues,
            "a function": self.functions,
        }
        for what, table in owners.items():
            if name in table:
                raise self.error(
                    f"{role} {name!r} collides with {what} of the same name",
                    node,
                )

    def _scan_assign(self, stmt: pyast.Assign) -> None:
        if len(stmt.targets) != 1 or not isinstance(stmt.targets[0], pyast.Name):
            raise self.error(
                "module-level assignments must bind a single plain name",
                stmt,
            )
        name = stmt.targets[0].id
        self._check_module_name(name, stmt, role="binding")
        value = stmt.value
        # name = Queue(capacity)
        if (
            isinstance(value, pyast.Call)
            and isinstance(value.func, pyast.Name)
            and self.runtime.get(value.func.id) == "Queue"
        ):
            self.queues[name] = self._queue_capacity(value)
            return
        constant = self._constant_value(value)
        if constant is None:
            raise self.error(
                f"module-level value for {name!r} must be an int/bool/string "
                "literal, a previously defined constant, or Queue(...)",
                value,
            )
        self.constants[name] = constant[0]

    def _queue_capacity(self, call: pyast.Call) -> int:
        args = list(call.args)
        for kw in call.keywords:
            if kw.arg != "capacity":
                raise self.error(
                    f"Queue() got unexpected keyword {kw.arg!r}", call
                )
            args.append(kw.value)
        if not args:
            return 1
        if len(args) > 1:
            raise self.error(
                "Queue() takes a single capacity argument", call
            )
        value = self._constant_value(args[0])
        if value is None or not isinstance(value[0], int) or isinstance(value[0], bool):
            raise self.error(
                "Queue capacity must be an int literal or an int module "
                "constant",
                args[0],
            )
        if value[0] < 1:
            raise self.error(
                f"Queue capacity must be >= 1, got {value[0]}", args[0]
            )
        return value[0]

    def _constant_value(self, node) -> tuple[int | bool | str] | None:
        """The literal value of ``node``, or None.

        Wrapped in a 1-tuple so a literal ``0``/``False`` is
        distinguishable from "not a constant".
        """
        if isinstance(node, pyast.Constant) and isinstance(
            node.value, (int, bool, str)
        ):
            return (node.value,)
        if (
            isinstance(node, pyast.UnaryOp)
            and isinstance(node.op, pyast.USub)
            and isinstance(node.operand, pyast.Constant)
            and isinstance(node.operand.value, int)
            and not isinstance(node.operand.value, bool)
        ):
            return (-node.operand.value,)
        if isinstance(node, pyast.Name) and node.id in self.constants:
            return (self.constants[node.id],)
        # Fold int arithmetic over constants (e.g. 2 * WORKERS) so the
        # prelude can derive one bound from another.
        if isinstance(node, pyast.BinOp):
            left = self._constant_value(node.left)
            right = self._constant_value(node.right)
            ints = (
                left is not None
                and right is not None
                and all(
                    isinstance(v[0], int) and not isinstance(v[0], bool)
                    for v in (left, right)
                )
            )
            if ints:
                a, b = left[0], right[0]
                if isinstance(node.op, pyast.Add):
                    return (a + b,)
                if isinstance(node.op, pyast.Sub):
                    return (a - b,)
                if isinstance(node.op, pyast.Mult):
                    return (a * b,)
                if isinstance(node.op, pyast.FloorDiv) and b != 0:
                    return (a // b,)
                if isinstance(node.op, pyast.Mod) and b != 0:
                    return (a % b,)
        return None

    # -- module-level calls: spawn / join_all ------------------------------------

    def _scan_module_call(self, value) -> None:
        if not (isinstance(value, pyast.Call) and isinstance(value.func, pyast.Name)):
            raise self.error(
                "module-level expression statements must be spawn(...) or "
                "join_all() calls",
                value,
            )
        runtime = self.runtime.get(value.func.id)
        if runtime == "join_all":
            return  # stub-execution detail; no verified behaviour
        if runtime != "spawn":
            raise self.error(
                "module-level expression statements must be spawn(...) or "
                "join_all() calls",
                value,
            )
        call = value
        if call.keywords:
            raise self.error("spawn() takes no keyword arguments", call)
        if not call.args:
            raise self.error(
                "spawn() needs a function to run: spawn(worker, ...)", call
            )
        target = call.args[0]
        if not isinstance(target, pyast.Name) or (
            target.id not in self.functions
        ):
            raise self.error(
                "spawn()'s first argument must be a function defined in this "
                "module",
                target,
            )
        args: list = []
        for arg in call.args[1:]:
            if isinstance(arg, pyast.Name) and arg.id in self.queues:
                args.append(("object", arg.id))
                continue
            constant = self._constant_value(arg)
            if constant is None:
                raise self.error(
                    "spawn() arguments must be literals, module constants or "
                    "queue names",
                    arg,
                )
            args.append(constant[0])
        self.spawns.append(_Spawn(target.id, args, location_of(value)))

    def _resolve_spawns(self, lifted: LiftedModule) -> None:
        if not self.spawns:
            raise PyFrontError(
                "no processes: add at least one module-level spawn(fn, ...) "
                "call",
                None,
                self.filename,
            )
        counts: dict[str, int] = {}
        for spawn in self.spawns:
            counts[spawn.func] = counts.get(spawn.func, 0) + 1
        seen: dict[str, int] = {}
        bindings: dict[str, set[str]] = {}
        for spawn in self.spawns:
            params = lifted.program.procs[spawn.func].params
            if len(spawn.args) != len(params):
                raise PyFrontError(
                    f"spawn({spawn.func}, ...) passes {len(spawn.args)} "
                    f"argument(s) but {spawn.func} takes {len(params)}",
                    spawn.location,
                    self.filename,
                )
            if counts[spawn.func] == 1:
                name = spawn.func
            else:
                seen[spawn.func] = seen.get(spawn.func, 0) + 1
                name = f"{spawn.func}-{seen[spawn.func]}"
            lifted.processes.append((name, spawn.func, list(spawn.args)))
            for param, arg in zip(params, spawn.args):
                if isinstance(arg, tuple):
                    bindings.setdefault(f"{spawn.func}.{param}", set()).add(arg[1])
        lifted.object_bindings = {
            key: sorted(values) for key, values in sorted(bindings.items())
        }


def lift_module(text: str, filename: str = "") -> LiftedModule:
    """Lift a full Python module: program + launch configuration."""
    return _ModuleLifter(text, filename).lift()


def python_to_program(text: str, filename: str = "") -> rc.Program:
    """Lift just the program (procedures + externs) from Python source."""
    return lift_module(text, filename).program


def description_from_python(
    text: str, program_path: str, filename: str = ""
) -> dict:
    """Derive the system-description dict for a Python program.

    ``program_path`` is the value recorded under ``"program"`` (the
    path a later loader resolves, e.g. the ``.py`` file's name);
    ``filename`` anchors diagnostics.
    """
    lifted = lift_module(text, filename or program_path)
    objects: list[dict] = [
        {"kind": "channel", "name": name, "capacity": capacity}
        for name, capacity in lifted.queues.items()
    ]
    if lifted.uses_log:
        objects.append({"kind": "sink", "name": LOG_SINK})
    processes = [
        {
            "name": name,
            "proc": proc,
            "args": [
                {"object": arg[1]} if isinstance(arg, tuple) else arg
                for arg in args
            ],
        }
        for name, proc, args in lifted.processes
    ]
    description: dict = {
        "program": program_path,
        "language": "python",
        "close": {"optimize": True},
        "objects": objects,
        "processes": processes,
    }
    if lifted.object_bindings:
        description["close"]["object_bindings"] = lifted.object_bindings
    return description
