"""The Python front end: close and verify real open Python programs.

Lifts a documented, bounded Python subset — thread-style workers
communicating over bounded queues, importing their vocabulary from
:mod:`repro.pyruntime` — into the RC core form, so the define-use
closing transformation and the whole search stack run unchanged on real
open Python services.  See ``docs/python_frontend.md``.
"""

from .errors import PyFrontError, location_of
from .lift import FunctionLifter, LiftContext, lift_function
from .model import (
    LiftedModule,
    description_from_python,
    lift_module,
    python_to_program,
)

__all__ = [
    "FunctionLifter",
    "LiftContext",
    "LiftedModule",
    "PyFrontError",
    "description_from_python",
    "lift_function",
    "lift_module",
    "location_of",
    "python_to_program",
]
