"""The AST lifter: bounded Python functions → RC surface ASTs.

This module translates *function bodies* — the sequential half of the
subset.  The module-level half (imports, ``Queue``/``spawn``
declarations, constants: the concurrency model) lives in
:mod:`repro.lang.python.model`, which drives this lifter once per
``def``.

Supported statement/expression subset (see ``docs/python_frontend.md``
for the user-facing table):

* ``if``/``elif``/``else``, ``while``, ``for … in range(…)``,
  ``break``/``continue``/``pass``/``return``;
* assignments to plain names, augmented ``+= -= *= //= %=``;
* ``assert e`` (→ RC ``VS_assert``; an optional string message is
  allowed and dropped);
* int/bool/string literals, names, unary ``-``/``not``, binary
  ``+ - * // %``, comparisons ``== != < <= > >=``, ``and``/``or``;
* calls: user-defined functions, ``q.put(v)``/``q.get()`` (→ RC
  ``send``/``recv``), ``env.<name>(…)`` (→ calls to RC ``extern proc``
  declarations — the open interface), ``log(v)`` (→ env-sink send),
  ``toss(n)`` (→ ``VS_toss``).

Everything else raises a source-anchored
:class:`~repro.lang.python.errors.PyFrontError` — there is no silent
miscompilation path.  Lifted nodes carry precise
:class:`~repro.lang.errors.SourceLocation` values pointing back into
the ``.py`` file, so closing keeps assertion sites attributable to
Python source lines and triage signatures can cite them.
"""

from __future__ import annotations

import ast as pyast

from .. import ast as rc
from .errors import PyFrontError, location_of

__all__ = ["FunctionLifter", "LiftContext", "lift_function"]

#: Python binary operators → RC operators.  ``//`` is RC's integer ``/``;
#: true division is rejected (RC has no floats).
BIN_OPS = {
    pyast.Add: "+",
    pyast.Sub: "-",
    pyast.Mult: "*",
    pyast.FloorDiv: "/",
    pyast.Mod: "%",
}

#: Python comparison operators → RC operators.
CMP_OPS = {
    pyast.Eq: "==",
    pyast.NotEq: "!=",
    pyast.Lt: "<",
    pyast.LtE: "<=",
    pyast.Gt: ">",
    pyast.GtE: ">=",
}

BOOL_OPS = {pyast.And: "&&", pyast.Or: "||"}

#: Names importable from :mod:`repro.pyruntime`.
RUNTIME_NAMES = frozenset({"Queue", "spawn", "env", "log", "toss", "join_all"})

#: The implicit env-sink that ``log(...)`` sends to.
LOG_SINK = "log"


class LiftContext:
    """Module-wide facts the function lifter consults and extends.

    Built by :mod:`repro.lang.python.model` from the module prelude:
    runtime import aliases, module constants, declared queue objects and
    defined function names.  The lifter *extends* it with the extern
    procedures discovered at ``env.<name>(...)`` call sites.
    """

    def __init__(
        self,
        filename: str,
        runtime: dict[str, str],
        constants: dict[str, int | bool | str],
        objects: dict[str, dict],
        functions: dict[str, tuple[str, ...]],
    ):
        self.filename = filename
        #: local alias -> canonical pyruntime name (``env``, ``Queue``, ...).
        self.runtime = runtime
        self.constants = constants
        self.objects = objects
        self.functions = functions
        #: extern name -> ExternDecl, in first-call order.
        self.externs: dict[str, rc.ExternDecl] = {}
        self.uses_log = False

    def error(self, message: str, node) -> PyFrontError:
        return PyFrontError(message, location_of(node), self.filename)

    def runtime_name(self, node) -> str | None:
        """The canonical pyruntime name ``node`` refers to, if any."""
        if isinstance(node, pyast.Name):
            return self.runtime.get(node.id)
        return None

    def register_extern(self, name: str, arity: int, node) -> None:
        """Record (or re-check) the extern procedure ``env.<name>``."""
        if name in self.functions:
            raise self.error(
                f"env.{name} collides with the function {name!r} defined in this "
                "module; rename one of them",
                node,
            )
        known = self.externs.get(name)
        if known is None:
            params = tuple(f"a{i}" for i in range(arity))
            self.externs[name] = rc.ExternDecl(name, params, location_of(node))
        elif len(known.params) != arity:
            raise self.error(
                f"env.{name} is called with {arity} argument(s) here but with "
                f"{len(known.params)} at {known.location} — environment "
                "procedures have a fixed arity",
                node,
            )


def _describe_node(node) -> str:
    """A user-facing name for an unsupported construct."""
    names = {
        "Try": "try/except",
        "TryStar": "try/except*",
        "With": "with blocks",
        "AsyncWith": "async with blocks",
        "Match": "match statements",
        "Raise": "raise statements",
        "Lambda": "lambda expressions",
        "ListComp": "list comprehensions",
        "SetComp": "set comprehensions",
        "DictComp": "dict comprehensions",
        "GeneratorExp": "generator expressions",
        "JoinedStr": "f-strings",
        "List": "list literals",
        "Tuple": "tuple literals",
        "Dict": "dict literals",
        "Set": "set literals",
        "Subscript": "subscripting",
        "Starred": "starred expressions",
        "Yield": "yield",
        "YieldFrom": "yield from",
        "Await": "await",
        "Global": "global declarations",
        "Nonlocal": "nonlocal declarations",
        "Delete": "del statements",
        "ClassDef": "class definitions",
        "AsyncFunctionDef": "async functions",
        "AsyncFor": "async for loops",
        "IfExp": "conditional expressions (a if c else b)",
        "NamedExpr": "walrus assignments (:=)",
        "Slice": "slicing",
    }
    kind = type(node).__name__
    return names.get(kind, f"{kind} nodes")


class FunctionLifter:
    """Lift one ``def`` into an :class:`repro.lang.ast.Proc`."""

    def __init__(self, ctx: LiftContext, func: pyast.FunctionDef):
        self.ctx = ctx
        self.func = func
        self.params: tuple[str, ...] = ()
        self.locals: list[str] = []
        self._loop_depth = 0

    # -- entry point ------------------------------------------------------------

    def lift(self) -> rc.Proc:
        self.params = self._lift_params()
        self._collect_locals(self.func.body)
        body: list[rc.Stmt] = [
            rc.VarDecl(name, None, None, location_of(self.func)) for name in self.locals
        ]
        body.extend(self._block(self.func.body, allow_docstring=True))
        return rc.Proc(self.func.name, self.params, tuple(body), location_of(self.func))

    # -- signature --------------------------------------------------------------

    def _lift_params(self) -> tuple[str, ...]:
        args = self.func.args
        func = self.func
        if func.decorator_list:
            raise self.ctx.error(
                "decorators are not supported", func.decorator_list[0]
            )
        if args.vararg or args.kwarg:
            raise self.ctx.error(
                "*args / **kwargs are not supported; declare explicit "
                "positional parameters",
                args.vararg or args.kwarg,
            )
        if args.kwonlyargs:
            raise self.ctx.error(
                "keyword-only parameters are not supported", args.kwonlyargs[0]
            )
        if args.defaults or args.kw_defaults:
            raise self.ctx.error(
                "parameter defaults are not supported; pass every argument "
                "explicitly at the spawn site",
                func,
            )
        if args.posonlyargs:
            raise self.ctx.error(
                "positional-only markers are not supported", args.posonlyargs[0]
            )
        names: list[str] = []
        for arg in args.args:
            self._check_binding_name(arg.arg, arg, role="parameter")
            names.append(arg.arg)
        return tuple(names)

    # -- local variables ---------------------------------------------------------

    def _collect_locals(self, stmts) -> None:
        """All names assigned anywhere in the function, in textual order.

        They are pre-declared ``var x;`` at function entry (value 0), so
        the lifted body only ever assigns — the same shape the RC
        normalizer produces for its own temporaries.  Reading a local
        before its first assignment yields 0 (Python would raise; the
        subset documents the difference and real programs assign first).
        """
        for stmt in stmts:
            targets = []
            if isinstance(stmt, pyast.Assign):
                targets = stmt.targets
            elif isinstance(stmt, (pyast.AugAssign, pyast.AnnAssign)):
                targets = [stmt.target]
            elif isinstance(stmt, pyast.For):
                targets = [stmt.target]
            for target in targets:
                if isinstance(target, pyast.Name):
                    self._record_local(target.id, target)
            if isinstance(stmt, (pyast.If, pyast.While, pyast.For)):
                self._collect_locals(stmt.body)
                self._collect_locals(stmt.orelse)

    def _record_local(self, name: str, node) -> None:
        if name in self.params or name in self.locals:
            return
        self._check_binding_name(name, node, role="local variable")
        self.locals.append(name)

    def _check_binding_name(self, name: str, node, role: str) -> None:
        if name in self.ctx.runtime:
            raise self.ctx.error(
                f"{role} {name!r} shadows the repro.pyruntime import of the "
                "same name",
                node,
            )
        if name in self.ctx.objects:
            raise self.ctx.error(
                f"{role} {name!r} shadows the module-level queue {name!r}", node
            )
        if name in self.ctx.functions:
            raise self.ctx.error(
                f"{role} {name!r} shadows the function {name!r}", node
            )

    def _is_local(self, name: str) -> bool:
        return name in self.params or name in self.locals

    # -- statements ---------------------------------------------------------------

    def _block(self, stmts, allow_docstring: bool = False) -> list[rc.Stmt]:
        out: list[rc.Stmt] = []
        for index, stmt in enumerate(stmts):
            if (
                isinstance(stmt, pyast.Expr)
                and isinstance(stmt.value, pyast.Constant)
                and isinstance(stmt.value.value, str)
            ):
                # Docstrings and bare string "comments" carry no behaviour.
                continue
            out.extend(self._stmt(stmt))
        return out

    def _stmt(self, node) -> list[rc.Stmt]:
        loc = location_of(node)
        if isinstance(node, pyast.Expr):
            return [self._call_stmt(node.value, result=None)]
        if isinstance(node, pyast.Assign):
            return [self._assign(node)]
        if isinstance(node, pyast.AnnAssign):
            if node.value is None:
                raise self.ctx.error(
                    "annotation-only declarations are not supported; assign an "
                    "initial value",
                    node,
                )
            return [self._assign_to(node.target, node.value, node)]
        if isinstance(node, pyast.AugAssign):
            return [self._aug_assign(node)]
        if isinstance(node, pyast.If):
            return [
                rc.If(
                    self._expr(node.test),
                    tuple(self._block(node.body)),
                    tuple(self._block(node.orelse)),
                    loc,
                )
            ]
        if isinstance(node, pyast.While):
            if node.orelse:
                raise self.ctx.error(
                    "while/else is not supported", node.orelse[0]
                )
            cond = self._expr(node.test)
            self._loop_depth += 1
            try:
                body = tuple(self._block(node.body))
            finally:
                self._loop_depth -= 1
            return [rc.While(cond, body, loc)]
        if isinstance(node, pyast.For):
            return [self._for_range(node)]
        if isinstance(node, pyast.Return):
            value = self._expr(node.value) if node.value is not None else None
            return [rc.Return(value, loc)]
        if isinstance(node, pyast.Break):
            if self._loop_depth == 0:
                raise self.ctx.error("'break' outside a loop", node)
            return [rc.Break(loc)]
        if isinstance(node, pyast.Continue):
            if self._loop_depth == 0:
                raise self.ctx.error("'continue' outside a loop", node)
            return [rc.Continue(loc)]
        if isinstance(node, pyast.Pass):
            return [rc.Skip(loc)]
        if isinstance(node, pyast.Assert):
            return [self._assert(node)]
        if isinstance(node, (pyast.Import, pyast.ImportFrom)):
            raise self.ctx.error(
                "imports inside functions are not supported; import "
                "repro.pyruntime names at module level",
                node,
            )
        if isinstance(node, pyast.FunctionDef):
            raise self.ctx.error(
                "nested function definitions are not supported", node
            )
        raise self.ctx.error(
            f"{_describe_node(node)} are not part of the verifiable subset",
            node,
        )

    def _assign(self, node: pyast.Assign) -> rc.Stmt:
        if len(node.targets) != 1:
            raise self.ctx.error(
                "chained assignment (a = b = ...) is not supported", node
            )
        return self._assign_to(node.targets[0], node.value, node)

    def _assign_to(self, target, value, node) -> rc.Stmt:
        if not isinstance(target, pyast.Name):
            raise self.ctx.error(
                f"assignment targets must be plain names, not "
                f"{_describe_node(target)}",
                target,
            )
        loc = location_of(node)
        name = rc.Name(target.id, location_of(target))
        call = self._try_call(value, result=name)
        if call is not None:
            return call
        return rc.Assign(name, self._expr(value), loc)

    def _aug_assign(self, node: pyast.AugAssign) -> rc.Stmt:
        if not isinstance(node.target, pyast.Name):
            raise self.ctx.error(
                "augmented assignment targets must be plain names", node.target
            )
        op = BIN_OPS.get(type(node.op))
        if op is None:
            raise self.ctx.error(
                f"unsupported augmented assignment operator "
                f"{type(node.op).__name__}; the subset has += -= *= //= %=",
                node,
            )
        loc = location_of(node)
        name = rc.Name(node.target.id, location_of(node.target))
        return rc.Assign(name, rc.Binary(op, name, self._expr(node.value), loc), loc)

    def _assert(self, node: pyast.Assert) -> rc.Stmt:
        if node.msg is not None and not (
            isinstance(node.msg, pyast.Constant) and isinstance(node.msg.value, str)
        ):
            raise self.ctx.error(
                "assert messages must be string literals (they are dropped "
                "by the front end)",
                node.msg,
            )
        return rc.CallStmt(
            "VS_assert", (self._expr(node.test),), None, location_of(node)
        )

    def _for_range(self, node: pyast.For) -> rc.Stmt:
        """``for i in range(...)`` → RC ``for`` (init/cond/step)."""
        if node.orelse:
            raise self.ctx.error("for/else is not supported", node.orelse[0])
        if not isinstance(node.target, pyast.Name):
            raise self.ctx.error(
                "for-loop targets must be plain names", node.target
            )
        call = node.iter
        if not (
            isinstance(call, pyast.Call)
            and isinstance(call.func, pyast.Name)
            and call.func.id == "range"
        ):
            raise self.ctx.error(
                "for-loops may only iterate over range(...); iterate queues "
                "with an explicit while + q.get()",
                node.iter,
            )
        if call.keywords:
            raise self.ctx.error("range() takes no keyword arguments", call)
        bounds = [self._expr(arg) for arg in call.args]
        loc = location_of(node)
        var = rc.Name(node.target.id, location_of(node.target))
        if len(bounds) == 1:
            start, stop = rc.IntLit(0, loc), bounds[0]
            step, ascending = 1, True
        elif len(bounds) in (2, 3):
            start, stop = bounds[0], bounds[1]
            step, ascending = 1, True
            if len(bounds) == 3:
                step_lit = bounds[2]
                negative = (
                    isinstance(step_lit, rc.Unary)
                    and step_lit.op == "-"
                    and isinstance(step_lit.operand, rc.IntLit)
                )
                if negative:
                    step_lit = step_lit.operand
                if not isinstance(step_lit, rc.IntLit) or step_lit.value == 0:
                    raise self.ctx.error(
                        "range() steps must be non-zero integer literals",
                        call.args[2],
                    )
                step, ascending = step_lit.value, not negative
        else:
            raise self.ctx.error(
                f"range() takes 1-3 arguments, got {len(bounds)}", call
            )
        self._loop_depth += 1
        try:
            body = tuple(self._block(node.body))
        finally:
            self._loop_depth -= 1
        init = rc.Assign(var, start, loc)
        cond = rc.Binary("<" if ascending else ">", var, stop, loc)
        delta = rc.Binary("+" if ascending else "-", var, rc.IntLit(step, loc), loc)
        return rc.For(init, cond, rc.Assign(var, delta, loc), body, loc)

    # -- calls --------------------------------------------------------------------

    def _call_args(self, call: pyast.Call, allow_objects: bool = True) -> tuple:
        if call.keywords:
            raise self.ctx.error(
                "keyword arguments are not supported; pass arguments "
                "positionally",
                call.keywords[0].value if call.keywords[0].value else call,
            )
        return tuple(
            self._expr(arg, allow_object=allow_objects) for arg in call.args
        )

    def _object_base(self, node) -> rc.Expr:
        """The queue a ``.put``/``.get`` is performed on.

        A parameter holding a queue lifts to a variable reference; a
        direct reference to a module-level queue lifts to its name atom
        (the runtime resolves bare names to communication objects).
        """
        if isinstance(node, pyast.Name):
            if self._is_local(node.id):
                return rc.Name(node.id, location_of(node))
            if node.id in self.ctx.objects:
                return rc.StrLit(node.id, location_of(node))
        raise self.ctx.error(
            "queue operations need a queue-valued parameter or a "
            "module-level Queue name",
            node,
        )

    def _try_call(self, node, result: rc.Expr | None) -> rc.Stmt | None:
        """Lift ``node`` as a call statement if it is a call, else None."""
        if isinstance(node, pyast.Call):
            return self._call_stmt(node, result)
        return None

    def _call_stmt(self, node, result: rc.Expr | None) -> rc.Stmt:
        if not isinstance(node, pyast.Call):
            raise self.ctx.error(
                "expression statements must be calls (everything else has "
                "no effect)",
                node,
            )
        loc = location_of(node)
        # A call whose result is captured is a value use: put()/log()
        # (value-less) must be rejected there, exactly as in expressions.
        callee, args = self._call_parts(node, statement=result is None)
        return rc.CallStmt(callee, args, result, loc)

    def _call_parts(
        self, call: pyast.Call, statement: bool
    ) -> tuple[str, tuple[rc.Expr, ...]]:
        """Resolve a call against the runtime vocabulary.

        Returns the RC callee name and lifted arguments; raises for
        calls outside the vocabulary.  ``statement`` distinguishes
        value-less operations (``put``/``log``) that may not appear in
        expressions.
        """
        func = call.func
        # Method calls: q.put / q.get / env.<name>.
        if isinstance(func, pyast.Attribute):
            base, attr = func.value, func.attr
            if self.ctx.runtime_name(base) == "env":
                args = self._call_args(call, allow_objects=False)
                self.ctx.register_extern(attr, len(args), call)
                return attr, args
            if attr == "put":
                obj = self._object_base(base)
                if not statement:
                    raise self.ctx.error(
                        "put() returns nothing and cannot be used in an "
                        "expression",
                        call,
                    )
                args = self._call_args(call, allow_objects=False)
                if len(args) != 1:
                    raise self.ctx.error(
                        f"put() takes exactly one value, got {len(args)}", call
                    )
                return "send", (obj, args[0])
            if attr == "get":
                obj = self._object_base(base)
                args = self._call_args(call)
                if args:
                    raise self.ctx.error(
                        f"get() takes no arguments, got {len(args)}", call
                    )
                return "recv", (obj,)
            raise self.ctx.error(
                f"unknown queue method .{attr}(); the verifiable vocabulary "
                "is put(value), get(), and env.<name>(...)",
                call,
            )
        if not isinstance(func, pyast.Name):
            raise self.ctx.error(
                "only named functions can be called (no indirect calls)", call
            )
        runtime = self.ctx.runtime.get(func.id)
        if runtime == "log":
            if not statement:
                raise self.ctx.error(
                    "log() returns nothing and cannot be used in an expression",
                    call,
                )
            args = self._call_args(call, allow_objects=False)
            if len(args) != 1:
                raise self.ctx.error(
                    f"log() takes exactly one value, got {len(args)}", call
                )
            self.ctx.uses_log = True
            return "send", (rc.StrLit(LOG_SINK, location_of(call)), args[0])
        if runtime == "toss":
            args = self._call_args(call, allow_objects=False)
            if len(args) != 1:
                raise self.ctx.error(
                    f"toss() takes exactly one bound, got {len(args)}", call
                )
            return "VS_toss", args
        if runtime == "spawn":
            raise self.ctx.error(
                "spawn(...) is only allowed at module level — processes are "
                "fixed at launch (the paper's systems have a static set)",
                call,
            )
        if runtime == "Queue":
            raise self.ctx.error(
                "Queue(...) construction is only allowed at module level — "
                "communication objects are fixed at launch",
                call,
            )
        if runtime is not None:
            raise self.ctx.error(
                f"{runtime} is not callable here", call
            )
        if func.id in self.ctx.functions:
            return func.id, self._call_args(call)
        if func.id == "range":
            raise self.ctx.error(
                "range(...) is only meaningful as a for-loop iterable", call
            )
        raise self.ctx.error(
            f"call to unknown function {func.id!r}; functions must be "
            "defined in this module, and environment procedures are "
            "called as env.<name>(...)",
            call,
        )

    # -- expressions ---------------------------------------------------------------

    def _expr(self, node, allow_object: bool = False) -> rc.Expr:
        loc = location_of(node)
        if isinstance(node, pyast.Constant):
            value = node.value
            if isinstance(value, bool):
                return rc.BoolLit(value, loc)
            if isinstance(value, int):
                return rc.IntLit(value, loc)
            if isinstance(value, str):
                return rc.StrLit(value, loc)
            if value is None:
                raise self.ctx.error(
                    "None is not part of the subset (RC values are ints, "
                    "bools and string atoms)",
                    node,
                )
            raise self.ctx.error(
                f"unsupported literal {value!r}; RC values are ints, bools "
                "and string atoms",
                node,
            )
        if isinstance(node, pyast.Name):
            return self._name(node, allow_object=allow_object)
        if isinstance(node, pyast.UnaryOp):
            if isinstance(node.op, pyast.USub):
                return rc.Unary("-", self._expr(node.operand), loc)
            if isinstance(node.op, pyast.UAdd):
                return self._expr(node.operand)
            if isinstance(node.op, pyast.Not):
                return rc.Unary("!", self._expr(node.operand), loc)
            raise self.ctx.error(
                f"unsupported unary operator {type(node.op).__name__}", node
            )
        if isinstance(node, pyast.BinOp):
            if isinstance(node.op, pyast.Div):
                raise self.ctx.error(
                    "true division (/) is not supported — RC is integer-"
                    "valued; use // for integer division",
                    node,
                )
            op = BIN_OPS.get(type(node.op))
            if op is None:
                raise self.ctx.error(
                    f"unsupported binary operator {type(node.op).__name__}; "
                    "the subset has + - * // %",
                    node,
                )
            return rc.Binary(op, self._expr(node.left), self._expr(node.right), loc)
        if isinstance(node, pyast.BoolOp):
            op = BOOL_OPS[type(node.op)]
            values = [self._expr(value) for value in node.values]
            folded = values[0]
            for value in values[1:]:
                folded = rc.Binary(op, folded, value, loc)
            return folded
        if isinstance(node, pyast.Compare):
            if len(node.ops) != 1:
                raise self.ctx.error(
                    "chained comparisons (a < b < c) are not supported; "
                    "split them with 'and'",
                    node,
                )
            op = CMP_OPS.get(type(node.ops[0]))
            if op is None:
                raise self.ctx.error(
                    f"unsupported comparison {type(node.ops[0]).__name__}; "
                    "the subset has == != < <= > >=",
                    node,
                )
            return rc.Binary(
                op, self._expr(node.left), self._expr(node.comparators[0]), loc
            )
        if isinstance(node, pyast.Call):
            callee, args = self._call_parts(node, statement=False)
            return rc.CallExpr(callee, args, loc)
        raise self.ctx.error(
            f"{_describe_node(node)} are not part of the verifiable subset",
            node,
        )

    def _name(self, node: pyast.Name, allow_object: bool) -> rc.Expr:
        loc = location_of(node)
        name = node.id
        if self._is_local(name):
            return rc.Name(name, loc)
        constant = self.ctx.constants.get(name)
        if constant is not None or name in self.ctx.constants:
            if isinstance(constant, bool):
                return rc.BoolLit(constant, loc)
            if isinstance(constant, int):
                return rc.IntLit(constant, loc)
            return rc.StrLit(constant, loc)
        if name in self.ctx.objects:
            if allow_object:
                # Object reference in argument position: pass the name
                # atom; the runtime resolves it to the live object.
                return rc.StrLit(name, loc)
            raise self.ctx.error(
                f"queue {name!r} can only be used in put/get operations or "
                "passed to a function/spawn",
                node,
            )
        if name in self.ctx.runtime:
            raise self.ctx.error(
                f"{self.ctx.runtime[name]} is part of the runtime vocabulary "
                "and has no value of its own",
                node,
            )
        if name in self.ctx.functions:
            raise self.ctx.error(
                f"function {name!r} used as a value; only direct calls are "
                "supported",
                node,
            )
        raise self.ctx.error(
            f"undefined name {name!r} (not a parameter, local, module "
            "constant or queue)",
            node,
        )


def lift_function(ctx: LiftContext, func: pyast.FunctionDef) -> rc.Proc:
    """Lift one Python ``def`` into an RC procedure."""
    return FunctionLifter(ctx, func).lift()
