"""Diagnostics of the Python front end.

Every rejection of an out-of-subset construct raises
:class:`PyFrontError` carrying the offending ``file:line:column`` — the
front end *never* silently miscompiles: a program either lifts exactly
or fails loudly with an actionable, source-anchored message.  The
rejection tests (``tests/pyfront/test_errors.py``) enumerate one
program per diagnostic and assert both the anchor and the hint.
"""

from __future__ import annotations

from ..errors import SYNTHETIC, LangError, SourceLocation

__all__ = ["PyFrontError", "location_of"]


class PyFrontError(LangError):
    """The Python front end met a construct outside the lifted subset
    (or a malformed use of the runtime vocabulary).

    The message is prefixed ``file:line:column:`` whenever the
    offending node is known, so editors and CI logs can jump straight
    to the Python source line.
    """

    def __init__(
        self,
        message: str,
        location: SourceLocation | None = None,
        filename: str | None = None,
    ):
        self.filename = filename
        if location is not None and location != SYNTHETIC:
            prefix = f"{filename}:{location}" if filename else str(location)
            super().__init__(f"{prefix}: {message}", None)
            self.location = location
        else:
            if filename:
                message = f"{filename}: {message}"
            super().__init__(message, None)
            self.location = location


def location_of(node) -> SourceLocation:
    """The :class:`SourceLocation` of a ``ast`` (CPython) node.

    CPython reports 0-based columns; RC locations are 1-based.  Nodes
    without position info (rare synthetic ones) map to ``SYNTHETIC``.
    """
    line = getattr(node, "lineno", None)
    if line is None:
        return SYNTHETIC
    return SourceLocation(line, getattr(node, "col_offset", 0) + 1)
