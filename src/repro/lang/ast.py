"""Abstract syntax trees for the RC language.

The AST mirrors the abstract imperative language of Section 4 of the
paper: a program is a finite collection of procedures; statements are
assignments, conditionals (``if``/``while``/``for``/``switch``),
procedure calls and termination statements (``return``/``exit``).
Expressions cover integers, booleans, string atoms (symbolic message
tags), arrays, record fields and pointers (``&x`` / ``*p``), which give
the may-alias analysis something real to do.

Two node families deserve a note:

* :class:`CallExpr` may appear inside expressions in *surface* programs
  only.  The normalizer (:mod:`repro.lang.normalize`) hoists them out so
  that, in core form, calls appear solely as :class:`CallStmt`, each of
  whose arguments is a simple variable or literal — exactly the shape the
  paper assumes ("each argument of a procedure call is a variable").
* ``extern proc`` declarations declare environment procedures: calls to
  them are the open interface of the system (their results are values
  "defined by the environment" in the paper's terminology).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from .errors import SYNTHETIC, SourceLocation

# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Expr:
    """Base class of all expressions."""


@dataclass(frozen=True, slots=True)
class IntLit(Expr):
    value: int
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class BoolLit(Expr):
    value: bool
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class StrLit(Expr):
    """A string atom, used as a symbolic constant (message tags etc.)."""

    value: str
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class AbstractLit(Expr):
    """The erased-value literal ``top``.

    The closing transformation substitutes it for call arguments whose
    value depended on the environment (e.g. a non-preserved assertion's
    subject, or a message payload computed from an input).  It evaluates
    to the abstract value :data:`repro.runtime.values.TOP`.
    """

    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Name(Expr):
    """A variable reference (also an lvalue)."""

    ident: str
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Unary(Expr):
    """Unary operation.  ``op`` is one of ``-``, ``!``, ``&``, ``*``.

    ``&`` takes the address of an lvalue; ``*`` dereferences a pointer and
    is also an lvalue form.
    """

    op: str
    operand: Expr
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Binary(Expr):
    """Binary operation over the arithmetic/comparison/boolean operators."""

    op: str
    left: Expr
    right: Expr
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Index(Expr):
    """Array indexing ``base[index]`` (also an lvalue)."""

    base: Expr
    index: Expr
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Field(Expr):
    """Record field selection ``base.field`` (also an lvalue)."""

    base: Expr
    field: str
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class CallExpr(Expr):
    """A call in expression position (surface programs only)."""

    callee: str
    args: tuple[Expr, ...]
    location: SourceLocation = SYNTHETIC


#: Expression forms that may appear on the left of an assignment.
LVALUE_TYPES = (Name, Index, Field, Unary)


def is_lvalue(expr: Expr) -> bool:
    """Return whether ``expr`` is a valid assignment target."""
    if isinstance(expr, (Name, Index, Field)):
        return True
    return isinstance(expr, Unary) and expr.op == "*"


# ---------------------------------------------------------------------------
# Statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Stmt:
    """Base class of all statements."""


@dataclass(frozen=True, slots=True)
class VarDecl(Stmt):
    """``var x;`` / ``var x = e;`` / ``var a[n];``

    Declarations initialize to 0 (or a fresh n-element array of zeroes),
    so a declaration is semantically an assignment; the CFG builder
    represents it as one assignment node.
    """

    name: str
    init: Expr | None = None
    array_size: int | None = None
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Assign(Stmt):
    target: Expr  # an lvalue
    value: Expr
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class CallStmt(Stmt):
    """``f(a, b);`` or ``x = f(a, b);`` (when ``result`` is an lvalue)."""

    callee: str
    args: tuple[Expr, ...]
    result: Expr | None = None
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class If(Stmt):
    cond: Expr
    then_body: tuple[Stmt, ...]
    else_body: tuple[Stmt, ...] = ()
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class While(Stmt):
    cond: Expr
    body: tuple[Stmt, ...]
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class For(Stmt):
    """``for (init; cond; step) body`` — desugared to While by normalize."""

    init: Stmt | None
    cond: Expr | None
    step: Stmt | None
    body: tuple[Stmt, ...]
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class SwitchCase:
    """One ``case v:`` arm.  ``value`` is an int or string atom."""

    value: int | str
    body: tuple[Stmt, ...]
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Switch(Stmt):
    """``switch (e) { case v: ...; default: ... }``.

    RC switch arms do not fall through; each arm is a block.
    """

    subject: Expr
    cases: tuple[SwitchCase, ...]
    default: tuple[Stmt, ...] = ()
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Return(Stmt):
    value: Expr | None = None
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Exit(Stmt):
    """``exit;`` terminates the executing process."""

    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Break(Stmt):
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Continue(Stmt):
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Skip(Stmt):
    """``skip;`` — the empty statement."""

    location: SourceLocation = SYNTHETIC


# ---------------------------------------------------------------------------
# Procedures and programs
# ---------------------------------------------------------------------------


@dataclass(frozen=True, slots=True)
class Proc:
    name: str
    params: tuple[str, ...]
    body: tuple[Stmt, ...]
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class ExternDecl:
    """``extern proc f(a, b);`` — an environment procedure."""

    name: str
    params: tuple[str, ...]
    location: SourceLocation = SYNTHETIC


@dataclass(frozen=True, slots=True)
class Program:
    """A parsed RC program: its procedures plus extern declarations."""

    procs: dict[str, Proc] = field(default_factory=dict)
    externs: dict[str, ExternDecl] = field(default_factory=dict)

    def proc_names(self) -> list[str]:
        return list(self.procs)


# ---------------------------------------------------------------------------
# Traversal helpers
# ---------------------------------------------------------------------------


def walk_expr(expr: Expr):
    """Yield ``expr`` and every sub-expression, pre-order."""
    yield expr
    if isinstance(expr, Unary):
        yield from walk_expr(expr.operand)
    elif isinstance(expr, Binary):
        yield from walk_expr(expr.left)
        yield from walk_expr(expr.right)
    elif isinstance(expr, Index):
        yield from walk_expr(expr.base)
        yield from walk_expr(expr.index)
    elif isinstance(expr, Field):
        yield from walk_expr(expr.base)
    elif isinstance(expr, CallExpr):
        for arg in expr.args:
            yield from walk_expr(arg)


def expr_names(expr: Expr) -> set[str]:
    """The set of variable identifiers occurring anywhere in ``expr``."""
    return {node.ident for node in walk_expr(expr) if isinstance(node, Name)}


def walk_stmts(stmts) :
    """Yield every statement in ``stmts``, recursively, pre-order."""
    for stmt in stmts:
        yield stmt
        if isinstance(stmt, If):
            yield from walk_stmts(stmt.then_body)
            yield from walk_stmts(stmt.else_body)
        elif isinstance(stmt, While):
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, For):
            if stmt.init is not None:
                yield from walk_stmts((stmt.init,))
            if stmt.step is not None:
                yield from walk_stmts((stmt.step,))
            yield from walk_stmts(stmt.body)
        elif isinstance(stmt, Switch):
            for case in stmt.cases:
                yield from walk_stmts(case.body)
            yield from walk_stmts(stmt.default)
