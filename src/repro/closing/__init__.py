"""The paper's core contribution: automatically closing open reactive
programs (Figure 1 of the paper), plus the naive explicit-environment
baseline of Section 3."""

from .analysis import ClosingAnalysis, ProcAnalysis, analyze_for_closing
from .closer import ClosedProgram, close_program
from .codegen import cfg_to_source, cfgs_to_source
from .dce import DceStats, eliminate_dead_stores, eliminate_dead_stores_program
from .errors import ClosingError
from .hoist import HoistStats, unswitch_proc, unswitch_program
from .minimize import (
    MinimizeStats,
    bisimulation_classes,
    eliminate_redundant_toss,
    eliminate_redundant_toss_program,
)
from .naive import NaiveClosedProgram, NaiveDomains, close_naively
from .partition import (
    PartitionReport,
    PartitionedSite,
    close_with_partitioning,
)
from .spec import EMPTY_SPEC, ClosingSpec
from .transform import ProcTransformStats, transform_program

__all__ = [
    "EMPTY_SPEC",
    "ClosedProgram",
    "ClosingAnalysis",
    "ClosingError",
    "ClosingSpec",
    "DceStats",
    "MinimizeStats",
    "NaiveClosedProgram",
    "NaiveDomains",
    "PartitionReport",
    "PartitionedSite",
    "ProcAnalysis",
    "close_with_partitioning",
    "ProcTransformStats",
    "analyze_for_closing",
    "bisimulation_classes",
    "cfg_to_source",
    "cfgs_to_source",
    "close_naively",
    "close_program",
    "eliminate_dead_stores",
    "eliminate_dead_stores_program",
    "eliminate_redundant_toss",
    "eliminate_redundant_toss_program",
    "HoistStats",
    "transform_program",
    "unswitch_proc",
    "unswitch_program",
]
