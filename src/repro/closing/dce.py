"""Dead-store elimination on closed control-flow graphs (optional pass).

The closing transformation removes every *use* of environment-dependent
data, which routinely orphans system computation: declarations whose
only consumers were erased, counters feeding erased conditions, and so
on.  Those leftovers are harmless — Theorem 6 says nothing about dead
values — but they bloat the closed program and the per-state stores the
explorer fingerprints, so pruning them both shrinks the output and can
*reduce the distinct-state count* of the closed system.

The pass is a classic liveness-driven sweep, iterated to a fixpoint
(removing one dead store can kill another):

* an ``ASSIGN`` node whose target variable is dead afterwards (and not
  address-taken) is bypassed;
* a ``CALL`` to an *invisible, effect-free* built-in (``record``,
  ``channel``/``semaphore``/``shared`` lookups, and — notably —
  ``VS_toss`` used as a statement) whose result is dead is bypassed;
  visible operations and user procedure calls are never touched.

Cross-procedure liveness (a value flowing out through a call argument or
return) is respected because call/return nodes *use* their operands.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import ControlFlowGraph, copy_cfg
from ..cfg.nodes import NodeKind
from ..dataflow.alias import PointsToResult
from ..dataflow.liveness import compute_liveness
from ..lang import ast

#: Invisible built-ins with no effect beyond their result.
_PURE_BUILTINS = frozenset({"record", "channel", "semaphore", "shared", "VS_toss"})


@dataclass
class DceStats:
    """Accounting for one procedure."""

    proc: str
    removed_assigns: int = 0
    removed_calls: int = 0

    @property
    def removed(self) -> int:
        return self.removed_assigns + self.removed_calls


def _removable(node, liveness) -> str | None:
    """Return "assign"/"call" if the node is a removable dead store."""
    if node.kind is NodeKind.ASSIGN:
        if isinstance(node.target, ast.Name) and liveness.is_dead_after(
            node.id, node.target.ident
        ):
            return "assign"
        return None
    if node.kind is NodeKind.CALL and node.callee in _PURE_BUILTINS:
        if node.result is None:
            return "call"
        if isinstance(node.result, ast.Name) and liveness.is_dead_after(
            node.id, node.result.ident
        ):
            return "call"
    return None


def _bypass(cfg: ControlFlowGraph, node_id: int) -> None:
    """Splice a straight-line node out of the graph."""
    out_arcs = cfg.successors(node_id)
    assert len(out_arcs) == 1
    successor = out_arcs[0].dst
    for incoming in list(cfg.predecessors(node_id)):
        cfg.add_arc(incoming.src, successor, incoming.guard)
    # Drop the node and all arcs touching it.
    dead_arcs = {
        arc for arc in cfg.arcs if arc.src == node_id or arc.dst == node_id
    }
    cfg.arcs = [arc for arc in cfg.arcs if arc not in dead_arcs]
    del cfg.nodes[node_id]
    del cfg._succ[node_id]
    del cfg._pred[node_id]
    for nid in cfg.nodes:
        cfg._succ[nid] = [a for a in cfg._succ[nid] if a not in dead_arcs]
        cfg._pred[nid] = [a for a in cfg._pred[nid] if a not in dead_arcs]


def eliminate_dead_stores(
    cfg: ControlFlowGraph,
    points_to: dict[str, set[str]] | None = None,
    max_rounds: int = 50,
) -> tuple[ControlFlowGraph, DceStats]:
    """Return a pruned copy of ``cfg`` plus statistics."""
    out = copy_cfg(cfg)
    stats = DceStats(proc=cfg.proc_name)
    for _ in range(max_rounds):
        liveness = compute_liveness(out, points_to)
        victims: list[tuple[int, str]] = []
        for node in list(out):
            if node.id == out.start_id:
                continue
            kind = _removable(node, liveness)
            if kind is not None:
                victims.append((node.id, kind))
        if not victims:
            break
        # Self-looping dead nodes cannot be spliced; skip them (they are
        # unreachable in practice once their feeders are gone).
        progressed = False
        for node_id, kind in victims:
            arcs = out.successors(node_id)
            if len(arcs) != 1 or arcs[0].dst == node_id:
                continue
            _bypass(out, node_id)
            progressed = True
            if kind == "assign":
                stats.removed_assigns += 1
            else:
                stats.removed_calls += 1
        if not progressed:
            break
    out.prune_unreachable()
    out.validate()
    return out, stats


def eliminate_dead_stores_program(
    cfgs: dict[str, ControlFlowGraph],
    points_to: PointsToResult | None = None,
) -> tuple[dict[str, ControlFlowGraph], dict[str, DceStats]]:
    """Run the pass over every procedure of a (closed) program."""
    out: dict[str, ControlFlowGraph] = {}
    stats: dict[str, DceStats] = {}
    for proc, cfg in cfgs.items():
        local_map = points_to.local_pointer_map(proc) if points_to else None
        out[proc], stats[proc] = eliminate_dead_stores(cfg, local_map)
    return out, stats
