"""The naive closing baseline of Section 3.

"Given an open system S, add a new component E_S to S whose behavior
includes all possible sequences of inputs and outputs of S.  However,
this naive approach generates a closed system whose state space is
typically so large that it renders any analysis intractable: for
instance, E_S is infinitely branching whenever the set of inputs is
infinite."

This module implements that baseline so the benchmarks can measure the
blow-up the paper predicts.  Each environment input point (extern call,
environment-provided parameter, receive from an environment channel) is
replaced by an explicit nondeterministic choice over a *finite* input
domain ``V_i`` supplied by the user — the branching degree of the
explicit environment is exactly ``|V_i|``, as it would be for a separate
environment process, without the extra bookkeeping of one.  An infinite
domain is inexpressible, which is the paper's point.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping, Sequence

from ..cfg.builder import build_cfgs
from ..cfg.graph import ControlFlowGraph, copy_cfg
from ..cfg.nodes import ALWAYS, CfgNode, NodeKind, TossGuard
from ..lang import ast
from ..lang.errors import SYNTHETIC
from ..lang.parser import parse_program
from ..runtime.ops import BUILTIN_OPERATIONS
from .errors import ClosingError
from .spec import ClosingSpec

Value = int | bool | str


@dataclass(frozen=True)
class NaiveDomains:
    """Finite input domains for every environment input point."""

    #: extern procedure name -> values its calls may return.
    call_results: Mapping[str, Sequence[Value]] = field(default_factory=dict)
    #: (proc, param) -> values an environment-provided parameter may take.
    params: Mapping[tuple[str, str], Sequence[Value]] = field(default_factory=dict)
    #: channel name -> values receives from an environment channel yield.
    channels: Mapping[str, Sequence[Value]] = field(default_factory=dict)
    #: fallback domain for any input point not listed above.
    default: Sequence[Value] | None = None

    def for_call(self, callee: str) -> Sequence[Value]:
        return self._pick(self.call_results.get(callee), f"extern call {callee!r}")

    def for_param(self, proc: str, param: str) -> Sequence[Value]:
        return self._pick(self.params.get((proc, param)), f"parameter {proc}::{param}")

    def for_channel(self, channel: str) -> Sequence[Value]:
        return self._pick(self.channels.get(channel), f"environment channel {channel!r}")

    def _pick(self, domain: Sequence[Value] | None, what: str) -> Sequence[Value]:
        if domain is None:
            domain = self.default
        if domain is None or len(domain) == 0:
            raise ClosingError(
                f"naive closing needs a finite input domain for {what}; the most "
                "general environment over an infinite domain is infinitely branching"
            )
        return domain


@dataclass
class NaiveClosedProgram:
    """Result of naive closing: directly executable CFGs plus stats."""

    cfgs: dict[str, ControlFlowGraph]
    input_points: int
    total_branching: int  # sum of |V_i| over rewritten input points


def _value_expr(value: Value) -> ast.Expr:
    if isinstance(value, bool):
        return ast.BoolLit(value, SYNTHETIC)
    if isinstance(value, int):
        return ast.IntLit(value, SYNTHETIC)
    if isinstance(value, str):
        return ast.StrLit(value, SYNTHETIC)
    raise ClosingError(f"unsupported naive-domain value {value!r}")


class _NaiveRewriter:
    def __init__(
        self,
        cfgs: dict[str, ControlFlowGraph],
        domains: NaiveDomains,
        spec: ClosingSpec,
    ):
        self._cfgs = cfgs
        self._domains = domains
        self._spec = spec
        self.input_points = 0
        self.total_branching = 0

    def run(self) -> dict[str, ControlFlowGraph]:
        return {proc: self._rewrite(proc, cfg) for proc, cfg in self._cfgs.items()}

    # -- helpers -------------------------------------------------------------------

    def _is_env_input(self, node: CfgNode) -> tuple[bool, Sequence[Value] | None]:
        if node.kind is not NodeKind.CALL:
            return False, None
        spec = BUILTIN_OPERATIONS.get(node.callee)
        if spec is None and node.callee not in self._cfgs:
            return True, self._domains.for_call(node.callee)
        if spec is not None and spec.name == "recv" and len(node.args) == 1:
            arg = node.args[0]
            if isinstance(arg, ast.StrLit) and arg.value in self._spec.env_channels:
                return True, self._domains.for_channel(arg.value)
        return False, None

    def _rewrite(self, proc: str, cfg: ControlFlowGraph) -> ControlFlowGraph:
        out = ControlFlowGraph(proc_name=cfg.proc_name, params=cfg.params)
        id_map: dict[int, int] = {}
        # entry/exit of the replacement for each original node.
        exits: dict[int, int] = {}
        for node_id in sorted(cfg.nodes):
            node = cfg.nodes[node_id]
            env_input, domain = self._is_env_input(node)
            if env_input:
                entry, exit_ = self._emit_choice(out, node, domain)
                id_map[node_id] = entry
                exits[node_id] = exit_
            else:
                new = out.new_node(
                    NodeKind.START if node.kind is NodeKind.START else node.kind,
                    location=node.location,
                    target=node.target,
                    value=node.value,
                    array_size=node.array_size,
                    expr=node.expr,
                    callee=node.callee,
                    args=node.args,
                    result=node.result,
                    bound=node.bound,
                )
                id_map[node_id] = new.id
                exits[node_id] = new.id
        for arc in cfg.arcs:
            out.add_arc(exits[arc.src], id_map[arc.dst], arc.guard)
        # Environment-provided parameters: choose their value up front.
        env_params = [p for p in cfg.params if p in self._spec.params_of(proc)]
        if env_params:
            self._prepend_param_choices(out, proc, env_params)
        out.validate()
        return out

    def _emit_choice(
        self, out: ControlFlowGraph, node: CfgNode, domain: Sequence[Value]
    ) -> tuple[int, int]:
        """Replace an input point by ``VS_toss(|V|-1)`` over its domain.

        Returns (entry node id, join node id).  The join is a no-op
        assignment so every branch funnels into a single exit.
        """
        self.input_points += 1
        self.total_branching += len(domain)
        join = out.new_node(
            NodeKind.ASSIGN,
            location=node.location,
            target=ast.Name("_env_join", SYNTHETIC),
            value=ast.IntLit(0, SYNTHETIC),
        )
        if node.result is None:
            # The input value is discarded; a single branch suffices, but
            # the environment still "chose" — model with a 0-ary toss to
            # keep the choice visible in statistics?  No: a discarded
            # input cannot influence the system, skip the choice.
            entry = out.new_node(
                NodeKind.ASSIGN,
                location=node.location,
                target=ast.Name("_env_skip", SYNTHETIC),
                value=ast.IntLit(0, SYNTHETIC),
            )
            out.add_arc(entry.id, join.id, ALWAYS)
            return entry.id, join.id
        toss = out.new_node(NodeKind.TOSS, location=node.location, bound=len(domain) - 1)
        for index, value in enumerate(domain):
            assign = out.new_node(
                NodeKind.ASSIGN,
                location=node.location,
                target=node.result,
                value=_value_expr(value),
            )
            out.add_arc(toss.id, assign.id, TossGuard(index))
            out.add_arc(assign.id, join.id, ALWAYS)
        return toss.id, join.id

    def _prepend_param_choices(
        self, out: ControlFlowGraph, proc: str, env_params: list[str]
    ) -> None:
        """Insert domain choices for env parameters right after START."""
        start_arcs = list(out.successors(out.start_id))
        assert len(start_arcs) == 1
        first = start_arcs[0].dst
        # Detach the START arc by rebuilding adjacency.
        out.arcs.remove(start_arcs[0])
        out._succ[out.start_id].clear()
        out._pred[first] = [a for a in out._pred[first] if a.src != out.start_id]
        current = out.start_id
        for param in env_params:
            domain = self._domains.for_param(proc, param)
            self.input_points += 1
            self.total_branching += len(domain)
            toss = out.new_node(NodeKind.TOSS, location=SYNTHETIC, bound=len(domain) - 1)
            out.add_arc(current, toss.id, ALWAYS)
            join = out.new_node(
                NodeKind.ASSIGN,
                location=SYNTHETIC,
                target=ast.Name("_env_join", SYNTHETIC),
                value=ast.IntLit(0, SYNTHETIC),
            )
            for index, value in enumerate(domain):
                assign = out.new_node(
                    NodeKind.ASSIGN,
                    location=SYNTHETIC,
                    target=ast.Name(param, SYNTHETIC),
                    value=_value_expr(value),
                )
                out.add_arc(toss.id, assign.id, TossGuard(index))
                out.add_arc(assign.id, join.id, ALWAYS)
            current = join.id
        out.add_arc(current, first, ALWAYS)


def close_naively(
    source: str | ast.Program | dict[str, ControlFlowGraph],
    domains: NaiveDomains | Mapping[str, Sequence[Value]] | None = None,
    spec: ClosingSpec | None = None,
    *,
    default_domain: Sequence[Value] | None = None,
) -> NaiveClosedProgram:
    """Close ``source`` with an explicit finite-domain environment.

    ``domains`` may be a full :class:`NaiveDomains` or, as a shorthand, a
    mapping from extern procedure names to their result domains.
    """
    if isinstance(source, str):
        source = parse_program(source)
    if isinstance(source, ast.Program):
        cfgs = build_cfgs(source)
    else:
        cfgs = {name: copy_cfg(cfg) for name, cfg in source.items()}
    if domains is None:
        domains = NaiveDomains(default=default_domain)
    elif not isinstance(domains, NaiveDomains):
        domains = NaiveDomains(call_results=dict(domains), default=default_domain)
    rewriter = _NaiveRewriter(cfgs, domains, spec or ClosingSpec())
    closed = rewriter.run()
    return NaiveClosedProgram(
        cfgs=closed,
        input_points=rewriter.input_points,
        total_branching=rewriter.total_branching,
    )
