"""Steps 2–3 of the closing algorithm, with the interprocedural fixpoint.

For every procedure this module computes, from its define-use graph
(Step 2 of Figure 1):

* ``N_ES`` — nodes that use the value of a variable defined by the
  environment;
* ``N_I``  — nodes reachable from ``N_ES`` by define-use arcs;
* ``V_I(n)`` — for each node, the variables used in ``n`` that are
  defined by the environment or label a define-use arc from an ``N_I``
  node;

and the Step-3 marking (start, termination, system calls, untainted
assignments/conditionals).

"Defined by the environment" is interprocedural (Section 4: inputs of a
procedure may be provided by the environment *indirectly via other
procedures*), so the per-procedure computation sits inside a monotone
fixpoint over four global facts:

* ``env_params[p]``   — parameters of ``p`` that may carry environment
  values (a *single* tainted call site suffices, per the paper's note on
  Step 5);
* ``env_returns``     — procedures whose return value may be
  environment-defined;
* ``tainted_objects`` — channels/shared variables through which an
  environment value may be transmitted (so receives/reads on them yield
  environment-defined values in *other processes* — the paper's
  system-level ``o = i`` interface composition);
* ``escaped_env_vars[p]`` — variables of ``p`` that some callee may
  overwrite with an environment value through an escaped pointer;
  treated flow-insensitively, which is the paper's own conservative
  fallback ("variables whose addresses escape are defined by the
  environment").
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from ..cfg.nodes import CfgNode, NodeKind
from ..dataflow.alias import PointsToResult, analyze_aliases
from ..dataflow.defuse import DefUseGraph, compute_defuse
from ..lang import ast
from ..runtime.ops import BUILTIN_OPERATIONS
from .errors import ClosingError
from .spec import ClosingSpec

#: Built-in operations whose *result* is a value read out of an object.
_VALUE_SOURCES = frozenset({"recv", "read"})


@dataclass
class ProcAnalysis:
    """Per-procedure artefacts of Steps 2–3."""

    proc: str
    cfg: ControlFlowGraph
    defuse: DefUseGraph
    #: node id -> variables that node defines *with environment values*.
    env_defs: dict[int, frozenset[str]] = field(default_factory=dict)
    n_es: frozenset[int] = frozenset()
    n_i: frozenset[int] = frozenset()
    vi: dict[int, frozenset[str]] = field(default_factory=dict)
    marked: frozenset[int] = frozenset()

    def vi_of(self, node_id: int) -> frozenset[str]:
        return self.vi.get(node_id, frozenset())


@dataclass
class ClosingAnalysis:
    """The complete analysis result consumed by the transformation."""

    procs: dict[str, ProcAnalysis]
    env_params: dict[str, frozenset[str]]
    env_returns: frozenset[str]
    tainted_objects: frozenset[str]
    all_objects_tainted: bool
    escaped_env_vars: dict[str, frozenset[str]]
    points_to: PointsToResult
    spec: ClosingSpec
    rounds: int


class _Fixpoint:
    def __init__(self, cfgs: dict[str, ControlFlowGraph], spec: ClosingSpec):
        self._cfgs = cfgs
        self._spec = spec
        self._points_to = analyze_aliases(cfgs)
        self._defuse: dict[str, DefUseGraph] = {}
        for proc, cfg in cfgs.items():
            local_map = self._points_to.local_pointer_map(proc)
            self._defuse[proc] = compute_defuse(cfg, local_map)

        # Mutable global facts (monotonically growing).
        self.env_params: dict[str, set[str]] = {
            proc: set(spec.params_of(proc)) for proc in cfgs
        }
        self.env_returns: set[str] = set()
        self.tainted_objects: set[str] = set(spec.env_objects)
        self.all_objects_tainted = False
        self.escaped_env_vars: dict[str, set[str]] = {proc: set() for proc in cfgs}

    # -- object resolution ------------------------------------------------------

    def _objects_of(self, proc: str, node: CfgNode) -> set[str] | None:
        """Objects the operation at ``node`` may touch (None = unknown)."""
        spec = BUILTIN_OPERATIONS.get(node.callee)
        if spec is None or spec.object_arg is None:
            return set()
        if spec.object_arg >= len(node.args):
            return set()
        arg = node.args[spec.object_arg]
        resolved = self._points_to.objects_of(proc, arg)
        if resolved is not None:
            return resolved
        if isinstance(arg, ast.Name):
            binding = self._spec.object_bindings.get((proc, arg.ident))
            if binding is not None:
                return set(binding)
        return None

    def _object_tainted(self, objects: set[str] | None) -> bool:
        if self.all_objects_tainted:
            return True
        if objects is None:
            # Unknown object: tainted as soon as anything is.
            return bool(self.tainted_objects)
        return bool(objects & self.tainted_objects)

    # -- per-round, per-procedure computation -----------------------------------------

    def _env_defs(self, proc: str, pa: ProcAnalysis) -> dict[int, frozenset[str]]:
        """Which nodes introduce environment-defined values, and for
        which variables."""
        out: dict[int, frozenset[str]] = {}
        cfg = pa.cfg
        env_params = self.env_params[proc]
        if env_params:
            out[cfg.start_id] = frozenset(env_params)
        for node in cfg:
            if node.kind is not NodeKind.CALL:
                continue
            spec = BUILTIN_OPERATIONS.get(node.callee)
            env_source = False
            if spec is None and node.callee not in self._cfgs:
                env_source = True  # extern (environment) procedure call
            elif spec is not None and spec.name in _VALUE_SOURCES:
                objects = self._objects_of(proc, node)
                if self._object_tainted(objects):
                    env_source = True
            elif spec is None and node.callee in self._cfgs:
                pass
            elif spec is None:
                env_source = True
            if (
                node.callee in self._cfgs
                and node.callee in self.env_returns
                and node.result is not None
            ):
                env_source = True
            if env_source:
                defined = pa.defuse.accesses[node.id].defined_vars()
                if defined:
                    out[node.id] = frozenset(defined)
        return out

    def _compute_proc(self, proc: str) -> ProcAnalysis:
        cfg = self._cfgs[proc]
        pa = ProcAnalysis(proc=proc, cfg=cfg, defuse=self._defuse[proc])
        pa.env_defs = self._env_defs(proc, pa)
        escaped = self.escaped_env_vars[proc]

        # N_ES: nodes using a variable defined by the environment.
        n_es: set[int] = set()
        for arc in pa.defuse.arcs:
            if arc.var in pa.env_defs.get(arc.def_node, ()):  # env def reaches use
                n_es.add(arc.use_node)
        if escaped:
            for node_id, access in pa.defuse.accesses.items():
                if access.uses & escaped:
                    n_es.add(node_id)

        # N_I: forward define-use closure of N_ES.
        n_i: set[int] = set()
        stack = list(n_es)
        while stack:
            node_id = stack.pop()
            if node_id in n_i:
                continue
            n_i.add(node_id)
            for arc in pa.defuse.uses_fed_by(node_id):
                if arc.use_node not in n_i:
                    stack.append(arc.use_node)

        # V_I(n) for n in N_I.
        vi: dict[int, frozenset[str]] = {}
        for node_id in n_i:
            access = pa.defuse.accesses[node_id]
            tainted_vars: set[str] = set(access.uses & escaped)
            for arc in pa.defuse.defs_feeding(node_id):
                if arc.var in pa.env_defs.get(arc.def_node, ()):
                    tainted_vars.add(arc.var)
                elif arc.def_node in n_i:
                    tainted_vars.add(arc.var)
            vi[node_id] = frozenset(tainted_vars)

        pa.n_es = frozenset(n_es)
        pa.n_i = frozenset(n_i)
        pa.vi = vi
        pa.marked = frozenset(self._mark(proc, pa))
        return pa

    def _mark(self, proc: str, pa: ProcAnalysis) -> set[int]:
        """Step 3: select the nodes preserved by the transformation."""
        marked: set[int] = set()
        for node in pa.cfg:
            if node.kind in (NodeKind.START, NodeKind.RETURN, NodeKind.EXIT):
                marked.add(node.id)
            elif node.kind is NodeKind.CALL:
                if self._is_environment_call(proc, node):
                    continue
                marked.add(node.id)
            elif node.kind in (NodeKind.ASSIGN, NodeKind.COND):
                if node.id not in pa.n_i:
                    marked.add(node.id)
            elif node.kind is NodeKind.TOSS:
                # Closing an already-closed (transformed) graph: toss
                # nodes are nondeterministic conditionals of the system.
                marked.add(node.id)
        return marked

    def _is_environment_call(self, proc: str, node: CfgNode) -> bool:
        """Environment operations are *not* marked (they are eliminated)."""
        spec = BUILTIN_OPERATIONS.get(node.callee)
        if spec is None:
            return node.callee not in self._cfgs  # extern procedure
        if spec.name in ("recv", "read", "poll"):
            objects = self._objects_of(proc, node)
            if objects is None:
                return False  # unknown object: keep, taint handles values
            env_side = objects & self._spec.env_objects
            if env_side and objects - self._spec.env_objects:
                raise ClosingError(
                    f"{proc}: node {node.id} may {node.callee} from both an "
                    f"environment object and a system object ({sorted(objects)}); "
                    "declare the interface unambiguously"
                )
            return bool(env_side)
        if spec.name in ("send", "write"):
            objects = self._objects_of(proc, node)
            if objects and objects & self._spec.env_objects:
                raise ClosingError(
                    f"{proc}: node {node.id} sends into environment input object "
                    f"{sorted(objects & self._spec.env_objects)}; outputs to the "
                    "environment should use an env sink channel instead"
                )
        return False

    # -- derivation of new global facts ------------------------------------------------

    def _derive(self, analyses: dict[str, ProcAnalysis]) -> bool:
        """Propagate taint across procedure/process boundaries.

        Returns whether any global fact changed.
        """
        changed = False
        for proc, pa in analyses.items():
            for node in pa.cfg:
                vi = pa.vi_of(node.id)
                if node.kind is NodeKind.RETURN:
                    if vi and proc not in self.env_returns:
                        self.env_returns.add(proc)
                        changed = True
                    continue
                if node.kind is not NodeKind.CALL:
                    if node.id in pa.n_i or node.id in pa.env_defs:
                        changed |= self._escape_defs(proc, node)
                    continue

                spec = BUILTIN_OPERATIONS.get(node.callee)
                is_env_call = spec is None and node.callee not in self._cfgs
                if spec is None and node.callee in self._cfgs:
                    changed |= self._derive_user_call(proc, node, vi)
                elif spec is not None and spec.value_args:
                    changed |= self._derive_transmission(proc, node, vi, spec)
                if node.id in pa.n_i or node.id in pa.env_defs or is_env_call:
                    # An environment call writes environment values into
                    # whatever its result lvalue / received pointers reach
                    # — even when none of the targets are local.
                    changed |= self._escape_defs(proc, node)
        return changed

    def _derive_user_call(self, proc: str, node: CfgNode, vi: frozenset[str]) -> bool:
        callee_cfg = self._cfgs[node.callee]
        changed = False
        for param, arg in zip(callee_cfg.params, node.args):
            tainted = False
            if isinstance(arg, ast.Name) and arg.ident in vi:
                tainted = True
            elif isinstance(arg, ast.Unary) and arg.op == "&":
                # Pointer to environment-tainted storage: coarse rule —
                # the callee's parameter counts as environment-defined.
                if ast.expr_names(arg.operand) & vi:
                    tainted = True
            if tainted and param not in self.env_params[node.callee]:
                self.env_params[node.callee].add(param)
                changed = True
        return changed

    def _derive_transmission(
        self, proc: str, node: CfgNode, vi: frozenset[str], spec
    ) -> bool:
        """send/write of a tainted value taints the target object(s)."""
        tainted_value = False
        for index in spec.value_args:
            if index < len(node.args):
                arg = node.args[index]
                if isinstance(arg, ast.AbstractLit):
                    tainted_value = True
                elif ast.expr_names(arg) & vi:
                    tainted_value = True
        if not tainted_value:
            return False
        objects = self._objects_of(proc, node)
        if objects is None:
            if not self.all_objects_tainted:
                self.all_objects_tainted = True
                return True
            return False
        new = objects - self.tainted_objects
        if new:
            self.tainted_objects |= new
            return True
        return False

    def _escape_defs(self, proc: str, node: CfgNode) -> bool:
        """A node writing environment values may do so through pointers
        that reach *other procedures'* variables; record those."""
        changed = False
        pointer_roots: set[str] = set()
        if node.kind is NodeKind.ASSIGN and isinstance(node.target, ast.Unary):
            if node.target.op == "*":
                pointer_roots |= ast.expr_names(node.target.operand)
        if node.kind is NodeKind.CALL:
            if node.result is not None and isinstance(node.result, ast.Unary):
                if node.result.op == "*":
                    pointer_roots |= ast.expr_names(node.result.operand)
            if node.callee not in BUILTIN_OPERATIONS:
                # User or environment call: any pointer handed over may be
                # written through (the environment included — it received
                # the address).
                for arg in node.args:
                    if isinstance(arg, ast.Name):
                        pointer_roots.add(arg.ident)
                    # `&x` arguments target the local x, which the node's
                    # own (weak) definition set already covers.
        for root in pointer_roots:
            for target in self._points_to.nonlocal_pointees(proc, root):
                if target.proc in self.escaped_env_vars:
                    if target.var not in self.escaped_env_vars[target.proc]:
                        self.escaped_env_vars[target.proc].add(target.var)
                        changed = True
        return changed

    # -- driver --------------------------------------------------------------------------

    def run(self) -> ClosingAnalysis:
        rounds = 0
        analyses: dict[str, ProcAnalysis] = {}
        while True:
            rounds += 1
            analyses = {proc: self._compute_proc(proc) for proc in self._cfgs}
            if not self._derive(analyses):
                break
            if rounds > len(self._cfgs) * 50 + 100:
                raise ClosingError("environment-taint fixpoint failed to converge")
        return ClosingAnalysis(
            procs=analyses,
            env_params={proc: frozenset(params) for proc, params in self.env_params.items()},
            env_returns=frozenset(self.env_returns),
            tainted_objects=frozenset(self.tainted_objects),
            all_objects_tainted=self.all_objects_tainted,
            escaped_env_vars={
                proc: frozenset(vars_) for proc, vars_ in self.escaped_env_vars.items()
            },
            points_to=self._points_to,
            spec=self._spec,
            rounds=rounds,
        )


def analyze_for_closing(
    cfgs: dict[str, ControlFlowGraph], spec: ClosingSpec | None = None
) -> ClosingAnalysis:
    """Run Steps 2–3 (with the interprocedural fixpoint) over a program."""
    return _Fixpoint(cfgs, spec or ClosingSpec()).run()
