"""Input-domain partitioning: the Section 7 proposal, implemented.

The paper closes with a research direction:

    "Consider, for instance, a resource-management system that receives
    (via its open interface) 32-bit integers representing amounts of
    time requested from the resource, but whose visible behavior only
    depends on which of a small set of ranges each request falls into.
    Our transformation would completely eliminate the open interface ...
    However, one could hope for a static analysis that would determine
    the appropriate partitioning of the input domain, and, if it is
    small enough, simplify the interface instead of eliminating it."

This module implements that analysis for a decidable fragment: an
environment input whose *only* uses are guard expressions built from

* comparisons of the input against integer constants
  (``x < 10``, ``x == 42``, ``x >= c`` ...), and
* comparisons of ``x % k`` against integer constants (``x % 4 == 0``),

optionally combined with ``&&``/``||``/``!`` inside a single guard.
For such an input the predicates partition the integers into finitely
many behavioural equivalence classes.  Representatives are found
constructively: every class is realised within distance ``lcm(moduli)``
of a comparison constant or in one of the two unbounded outer regions,
so sampling those bands and deduplicating by predicate signature is
exhaustive — no SMT solver needed.

Qualifying input sites are rewritten into a ``VS_toss`` over the
representative *values* (system nondeterminism, so downstream guards are
**preserved**, not erased); everything else falls through to the
standard Figure-1 erasure.  Where the analysis applies, the closed
system is exact — the upper approximation collapses to equality.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..cfg.builder import build_cfgs
from ..cfg.graph import ControlFlowGraph, copy_cfg
from ..cfg.nodes import ALWAYS, CfgNode, NodeKind, TossGuard
from ..dataflow.alias import analyze_aliases
from ..dataflow.defuse import compute_defuse
from ..lang import ast
from ..lang.errors import SYNTHETIC
from ..lang.parser import parse_program
from ..runtime.ops import BUILTIN_OPERATIONS
from .closer import ClosedProgram, close_program
from .spec import ClosingSpec

_COMPARISONS = {"==", "!=", "<", "<=", ">", ">="}


# ---------------------------------------------------------------------------
# Predicate extraction
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Atom:
    """``(x % modulus) <op> constant`` — modulus None means raw ``x``."""

    modulus: int | None
    op: str
    constant: int

    def evaluate(self, value: int) -> bool:
        subject = value if self.modulus is None else _c_mod(value, self.modulus)
        return {
            "==": subject == self.constant,
            "!=": subject != self.constant,
            "<": subject < self.constant,
            "<=": subject <= self.constant,
            ">": subject > self.constant,
            ">=": subject >= self.constant,
        }[self.op]


def _c_mod(a: int, b: int) -> int:
    r = abs(a) % abs(b)
    return r if a >= 0 else -r


def _extract_atoms(expr: ast.Expr, var: str) -> list[_Atom] | None:
    """The atomic predicates of a guard over ``var``; None = unsupported."""
    if isinstance(expr, ast.Binary):
        if expr.op in ("&&", "||"):
            left = _extract_atoms(expr.left, var)
            right = _extract_atoms(expr.right, var)
            if left is None or right is None:
                return None
            return left + right
        if expr.op in _COMPARISONS:
            atom = _extract_comparison(expr, var)
            return None if atom is None else [atom]
        return None
    if isinstance(expr, ast.Unary) and expr.op == "!":
        return _extract_atoms(expr.operand, var)
    return None


def _extract_comparison(expr: ast.Binary, var: str) -> _Atom | None:
    def subject_of(e: ast.Expr) -> int | None | str:
        """'raw' for x, a modulus int for x % k, None otherwise."""
        if isinstance(e, ast.Name) and e.ident == var:
            return "raw"
        if (
            isinstance(e, ast.Binary)
            and e.op == "%"
            and isinstance(e.left, ast.Name)
            and e.left.ident == var
            and isinstance(e.right, ast.IntLit)
            and e.right.value != 0
        ):
            return e.right.value
        return None

    flip = {"<": ">", "<=": ">=", ">": "<", ">=": "<=", "==": "==", "!=": "!="}
    left_subject = subject_of(expr.left)
    if left_subject is not None and isinstance(expr.right, ast.IntLit):
        modulus = None if left_subject == "raw" else left_subject
        return _Atom(modulus, expr.op, expr.right.value)
    right_subject = subject_of(expr.right)
    if right_subject is not None and isinstance(expr.left, ast.IntLit):
        modulus = None if right_subject == "raw" else right_subject
        return _Atom(modulus, flip[expr.op], expr.left.value)
    return None


# ---------------------------------------------------------------------------
# Representative search
# ---------------------------------------------------------------------------


def representatives(atoms: list[_Atom], max_partition: int) -> list[int] | None:
    """One integer per behavioural equivalence class, or None if there
    are more than ``max_partition`` classes.

    Construction: within each maximal interval carved by the raw
    comparison constants, predicate signatures depend only on the value
    modulo ``L = lcm(moduli)`` and on the sign (C-style ``%`` follows the
    dividend's sign).  Sampling every value within ``L`` of each
    constant plus an ``L``-block in both unbounded outer regions
    therefore meets every class.
    """
    moduli = [a.modulus for a in atoms if a.modulus is not None]
    lcm = 1
    for m in moduli:
        lcm = math.lcm(lcm, abs(m))
    raw_constants = [a.constant for a in atoms if a.modulus is None]
    anchors = set(raw_constants) | {0}

    candidates: set[int] = set()
    for anchor in anchors:
        candidates.update(range(anchor - lcm, anchor + lcm + 1))
    hi = max(anchors) + 1 + lcm
    lo = min(anchors) - 1 - 2 * lcm
    candidates.update(range(hi, hi + lcm))
    candidates.update(range(lo, lo + lcm))

    seen: dict[tuple[bool, ...], int] = {}
    for value in sorted(candidates):
        signature = tuple(atom.evaluate(value) for atom in atoms)
        if signature not in seen:
            seen[signature] = value
            if len(seen) > max_partition:
                return None
    return sorted(seen.values())


# ---------------------------------------------------------------------------
# Site discovery and rewriting
# ---------------------------------------------------------------------------


@dataclass
class PartitionedSite:
    """One environment input whose interface was simplified, not erased."""

    proc: str
    node_id: int
    callee: str
    variable: str
    classes: int
    representatives: tuple[int, ...]


@dataclass
class PartitionReport:
    sites: list[PartitionedSite] = field(default_factory=list)
    #: Environment inputs the analysis could not partition (fell back to
    #: the standard erasure): (proc, node id, reason).
    fallbacks: list[tuple[str, int, str]] = field(default_factory=list)


class _UnsupportedUse(Exception):
    """The value escapes the comparison-only fragment."""


def _derived_assignment(node: CfgNode, var: str) -> int | None | str:
    """Classify ``node`` as a supported derived assignment of ``var``.

    Returns ``"copy"`` for ``y = x``, a modulus for ``y = x % k``, and
    raises :class:`_UnsupportedUse` otherwise.
    """
    if node.kind is not NodeKind.ASSIGN or not isinstance(node.target, ast.Name):
        raise _UnsupportedUse(f"value flows into non-guard node {node.id}")
    value = node.value
    if isinstance(value, ast.Name) and value.ident == var:
        return "copy"
    if (
        isinstance(value, ast.Binary)
        and value.op == "%"
        and isinstance(value.left, ast.Name)
        and value.left.ident == var
        and isinstance(value.right, ast.IntLit)
        and value.right.value != 0
    ):
        return value.right.value
    raise _UnsupportedUse(f"arithmetic beyond %% at node {node.id}")


def _collect_atoms(
    cfg: ControlFlowGraph,
    defuse,
    def_node_id: int,
    var: str,
    modulus: int | None,
    depth: int = 0,
) -> list[_Atom]:
    """Atoms constraining the env input, following guards and simple
    derived assignments (``y = x``, ``y = x % k``) transitively.

    ``modulus`` records the transformation between the original input
    and ``var`` (None = identity, k = input %% k).
    """
    if depth > 16:
        raise _UnsupportedUse("derivation chain too deep")
    atoms: list[_Atom] = []
    for arc in defuse.uses_fed_by(def_node_id):
        if arc.var != var:
            raise _UnsupportedUse("call defines other storage")
        use = cfg.nodes[arc.use_node]
        if use.kind is NodeKind.COND:
            if any(name != var for name in ast.expr_names(use.expr)):
                raise _UnsupportedUse(
                    f"guard at node {use.id} mixes other variables"
                )
            extracted = _extract_atoms(use.expr, var)
            if extracted is None:
                raise _UnsupportedUse(f"guard at node {use.id} too complex")
            for atom in extracted:
                if atom.modulus is None:
                    atoms.append(_Atom(modulus, atom.op, atom.constant))
                elif modulus is None:
                    atoms.append(atom)
                else:
                    raise _UnsupportedUse(
                        f"composite modulus at node {use.id}"
                    )
            continue
        kind = _derived_assignment(use, var)
        if kind == "copy":
            next_modulus = modulus
        else:
            if modulus is not None:
                raise _UnsupportedUse(f"composite modulus at node {use.id}")
            next_modulus = kind
        atoms.extend(
            _collect_atoms(
                cfg, defuse, use.id, use.target.ident, next_modulus, depth + 1
            )
        )
    return atoms


def _find_partitionable_sites(
    cfgs: dict[str, ControlFlowGraph], max_partition: int
) -> tuple[dict[tuple[str, int], list[int]], PartitionReport]:
    report = PartitionReport()
    rewrites: dict[tuple[str, int], list[int]] = {}
    points_to = analyze_aliases(cfgs)
    for proc, cfg in cfgs.items():
        defuse = compute_defuse(cfg, points_to.local_pointer_map(proc))
        for node in cfg:
            if node.kind is not NodeKind.CALL:
                continue
            if node.callee in BUILTIN_OPERATIONS or node.callee in cfgs:
                continue  # only extern (environment) calls
            if not isinstance(node.result, ast.Name):
                report.fallbacks.append((proc, node.id, "result not a variable"))
                continue
            var = node.result.ident
            try:
                atoms = _collect_atoms(cfg, defuse, node.id, var, None)
            except _UnsupportedUse as unsupported:
                report.fallbacks.append((proc, node.id, str(unsupported)))
                continue
            if not atoms:
                # Input read but never consulted: a single representative.
                rewrites[(proc, node.id)] = [0]
                report.sites.append(
                    PartitionedSite(proc, node.id, node.callee, var, 1, (0,))
                )
                continue
            reps = representatives(atoms, max_partition)
            if reps is None:
                report.fallbacks.append(
                    (proc, node.id, f"more than {max_partition} classes")
                )
                continue
            rewrites[(proc, node.id)] = reps
            report.sites.append(
                PartitionedSite(
                    proc, node.id, node.callee, var, len(reps), tuple(reps)
                )
            )
    return rewrites, report


def _rewrite_sites(
    cfgs: dict[str, ControlFlowGraph],
    rewrites: dict[tuple[str, int], list[int]],
) -> dict[str, ControlFlowGraph]:
    out: dict[str, ControlFlowGraph] = {}
    for proc, cfg in cfgs.items():
        copied = copy_cfg(cfg)
        for (site_proc, node_id), reps in rewrites.items():
            if site_proc != proc:
                continue
            node = copied.nodes[node_id]
            successor = copied.successors(node_id)[0].dst
            # Detach the call node's out-arc and splice in the choice.
            dead = set(copied.successors(node_id))
            copied.arcs = [a for a in copied.arcs if a not in dead]
            copied._succ[node_id] = []
            copied._pred[successor] = [
                a for a in copied._pred[successor] if a.src != node_id
            ]
            if len(reps) == 1:
                assign = copied.new_node(
                    NodeKind.ASSIGN,
                    location=node.location,
                    target=node.result,
                    value=ast.IntLit(reps[0], SYNTHETIC),
                )
                _replace_node_with(copied, node_id, assign.id)
                copied.add_arc(assign.id, successor, ALWAYS)
            else:
                toss = copied.new_node(
                    NodeKind.TOSS, location=node.location, bound=len(reps) - 1
                )
                _replace_node_with(copied, node_id, toss.id)
                for index, value in enumerate(reps):
                    assign = copied.new_node(
                        NodeKind.ASSIGN,
                        location=node.location,
                        target=node.result,
                        value=ast.IntLit(value, SYNTHETIC),
                    )
                    copied.add_arc(toss.id, assign.id, TossGuard(index))
                    copied.add_arc(assign.id, successor, ALWAYS)
        copied.prune_unreachable()
        copied.validate()
        out[proc] = copied
    return out


def _replace_node_with(cfg: ControlFlowGraph, old_id: int, new_id: int) -> None:
    """Redirect all incoming arcs of ``old_id`` to ``new_id`` and drop it."""
    for arc in list(cfg.predecessors(old_id)):
        cfg.add_arc(arc.src, new_id, arc.guard)
    dead = {a for a in cfg.arcs if a.dst == old_id or a.src == old_id}
    cfg.arcs = [a for a in cfg.arcs if a not in dead]
    del cfg.nodes[old_id]
    del cfg._succ[old_id]
    del cfg._pred[old_id]
    for nid in cfg.nodes:
        cfg._succ[nid] = [a for a in cfg._succ[nid] if a not in dead]
        cfg._pred[nid] = [a for a in cfg._pred[nid] if a not in dead]


def close_with_partitioning(
    source: str | ast.Program | dict[str, ControlFlowGraph],
    spec: ClosingSpec | None = None,
    max_partition: int = 64,
    optimize: bool = False,
) -> tuple[ClosedProgram, PartitionReport]:
    """Close ``source``, simplifying partitionable inputs instead of
    erasing them (Section 7), then applying Figure 1 to the rest.

    Returns the closed program and a report of which input sites were
    partitioned (with their representatives) and which fell back.
    """
    if isinstance(source, str):
        source = parse_program(source)
    if isinstance(source, ast.Program):
        cfgs = build_cfgs(source)
    else:
        cfgs = {name: copy_cfg(cfg) for name, cfg in source.items()}
    rewrites, report = _find_partitionable_sites(cfgs, max_partition)
    simplified = _rewrite_sites(cfgs, rewrites)
    closed = close_program(simplified, spec, optimize=optimize)
    return closed, report
