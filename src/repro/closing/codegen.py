"""Export transformed CFGs back to runnable RC source.

The closing transformation works on control-flow graphs, which need not
be reducible to structured syntax.  We therefore emit the classic
*dispatch loop* encoding, always valid for arbitrary graphs::

    proc p(kept_params) {
        var _pc = <start successor>;
        var x; var y; ...            // every local, hoisted
        while (true) {
            switch (_pc) {
            case 3: x = y + 1; _pc = 4;
            case 4: if (x < 10) { _pc = 3; } else { _pc = 7; }
            case 5: _t5 = VS_toss(1);
                    switch (_t5) { case 0: _pc = 3; default: _pc = 7; }
            case 7: return;
            ...
            }
        }
    }

The generated text parses, normalizes and executes under the same
runtime, which gives the test suite a strong round-trip check: the
closed CFG and its re-parsed source must exhibit identical behaviour.

Known limitation: array declarations are hoisted to the prologue, so a
re-executed declaration does not re-zero the array (CFG-native execution,
the primary path, is exact).
"""

from __future__ import annotations

from ..cfg.graph import ControlFlowGraph
from ..cfg.nodes import (
    AlwaysGuard,
    BoolGuard,
    CaseGuard,
    CfgNode,
    DefaultGuard,
    NodeKind,
    TossGuard,
)
from ..lang import ast
from ..lang.pretty import pretty_expr
from .errors import ClosingError


def _collect_locals(cfg: ControlFlowGraph) -> tuple[list[tuple[str, int | None]], set[str]]:
    """Every variable assigned in the graph, with array sizes."""
    order: list[tuple[str, int | None]] = []
    seen: set[str] = set(cfg.params)
    names_used: set[str] = set(cfg.params)
    for node in cfg.nodes.values():
        for expr_field in (node.target, node.value, node.expr, node.result, *node.args):
            if expr_field is not None:
                names_used |= ast.expr_names(expr_field)
        if node.kind is NodeKind.ASSIGN and isinstance(node.target, ast.Name):
            if node.target.ident not in seen:
                seen.add(node.target.ident)
                order.append((node.target.ident, node.array_size))
        elif node.kind is NodeKind.CALL and isinstance(node.result, ast.Name):
            if node.result.ident not in seen:
                seen.add(node.result.ident)
                order.append((node.result.ident, None))
    return order, names_used | seen


def _fresh(base: str, used: set[str]) -> str:
    name = base
    counter = 0
    while name in used:
        counter += 1
        name = f"{base}{counter}"
    used.add(name)
    return name


def _single_successor(cfg: ControlFlowGraph, node: CfgNode) -> int:
    arcs = cfg.successors(node.id)
    if len(arcs) != 1 or not isinstance(arcs[0].guard, AlwaysGuard):
        raise ClosingError(
            f"{cfg.proc_name}: node {node.id} must have one unconditional successor"
        )
    return arcs[0].dst


def cfg_to_source(cfg: ControlFlowGraph) -> str:
    """Render one CFG as an RC procedure in dispatch-loop form."""
    locals_, used_names = _collect_locals(cfg)
    pc = _fresh("_pc", used_names)
    lines: list[str] = []
    lines.append(f"proc {cfg.proc_name}({', '.join(cfg.params)}) {{")
    start_next = _single_successor(cfg, cfg.start)
    lines.append(f"    var {pc} = {start_next};")
    for name, array_size in locals_:
        if array_size is not None:
            lines.append(f"    var {name}[{array_size}];")
        else:
            lines.append(f"    var {name};")
    toss_vars: dict[int, str] = {}
    for node in cfg.nodes.values():
        if node.kind is NodeKind.TOSS:
            toss_vars[node.id] = _fresh(f"_t{node.id}", used_names)
    for var in toss_vars.values():
        lines.append(f"    var {var};")
    lines.append("    while (true) {")
    lines.append(f"        switch ({pc}) {{")

    for node_id in sorted(cfg.nodes):
        node = cfg.nodes[node_id]
        if node.kind is NodeKind.START:
            continue
        lines.append(f"        case {node_id}:")
        body = _node_body(cfg, node, pc, toss_vars)
        lines.extend(f"            {line}" for line in body)
    lines.append("        default:")
    lines.append("            exit;")
    lines.append("        }")
    lines.append("    }")
    lines.append("}")
    return "\n".join(lines) + "\n"


def _node_body(
    cfg: ControlFlowGraph, node: CfgNode, pc: str, toss_vars: dict[int, str]
) -> list[str]:
    if node.kind is NodeKind.ASSIGN:
        if node.array_size is not None:
            # Declared in the prologue; nothing to do at the node.
            return [f"{pc} = {_single_successor(cfg, node)};"]
        stmt = f"{pretty_expr(node.target)} = {pretty_expr(node.value)};"
        return [stmt, f"{pc} = {_single_successor(cfg, node)};"]

    if node.kind is NodeKind.CALL:
        args = ", ".join(pretty_expr(arg) for arg in node.args)
        call = f"{node.callee}({args})"
        stmt = f"{pretty_expr(node.result)} = {call};" if node.result is not None else f"{call};"
        return [stmt, f"{pc} = {_single_successor(cfg, node)};"]

    if node.kind is NodeKind.COND:
        return _branch_body(cfg, node, pc, pretty_expr(node.expr))

    if node.kind is NodeKind.TOSS:
        var = toss_vars[node.id]
        out = [f"{var} = VS_toss({node.bound});"]
        out.extend(_toss_switch(cfg, node, pc, var))
        return out

    if node.kind is NodeKind.RETURN:
        if node.value is not None:
            return [f"return {pretty_expr(node.value)};"]
        return ["return;"]

    if node.kind is NodeKind.EXIT:
        return ["exit;"]

    raise ClosingError(f"{cfg.proc_name}: cannot emit node kind {node.kind}")


def _branch_body(cfg: ControlFlowGraph, node: CfgNode, pc: str, subject: str) -> list[str]:
    arcs = cfg.successors(node.id)
    if all(isinstance(arc.guard, BoolGuard) for arc in arcs):
        true_dst = next(arc.dst for arc in arcs if arc.guard.expected)
        false_dst = next(arc.dst for arc in arcs if not arc.guard.expected)
        return [
            f"if ({subject}) {{",
            f"    {pc} = {true_dst};",
            "} else {",
            f"    {pc} = {false_dst};",
            "}",
        ]
    lines = [f"switch ({subject}) {{"]
    default_dst: int | None = None
    for arc in arcs:
        if isinstance(arc.guard, CaseGuard):
            label = f"'{arc.guard.value}'" if isinstance(arc.guard.value, str) else str(arc.guard.value)
            lines.append(f"case {label}:")
            lines.append(f"    {pc} = {arc.dst};")
        elif isinstance(arc.guard, DefaultGuard):
            default_dst = arc.dst
    if default_dst is None:
        raise ClosingError(f"{cfg.proc_name}: switch node {node.id} lacks a default arc")
    lines.append("default:")
    lines.append(f"    {pc} = {default_dst};")
    lines.append("}")
    return lines


def _toss_switch(cfg: ControlFlowGraph, node: CfgNode, pc: str, var: str) -> list[str]:
    lines = [f"switch ({var}) {{"]
    arcs = sorted(cfg.successors(node.id), key=lambda arc: arc.guard.value)
    for arc in arcs[:-1]:
        assert isinstance(arc.guard, TossGuard)
        lines.append(f"case {arc.guard.value}:")
        lines.append(f"    {pc} = {arc.dst};")
    lines.append("default:")
    lines.append(f"    {pc} = {arcs[-1].dst};")
    lines.append("}")
    return lines


def cfgs_to_source(cfgs: dict[str, ControlFlowGraph]) -> str:
    """Render a whole (closed) program as RC source."""
    return "\n".join(cfg_to_source(cfg) for name, cfg in sorted(cfgs.items()))
