"""Steps 4–5 of the closing algorithm: rebuilding the control-flow graph.

Step 4 (Figure 1): for every *marked* node ``n`` and every original
out-arc ``a``, ``succ(a)`` is the set of marked nodes reachable from
``n`` by a control-flow path that starts with ``a`` and passes through
unmarked nodes exclusively.

* ``|succ(a)| = 0`` — do nothing (the arc led only into an unmarked
  cycle; the divergence it represented is eliminated, as the paper
  notes).  If that leaves a non-terminal node with no out-arcs at all, a
  synthetic ``exit`` is attached: the original could only diverge
  invisibly past this point, and terminating instead preserves every
  property of Theorems 6/7 (it can only *add* behaviours, which an upper
  approximation is allowed to do).
* ``|succ(a)| = 1`` — a direct arc with ``a``'s guard.
* ``|succ(a)| > 1`` — a fresh conditional testing ``VS_toss(|succ|-1)``,
  entered via an arc carrying ``a``'s guard, with one toss-guarded arc
  per member.

Step 5: parameters defined by the environment are removed from the
procedure, the matching arguments are removed at every (transformed)
call site, and — for built-in operations and return statements, which
have no parameter list to shrink — environment-dependent value
arguments are replaced by the erased-value literal ``top``.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..cfg.graph import ControlFlowGraph
from ..cfg.nodes import ALWAYS, Arc, CfgNode, NodeKind, TossGuard
from ..lang import ast
from ..lang.errors import SYNTHETIC
from ..runtime.ops import BUILTIN_OPERATIONS
from .analysis import ClosingAnalysis, ProcAnalysis
from .errors import ClosingError


@dataclass
class ProcTransformStats:
    """Before/after accounting for one procedure."""

    proc: str
    nodes_before: int = 0
    nodes_after: int = 0
    arcs_before: int = 0
    arcs_after: int = 0
    marked: int = 0
    eliminated: int = 0
    toss_nodes: int = 0
    removed_params: tuple[str, ...] = ()
    erased_args: int = 0
    max_out_degree_before: int = 0
    max_out_degree_after: int = 0
    #: One entry per inserted VS_toss: (source node id in the original
    #: graph, |succ(a)| = toss fan-out, number of control-flow paths
    #: through the erased region it replaces).  Section 1's branching
    #: claim is the invariant fan-out <= region paths.
    toss_details: list[tuple[int, int, int]] = field(default_factory=list)

    def branching_preserved(self) -> bool:
        """The Section 1 claim, per procedure: every inserted toss
        branches at most as much as the erased code statically could."""
        return all(fanout <= paths for (_, fanout, paths) in self.toss_details)


def _succ_sets(cfg: ControlFlowGraph, marked: frozenset[int], node: CfgNode):
    """For each out-arc ``a`` of ``node``: the ordered list ``succ(a)``."""
    for arc in cfg.successors(node.id):
        found: dict[int, None] = {}
        if arc.dst in marked:
            found[arc.dst] = None
        else:
            seen: set[int] = set()
            stack = [arc.dst]
            while stack:
                current = stack.pop()
                if current in seen:
                    continue
                seen.add(current)
                for onward in cfg.successors(current):
                    if onward.dst in marked:
                        found[onward.dst] = None
                    elif onward.dst not in seen:
                        stack.append(onward.dst)
        # Deterministic order (original node ids) for toss-guard numbering.
        yield arc, sorted(found)


def _region_paths(
    cfg: ControlFlowGraph, marked: frozenset[int], arc: Arc, cap: int = 100_000
) -> int:
    """Count the control-flow paths from ``arc`` through unmarked nodes
    to marked nodes (each unmarked node at most once per path; capped).

    This is the static branching of the erased region in the *original*
    code; Section 1 claims each inserted toss branches at most this much.
    """
    count = 0

    def walk(node_id: int, on_path: set[int]) -> None:
        nonlocal count
        if count >= cap:
            return
        if node_id in marked:
            count += 1
            return
        if node_id in on_path:
            return  # a cycle contributes no terminating path
        on_path.add(node_id)
        for onward in cfg.successors(node_id):
            walk(onward.dst, on_path)
        on_path.discard(node_id)

    walk(arc.dst, set())
    return count


class ProcTransformer:
    """Transforms one procedure ``G_j`` into its closed ``G'_j``."""

    def __init__(self, pa: ProcAnalysis, analysis: ClosingAnalysis):
        self._pa = pa
        self._analysis = analysis
        self._stats = ProcTransformStats(proc=pa.proc)

    def run(self) -> tuple[ControlFlowGraph, ProcTransformStats]:
        pa = self._pa
        cfg = pa.cfg
        stats = self._stats
        stats.nodes_before = cfg.node_count()
        stats.arcs_before = cfg.arc_count()
        stats.marked = len(pa.marked)
        stats.eliminated = cfg.node_count() - len(pa.marked)
        stats.max_out_degree_before = cfg.max_out_degree()

        removed = self._analysis.env_params.get(pa.proc, frozenset())
        kept_params = tuple(p for p in cfg.params if p not in removed)
        stats.removed_params = tuple(p for p in cfg.params if p in removed)

        out = ControlFlowGraph(proc_name=cfg.proc_name, params=kept_params)
        id_map: dict[int, int] = {}
        for node_id in sorted(pa.marked):
            new_node = self._rewrite_node(cfg.nodes[node_id], out)
            id_map[node_id] = new_node.id

        for node_id in sorted(pa.marked):
            node = cfg.nodes[node_id]
            if node.kind in (NodeKind.RETURN, NodeKind.EXIT):
                continue
            src = id_map[node_id]
            wired = 0
            for arc, successors in _succ_sets(cfg, pa.marked, node):
                if not successors:
                    continue
                if len(successors) == 1:
                    out.add_arc(src, id_map[successors[0]], arc.guard)
                else:
                    toss = out.new_node(
                        NodeKind.TOSS,
                        location=node.location,
                        bound=len(successors) - 1,
                    )
                    stats.toss_nodes += 1
                    stats.toss_details.append(
                        (node.id, len(successors), _region_paths(cfg, pa.marked, arc))
                    )
                    out.add_arc(src, toss.id, arc.guard)
                    for index, succ_id in enumerate(successors):
                        out.add_arc(toss.id, id_map[succ_id], TossGuard(index))
                wired += 1
            if wired == 0:
                # Every path from here stayed inside eliminated nodes: the
                # original could only diverge invisibly.  Terminate instead.
                sink = out.new_node(NodeKind.EXIT, location=node.location)
                out.add_arc(src, sink.id, ALWAYS)
            elif node.kind is NodeKind.COND:
                self._complete_cond(out, cfg, node, src)

        out.prune_unreachable()
        out.validate()
        stats.nodes_after = out.node_count()
        stats.arcs_after = out.arc_count()
        stats.max_out_degree_after = out.max_out_degree()
        return out, stats

    def _complete_cond(
        self, out: ControlFlowGraph, cfg: ControlFlowGraph, node: CfgNode, src: int
    ) -> None:
        """A kept conditional whose branch died entirely (``succ(a) = 0``)
        still needs that branch to go somewhere: terminate it."""
        present = {arc.guard for arc in out.successors(src)}
        for arc in cfg.successors(node.id):
            if arc.guard not in present:
                sink = out.new_node(NodeKind.EXIT, location=node.location)
                out.add_arc(src, sink.id, arc.guard)

    # -- Step 5 rewrites -------------------------------------------------------------

    def _rewrite_node(self, node: CfgNode, out: ControlFlowGraph) -> CfgNode:
        vi = self._pa.vi_of(node.id)
        if node.kind is NodeKind.RETURN:
            value = node.value
            if value is not None and (vi & ast.expr_names(value)):
                value = None  # environment-dependent return value dropped
            return out.new_node(NodeKind.RETURN, location=node.location, value=value)
        if node.kind is NodeKind.CALL:
            return self._rewrite_call(node, out, vi)
        if node.kind is NodeKind.ASSIGN:
            return out.new_node(
                NodeKind.ASSIGN,
                location=node.location,
                target=node.target,
                value=node.value,
                array_size=node.array_size,
            )
        if node.kind is NodeKind.COND:
            return out.new_node(NodeKind.COND, location=node.location, expr=node.expr)
        if node.kind is NodeKind.TOSS:
            return out.new_node(NodeKind.TOSS, location=node.location, bound=node.bound)
        if node.kind is NodeKind.START:
            return out.new_node(NodeKind.START, location=node.location)
        if node.kind is NodeKind.EXIT:
            return out.new_node(NodeKind.EXIT, location=node.location)
        raise ClosingError(f"{self._pa.proc}: cannot rewrite node kind {node.kind}")

    def _arg_tainted(self, arg: ast.Expr, vi: frozenset[str]) -> bool:
        return bool(ast.expr_names(arg) & vi)

    def _rewrite_call(self, node: CfgNode, out: ControlFlowGraph, vi: frozenset[str]) -> CfgNode:
        callee = node.callee
        spec = BUILTIN_OPERATIONS.get(callee)
        args: list[ast.Expr] = []
        result = node.result
        if spec is not None:
            for index, arg in enumerate(node.args):
                if index == spec.object_arg:
                    if self._arg_tainted(arg, vi):
                        raise ClosingError(
                            f"{self._pa.proc}: node {node.id} performs {callee} on an "
                            "environment-dependent object; the synchronization "
                            "structure cannot be closed automatically"
                        )
                    args.append(arg)
                elif self._arg_tainted(arg, vi):
                    args.append(ast.AbstractLit(SYNTHETIC))
                    self._stats.erased_args += 1
                else:
                    args.append(arg)
        else:
            callee_env = self._analysis.env_params.get(callee, frozenset())
            callee_cfg = self._analysis.procs[callee].cfg
            for param, arg in zip(callee_cfg.params, node.args):
                if param in callee_env:
                    self._stats.erased_args += 1
                    continue  # Step 5 point 2: drop the argument entirely
                if self._arg_tainted(arg, vi):
                    # The fixpoint should have marked this parameter.
                    raise ClosingError(
                        f"{self._pa.proc}: tainted argument for kept parameter "
                        f"{callee}::{param} — analysis fixpoint incomplete"
                    )
                args.append(arg)
        if result is not None:
            result_uses = ast.expr_names(result) - (
                {result.ident} if isinstance(result, ast.Name) else set()
            )
            if result_uses & vi:
                # The *location* written depends on the environment: drop
                # the result binding (the defined variable is already
                # treated as environment-defined downstream).
                result = None
        return out.new_node(
            NodeKind.CALL,
            location=node.location,
            callee=callee,
            args=tuple(args),
            result=result,
        )


def transform_program(
    analysis: ClosingAnalysis,
    tracer=None,
) -> tuple[dict[str, ControlFlowGraph], dict[str, ProcTransformStats]]:
    """Apply Steps 4–5 to every procedure of the analysed program.

    ``tracer`` (a :class:`~repro.obs.tracer.Tracer`) records one span
    per transformed procedure (category ``"closing"``), so per-proc
    transform cost is visible on the run timeline.
    """
    cfgs: dict[str, ControlFlowGraph] = {}
    stats: dict[str, ProcTransformStats] = {}
    for proc, pa in analysis.procs.items():
        if tracer is None:
            transformed, proc_stats = ProcTransformer(pa, analysis).run()
        else:
            with tracer.span("transform-proc", cat="closing", proc=proc):
                transformed, proc_stats = ProcTransformer(pa, analysis).run()
        cfgs[proc] = transformed
        stats[proc] = proc_stats
    return cfgs, stats
