"""Loop unswitching: hoisting invariant conditionals out of loops.

Section 5, on the *temporal independence* imprecision: the closed
Figure-2 program "performs 10 VS_toss operations rather than a single
one before the loop.  In this case, hoisting the conditional test y=0
outside the loop in p would have eliminated this imprecision."

This optional source-to-source pass does exactly that hoisting (the
classic *loop unswitching*): a conditional whose guard is invariant in
its enclosing loop is pulled out, the loop duplicated under each
branch::

    while (c) { A; if (inv) B else C; D }
      ==>
    if (inv) { while (c) { A; B; D } } else { while (c) { A; C; D } }

Applied before closing, an environment-dependent invariant guard then
costs *one* toss per execution instead of one per iteration — turning
Figure 2's 2^10 exhaustively-explorable paths into 2.

Invariance is judged conservatively and purely syntactically: every
variable of the guard must be

* never assigned anywhere in the loop (declarations, assignments, call
  results — at base-variable granularity),
* never address-taken anywhere in the procedure, and
* never passed (by name) to a non-builtin procedure inside the loop
  (the callee could write through a pointer).

Guard expressions are side-effect-free in core form, so re-ordering
their evaluation before the loop is sound up to C-style unspecified
run-time errors (the same licence Section 5 grants the main
transformation).  Code growth is bounded by ``max_unswitches`` per
procedure (each unswitching doubles one loop body).
"""

from __future__ import annotations

from dataclasses import dataclass

from ..lang import ast
from ..runtime.ops import BUILTIN_OPERATIONS


def _base_name(expr: ast.Expr) -> str | None:
    while isinstance(expr, (ast.Index, ast.Field)):
        expr = expr.base
    if isinstance(expr, ast.Unary) and expr.op == "*":
        expr = expr.operand
        while isinstance(expr, (ast.Index, ast.Field)):
            expr = expr.base
    if isinstance(expr, ast.Name):
        return expr.ident
    return None


def _mutated_names(stmts) -> set[str]:
    """Variables possibly written by the statements (conservative)."""
    mutated: set[str] = set()
    for stmt in ast.walk_stmts(stmts):
        if isinstance(stmt, ast.VarDecl):
            mutated.add(stmt.name)
        elif isinstance(stmt, ast.Assign):
            base = _base_name(stmt.target)
            if base is not None:
                mutated.add(base)
            # A write through *p can hit anything p points to; handled by
            # the address-taken rule at the procedure level.
        elif isinstance(stmt, ast.CallStmt):
            if stmt.result is not None:
                base = _base_name(stmt.result)
                if base is not None:
                    mutated.add(base)
            is_builtin = stmt.callee in BUILTIN_OPERATIONS
            for arg in stmt.args:
                if isinstance(arg, ast.Unary) and arg.op == "&":
                    mutated |= ast.expr_names(arg.operand)
                elif not is_builtin and isinstance(arg, ast.Name):
                    # Could be a pointer the callee writes through.
                    mutated.add(arg.ident)
    return mutated


def _address_taken(stmts) -> set[str]:
    taken: set[str] = set()

    def scan(expr: ast.Expr | None) -> None:
        if expr is None:
            return
        for node in ast.walk_expr(expr):
            if isinstance(node, ast.Unary) and node.op == "&":
                base = _base_name(node.operand)
                if base is not None:
                    taken.add(base)

    for stmt in ast.walk_stmts(stmts):
        if isinstance(stmt, ast.VarDecl):
            scan(stmt.init)
        elif isinstance(stmt, ast.Assign):
            scan(stmt.target)
            scan(stmt.value)
        elif isinstance(stmt, ast.CallStmt):
            for arg in stmt.args:
                scan(arg)
        elif isinstance(stmt, (ast.If, ast.While)):
            scan(stmt.cond)
        elif isinstance(stmt, ast.Switch):
            scan(stmt.subject)
        elif isinstance(stmt, ast.Return):
            scan(stmt.value)
    return taken


def _has_jumps(stmts) -> bool:
    """break/continue inside make duplication unsafe to reason about
    simply (they would bind to the duplicated loop — actually fine — but
    a `continue` before the hoisted If changes which statements run; we
    keep the pass conservative and skip such loops)."""
    for stmt in ast.walk_stmts(stmts):
        if isinstance(stmt, (ast.Break, ast.Continue)):
            return True
    return False


@dataclass
class HoistStats:
    proc: str
    unswitched: int = 0


class _Unswitcher:
    def __init__(self, proc: ast.Proc, max_unswitches: int):
        self._proc = proc
        self._budget = max_unswitches
        self._pinned = _address_taken(proc.body)
        self.stats = HoistStats(proc=proc.name)

    def run(self) -> ast.Proc:
        body = self._block(self._proc.body)
        return ast.Proc(self._proc.name, self._proc.params, tuple(body), self._proc.location)

    def _block(self, stmts) -> list[ast.Stmt]:
        return [self._stmt(stmt) for stmt in stmts]

    def _stmt(self, stmt: ast.Stmt) -> ast.Stmt:
        if isinstance(stmt, ast.If):
            return ast.If(
                stmt.cond,
                tuple(self._block(stmt.then_body)),
                tuple(self._block(stmt.else_body)),
                stmt.location,
            )
        if isinstance(stmt, ast.Switch):
            return ast.Switch(
                stmt.subject,
                tuple(
                    ast.SwitchCase(c.value, tuple(self._block(c.body)), c.location)
                    for c in stmt.cases
                ),
                tuple(self._block(stmt.default)),
                stmt.location,
            )
        if isinstance(stmt, ast.While):
            return self._while(stmt)
        return stmt

    def _while(self, loop: ast.While) -> ast.Stmt:
        body = self._block(loop.body)
        loop = ast.While(loop.cond, tuple(body), loop.location)
        if self._budget <= 0 or _has_jumps(loop.body):
            return loop
        loop_mutated = _mutated_names(loop.body)
        for index, inner in enumerate(loop.body):
            if not isinstance(inner, ast.If):
                continue
            guard_vars = ast.expr_names(inner.cond)
            if guard_vars & loop_mutated:
                continue
            if guard_vars & self._pinned:
                continue
            self._budget -= 1
            self.stats.unswitched += 1
            prefix = loop.body[:index]
            suffix = loop.body[index + 1 :]
            then_loop = ast.While(
                loop.cond, prefix + inner.then_body + suffix, loop.location
            )
            else_loop = ast.While(
                loop.cond, prefix + inner.else_body + suffix, loop.location
            )
            return ast.If(
                inner.cond,
                (self._while(then_loop),),
                (self._while(else_loop),),
                inner.location,
            )
        return loop


def unswitch_proc(proc: ast.Proc, max_unswitches: int = 8) -> tuple[ast.Proc, HoistStats]:
    """Unswitch invariant conditionals in one procedure."""
    unswitcher = _Unswitcher(proc, max_unswitches)
    return unswitcher.run(), unswitcher.stats


def unswitch_program(
    program: ast.Program, max_unswitches: int = 8
) -> tuple[ast.Program, dict[str, HoistStats]]:
    """Unswitch every procedure of a program (pre-closing source pass)."""
    procs: dict[str, ast.Proc] = {}
    stats: dict[str, HoistStats] = {}
    for name, proc in program.procs.items():
        procs[name], stats[name] = unswitch_proc(proc, max_unswitches)
    return ast.Program(procs=procs, externs=dict(program.externs)), stats
