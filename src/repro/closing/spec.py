"""The :class:`ClosingSpec`: a declaration of a system's open interface.

The paper assumes "for each input i in I_j, it is possible to determine
whether i is also in I_S" — i.e. which procedure inputs may be provided
by the environment.  In this implementation the open interface has three
entry points, all captured here:

* **extern procedures** (``extern proc get_event();`` in RC source, or
  simply calls to procedures the program does not define): their results
  are environment-defined, and the calls themselves are environment
  operations, removed by the transformation;
* **environment-provided parameters** of (typically top-level)
  procedures — the ``x`` of Figures 2 and 3;
* **environment input channels / shared variables**: receives/reads on
  them yield environment-defined values, and — because the most general
  environment can provide any input at any time — the operations are
  treated as always-available environment operations and removed.

``object_bindings`` optionally refines the may-alias analysis: it tells
the closing tool which communication objects a procedure parameter may
hold at run time (the launch configuration is not known at closing
time).  Without a binding, a value transmitted through an unresolvable
object conservatively taints *every* object.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping


@dataclass(frozen=True)
class ClosingSpec:
    """Declares which inputs of an open system come from the environment."""

    #: proc name -> parameter names provided by the environment.
    env_params: Mapping[str, frozenset[str]] = field(default_factory=dict)
    #: Channels whose contents are produced by the environment.
    env_channels: frozenset[str] = frozenset()
    #: Shared variables written by the environment.
    env_shared: frozenset[str] = frozenset()
    #: (proc, param) -> object names the parameter may denote at run time.
    object_bindings: Mapping[tuple[str, str], frozenset[str]] = field(default_factory=dict)

    @staticmethod
    def make(
        env_params: Mapping[str, Iterable[str]] | None = None,
        env_channels: Iterable[str] = (),
        env_shared: Iterable[str] = (),
        object_bindings: Mapping[tuple[str, str], Iterable[str]] | None = None,
    ) -> "ClosingSpec":
        """Convenience constructor accepting plain iterables."""
        return ClosingSpec(
            env_params={
                proc: frozenset(params) for proc, params in (env_params or {}).items()
            },
            env_channels=frozenset(env_channels),
            env_shared=frozenset(env_shared),
            object_bindings={
                key: frozenset(values)
                for key, values in (object_bindings or {}).items()
            },
        )

    def params_of(self, proc: str) -> frozenset[str]:
        return frozenset(self.env_params.get(proc, frozenset()))

    @property
    def env_objects(self) -> frozenset[str]:
        return self.env_channels | self.env_shared


#: A spec with an empty open interface beyond extern procedures.
EMPTY_SPEC = ClosingSpec()
