"""Random open-program generation.

Used by the property-based tests (empirical Theorem 6: every behaviour
of ``S × E_S`` over a finite input domain has a matching behaviour of
the closed ``S'``) and by the linear-scaling benchmark (the paper claims
the transformation is "essentially linear in the size of G_j and G~_j").

Generated programs are *terminating by construction*: loops are counter
loops with untainted bounds, while environment values may flow anywhere
else (conditions, arithmetic, outputs).  That keeps both the naive
finite-domain closing and the automatic closing finitely explorable, so
behaviour sets can be compared exhaustively.
"""

from __future__ import annotations

import random
from dataclasses import dataclass


@dataclass(frozen=True)
class GeneratorConfig:
    """Knobs for the random program generator."""

    max_depth: int = 3
    statements_per_block: tuple[int, int] = (2, 5)
    loop_bound: tuple[int, int] = (1, 3)
    n_env_inputs: int = 2
    n_tags: int = 3
    allow_helper_procs: bool = True


class ProgramGenerator:
    """Generates one random open RC program per seed."""

    def __init__(self, seed: int, config: GeneratorConfig | None = None):
        self._rng = random.Random(seed)
        self._config = config or GeneratorConfig()
        self._var_counter = 0
        self._env_calls = 0

    # -- public -------------------------------------------------------------------

    def generate(self) -> str:
        """An open program with top-level procedure ``main`` and extern
        inputs ``env_input_0..k``; outputs go to the ``out`` sink."""
        config = self._config
        externs = "\n".join(
            f"extern proc env_input_{i}();" for i in range(config.n_env_inputs)
        )
        helpers = ""
        helper_names: list[str] = []
        if config.allow_helper_procs and self._rng.random() < 0.7:
            helper_names.append("mix")
            helpers = (
                "proc mix(a, b) {\n"
                "    var r = a * 2 + b;\n"
                "    if (r > 10) {\n"
                "        r = r - 10;\n"
                "    }\n"
                "    return r;\n"
                "}\n"
            )
        body = self._block(
            depth=0,
            vars_in_scope=[],
            helper_names=helper_names,
            indent="    ",
        )
        return f"{externs}\n{helpers}proc main() {{\n{body}}}\n"

    # -- internals ------------------------------------------------------------------

    def _fresh(self) -> str:
        self._var_counter += 1
        return f"v{self._var_counter}"

    def _expr(self, vars_in_scope: list[str], depth: int = 0) -> str:
        rng = self._rng
        choices = ["lit", "lit"]
        if vars_in_scope:
            choices += ["var", "var", "var"]
        if depth < 2:
            choices += ["binop"]
        kind = rng.choice(choices)
        if kind == "lit":
            return str(rng.randint(0, 9))
        if kind == "var":
            return rng.choice(vars_in_scope)
        op = rng.choice(["+", "-", "*", "%"])
        left = self._expr(vars_in_scope, depth + 1)
        right = self._expr(vars_in_scope, depth + 1)
        if op == "%":
            # Keep the divisor a positive literal so no division faults.
            right = str(rng.randint(1, 7))
        return f"({left} {op} {right})"

    def _cond(self, vars_in_scope: list[str]) -> str:
        op = self._rng.choice(["==", "!=", "<", "<=", ">", ">="])
        return f"{self._expr(vars_in_scope)} {op} {self._expr(vars_in_scope)}"

    def _block(
        self,
        depth: int,
        vars_in_scope: list[str],
        helper_names: list[str],
        indent: str,
    ) -> str:
        rng = self._rng
        config = self._config
        lines: list[str] = []
        local_scope = list(vars_in_scope)
        n_statements = rng.randint(*config.statements_per_block)
        for _ in range(n_statements):
            lines.append(self._statement(depth, local_scope, helper_names, indent))
        return "".join(lines)

    def _statement(
        self,
        depth: int,
        scope: list[str],
        helper_names: list[str],
        indent: str,
    ) -> str:
        rng = self._rng
        config = self._config
        options = ["decl", "decl", "send", "assign"]
        if self._env_calls < 6:
            options += ["env", "env"]
        if depth < config.max_depth:
            options += ["if", "if", "loop"]
        if helper_names and scope:
            options += ["helper"]
        kind = rng.choice(options)

        if kind == "decl":
            name = self._fresh()
            expr = self._expr(scope)
            scope.append(name)
            return f"{indent}var {name} = {expr};\n"
        if kind == "assign" and scope:
            target = rng.choice(scope)
            return f"{indent}{target} = {self._expr(scope)};\n"
        if kind == "assign":
            name = self._fresh()
            expr = self._expr(scope)
            scope.append(name)
            return f"{indent}var {name} = {expr};\n"
        if kind == "env":
            self._env_calls += 1
            name = self._fresh()
            scope.append(name)
            which = rng.randrange(config.n_env_inputs)
            return f"{indent}var {name};\n{indent}{name} = env_input_{which}();\n"
        if kind == "send":
            if scope and rng.random() < 0.5:
                payload = rng.choice(scope)
            else:
                payload = f"'tag{rng.randrange(config.n_tags)}'"
            return f"{indent}send(out, {payload});\n"
        if kind == "helper":
            name = self._fresh()
            a = rng.choice(scope)
            b = rng.choice(scope)
            scope.append(name)
            return f"{indent}var {name};\n{indent}{name} = mix({a}, {b});\n"
        if kind == "if":
            cond = self._cond(scope)
            then_block = self._block(depth + 1, scope, helper_names, indent + "    ")
            if rng.random() < 0.5:
                else_block = self._block(depth + 1, scope, helper_names, indent + "    ")
                return (
                    f"{indent}if ({cond}) {{\n{then_block}{indent}}} else {{\n"
                    f"{else_block}{indent}}}\n"
                )
            return f"{indent}if ({cond}) {{\n{then_block}{indent}}}\n"
        # loop: a counter loop with an untainted bound (termination!).
        counter = self._fresh()
        bound = rng.randint(*config.loop_bound)
        body = self._block(depth + 1, scope, helper_names, indent + "    ")
        return (
            f"{indent}var {counter} = 0;\n"
            f"{indent}while ({counter} < {bound}) {{\n"
            f"{body}"
            f"{indent}    {counter} = {counter} + 1;\n"
            f"{indent}}}\n"
        )


def generate_program(seed: int, config: GeneratorConfig | None = None) -> str:
    """One random open program (deterministic per seed)."""
    return ProgramGenerator(seed, config).generate()


def generate_sized_program(n_statements: int, seed: int = 0) -> str:
    """A realistic open program of roughly ``n_statements`` statements,
    for the linear-scaling benchmark.

    The structure repeats every ten statements — a fresh environment
    input, a short tainted chain, a short system chain, one
    environment-dependent conditional, one system conditional — and
    variable names rotate through a fixed pool (real code reuses
    variables), so erased regions and reaching-definition sets stay of
    bounded size while the program grows.
    """
    rng = random.Random(seed)
    lines = ["extern proc env_input_0();"]
    lines.append("proc main() {")
    for i in range(10):
        lines.append(f"    var e{i} = 0;")
        lines.append(f"    var s{i} = 1;")
    slot = 0
    for index in range(n_statements):
        kind = index % 10
        slot = index % 10
        prev = (index - 1) % 10
        if kind == 0:
            lines.append(f"    e{slot} = env_input_0();")
        elif kind < 4:
            lines.append(f"    e{slot} = e{prev} + {rng.randint(1, 5)};")
        elif kind < 8:
            lines.append(f"    s{slot} = s{prev} * 2 + {rng.randint(0, 3)};")
        elif kind == 8:
            lines.append(f"    if (e{prev} % 2 == 0) {{")
            lines.append("        send(out, 'left');")
            lines.append("    } else {")
            lines.append("        send(out, 'right');")
            lines.append("    }")
        else:
            lines.append(f"    if (s{prev} % 2 == 0) {{")
            lines.append(f"        send(out, s{prev});")
            lines.append("    }")
    lines.append("    send(out, 'done');")
    lines.append("}")
    return "\n".join(lines) + "\n"
