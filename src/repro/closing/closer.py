"""The top-level driver: :func:`close_program`.

Pipeline (Figure 1 end to end):

1. parse + normalize the open RC program (or accept pre-built CFGs);
2. may-alias analysis, define-use graphs (the inputs of the algorithm);
3. Steps 2–3 inside the interprocedural environment-taint fixpoint
   (:mod:`repro.closing.analysis`);
4. Steps 4–5 (:mod:`repro.closing.transform`);
5. package the result as a :class:`ClosedProgram` — directly executable
   by :class:`repro.runtime.System`, exportable back to RC source, with
   full per-procedure statistics.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Iterable, Mapping

from ..cfg.builder import build_cfgs
from ..cfg.graph import ControlFlowGraph
from ..lang import ast
from ..lang.parser import parse_program
from .analysis import ClosingAnalysis, analyze_for_closing
from .spec import ClosingSpec
from .transform import ProcTransformStats, transform_program


@dataclass
class ClosedProgram:
    """The closed, self-executable system ``S'`` produced by the algorithm."""

    cfgs: dict[str, ControlFlowGraph]
    analysis: ClosingAnalysis
    proc_stats: dict[str, ProcTransformStats]
    elapsed_seconds: float
    #: Populated when the optional clean-up passes ran (optimize=True):
    #: proc -> (dead stores removed, toss nodes removed, toss branches removed).
    optimize_stats: dict[str, tuple[int, int, int]] = field(default_factory=dict)

    def optimize(self) -> "ClosedProgram":
        """Apply the optional clean-up passes and return a new program.

        Runs dead-store elimination (:mod:`repro.closing.dce`) and the
        Section 5 redundant-toss elimination
        (:mod:`repro.closing.minimize`) to a combined fixpoint.
        """
        from .dce import eliminate_dead_stores_program
        from .minimize import eliminate_redundant_toss_program

        cfgs = self.cfgs
        totals: dict[str, list[int]] = {proc: [0, 0, 0] for proc in cfgs}
        for _ in range(10):
            cfgs, dce_stats = eliminate_dead_stores_program(cfgs)
            cfgs, toss_stats = eliminate_redundant_toss_program(cfgs)
            changed = False
            for proc in cfgs:
                removed = dce_stats[proc].removed
                toss_removed = toss_stats[proc].toss_removed
                branches = toss_stats[proc].branches_removed
                totals[proc][0] += removed
                totals[proc][1] += toss_removed
                totals[proc][2] += branches
                if removed or toss_removed or branches:
                    changed = True
            if not changed:
                break
        return ClosedProgram(
            cfgs=cfgs,
            analysis=self.analysis,
            proc_stats=self.proc_stats,
            elapsed_seconds=self.elapsed_seconds,
            optimize_stats={proc: tuple(v) for proc, v in totals.items()},
        )

    @property
    def removed_params(self) -> dict[str, tuple[str, ...]]:
        """proc -> parameters removed by Step 5 (the eliminated interface)."""
        return {
            proc: stats.removed_params
            for proc, stats in self.proc_stats.items()
            if stats.removed_params
        }

    @property
    def toss_nodes_added(self) -> int:
        return sum(stats.toss_nodes for stats in self.proc_stats.values())

    @property
    def nodes_eliminated(self) -> int:
        return sum(stats.eliminated for stats in self.proc_stats.values())

    def kept_params(self, proc: str) -> tuple[str, ...]:
        return self.cfgs[proc].params

    def to_source(self) -> str:
        """Export the closed system as runnable RC source (see
        :mod:`repro.closing.codegen`)."""
        from .codegen import cfgs_to_source

        return cfgs_to_source(self.cfgs)

    def summary(self) -> str:
        lines = [
            f"closed {len(self.cfgs)} procedure(s) in {self.elapsed_seconds * 1000:.2f} ms",
        ]
        for proc, stats in sorted(self.proc_stats.items()):
            parts = [
                f"  {proc}: {stats.nodes_before} -> {stats.nodes_after} nodes",
                f"{stats.toss_nodes} toss",
            ]
            if stats.removed_params:
                parts.append(f"params removed: {', '.join(stats.removed_params)}")
            if stats.erased_args:
                parts.append(f"{stats.erased_args} arg(s) erased")
            lines.append(", ".join(parts))
        return "\n".join(lines)


def close_program(
    source: str | ast.Program | dict[str, ControlFlowGraph],
    spec: ClosingSpec | None = None,
    *,
    env_params: Mapping[str, Iterable[str]] | None = None,
    env_channels: Iterable[str] = (),
    env_shared: Iterable[str] = (),
    object_bindings: Mapping[tuple[str, str], Iterable[str]] | None = None,
    optimize: bool = False,
    tracer=None,
) -> ClosedProgram:
    """Close an open program with its most general environment.

    ``source`` may be RC source text, a parsed program, or CFGs.  The open
    interface is the union of (a) extern procedures (and any call to an
    undefined procedure), and (b) whatever the :class:`ClosingSpec` — or
    the convenience keyword arguments — declares.

    Returns a :class:`ClosedProgram`.  Feed its ``cfgs`` straight into
    :class:`repro.runtime.System`, remembering that parameters listed in
    ``removed_params`` no longer exist.

    ``tracer`` (a :class:`~repro.obs.tracer.Tracer`) records the
    pipeline as phase spans — ``parse``, ``analyze``, ``transform``,
    ``optimize`` — so closing time is visible on the same timeline as
    the search it feeds.
    """
    if spec is None:
        spec = ClosingSpec.make(
            env_params=env_params,
            env_channels=env_channels,
            env_shared=env_shared,
            object_bindings=object_bindings,
        )
    elif env_params or env_channels or env_shared or object_bindings:
        raise ValueError("pass either a ClosingSpec or keyword arguments, not both")

    if isinstance(source, str):
        if tracer is None:
            source = parse_program(source)
        else:
            with tracer.phase("parse"):
                source = parse_program(source)
    if isinstance(source, ast.Program):
        cfgs = build_cfgs(source)
    else:
        cfgs = dict(source)

    started = time.perf_counter()
    if tracer is None:
        analysis = analyze_for_closing(cfgs, spec)
        closed_cfgs, stats = transform_program(analysis)
    else:
        with tracer.phase("analyze", procs=len(cfgs)):
            analysis = analyze_for_closing(cfgs, spec)
        with tracer.phase("transform", procs=len(cfgs)):
            closed_cfgs, stats = transform_program(analysis, tracer=tracer)
    elapsed = time.perf_counter() - started
    closed = ClosedProgram(
        cfgs=closed_cfgs,
        analysis=analysis,
        proc_stats=stats,
        elapsed_seconds=elapsed,
    )
    if optimize:
        if tracer is None:
            optimized = closed.optimize()
        else:
            with tracer.phase("optimize"):
                optimized = closed.optimize()
        optimized.elapsed_seconds = time.perf_counter() - started
        return optimized
    return closed
