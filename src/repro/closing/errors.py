"""Errors raised by the closing transformation."""

from __future__ import annotations


class ClosingError(Exception):
    """The program violates an assumption of the closing algorithm.

    The main instance: performing a communication-object operation on an
    *environment-dependent* object (e.g. ``send(channels[input], v)``).
    The paper's model identifies operations by the object they act on;
    when the environment chooses the object, the interface cannot be
    eliminated without changing the synchronization structure, so we
    refuse rather than close unsoundly.
    """
