"""Redundant-VS_toss elimination (the Section 5 branching post-pass).

"One can also discuss the optimality of the branching structure of the
generated program.  For instance, sequences of VS_toss that result in
the same sequences of marked nodes are redundant, and could thus be
eliminated."

This optional pass implements that idea.  It computes a bisimulation
partition of the closed graph's nodes (partition refinement: nodes are
equivalent when they carry the same statement and their guarded
successors fall into equivalent classes — toss successors compared as a
*set*, since toss indices carry no meaning) and then:

* rewires every ``TOSS`` node to branch over one representative per
  *distinct* successor class, shrinking its bound;
* bypasses a ``TOSS`` whose successors are all equivalent — the choice
  was entirely redundant.

The pass never merges or deletes non-toss nodes, so every visible
operation stays put; it only removes choice points that provably cannot
influence the sequence of marked nodes executed.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..cfg.graph import ControlFlowGraph, copy_cfg
from ..cfg.nodes import NodeKind, TossGuard


@dataclass
class MinimizeStats:
    proc: str
    toss_removed: int = 0
    toss_narrowed: int = 0
    branches_removed: int = 0


def bisimulation_classes(cfg: ControlFlowGraph) -> dict[int, int]:
    """Partition-refinement bisimulation over the CFG.

    Returns node id -> class id.  Initial classes group nodes by their
    statement text; refinement splits classes whose members' guarded
    successors disagree (toss successors as a set).
    """
    labels: dict[int, str] = {
        node.id: f"{node.kind.value}:{node.describe()}" for node in cfg
    }
    # Initial partition by label.
    classes: dict[int, int] = {}
    index: dict[str, int] = {}
    for node_id, label in labels.items():
        classes[node_id] = index.setdefault(label, len(index))

    while True:
        signatures: dict[int, tuple] = {}
        for node in cfg:
            if node.kind is NodeKind.TOSS:
                succ = frozenset(classes[a.dst] for a in cfg.successors(node.id))
                signatures[node.id] = (classes[node.id], "set", succ)
            else:
                succ_list = tuple(
                    sorted(
                        (arc.guard.describe(), classes[arc.dst])
                        for arc in cfg.successors(node.id)
                    )
                )
                signatures[node.id] = (classes[node.id], "seq", succ_list)
        new_index: dict[tuple, int] = {}
        new_classes = {
            node_id: new_index.setdefault(sig, len(new_index))
            for node_id, sig in signatures.items()
        }
        if len(new_index) == len(set(classes.values())):
            return new_classes
        classes = new_classes


def eliminate_redundant_toss(cfg: ControlFlowGraph) -> tuple[ControlFlowGraph, MinimizeStats]:
    """Return a copy of ``cfg`` with redundant toss branching removed."""
    out = copy_cfg(cfg)
    stats = MinimizeStats(proc=cfg.proc_name)
    changed = True
    while changed:
        changed = False
        classes = bisimulation_classes(out)
        for node in list(out):
            if node.kind is not NodeKind.TOSS:
                continue
            arcs = sorted(out.successors(node.id), key=lambda a: a.guard.value)
            seen: dict[int, int] = {}  # class -> representative dst
            for arc in arcs:
                seen.setdefault(classes[arc.dst], arc.dst)
            if len(seen) == len(arcs):
                continue  # every branch is distinguishable
            changed = True
            stats.branches_removed += len(arcs) - len(seen)
            targets = list(seen.values())
            if len(targets) == 1:
                # Fully redundant choice: splice the toss node out.
                incoming = list(out.predecessors(node.id))
                for arc in incoming:
                    out.add_arc(arc.src, targets[0], arc.guard)
                dead = {
                    a for a in out.arcs if a.src == node.id or a.dst == node.id
                }
                out.arcs = [a for a in out.arcs if a not in dead]
                del out.nodes[node.id]
                del out._succ[node.id]
                del out._pred[node.id]
                for nid in out.nodes:
                    out._succ[nid] = [a for a in out._succ[nid] if a not in dead]
                    out._pred[nid] = [a for a in out._pred[nid] if a not in dead]
                stats.toss_removed += 1
            else:
                # Narrow the toss to the distinct continuations.
                dead = set(out.successors(node.id))
                out.arcs = [a for a in out.arcs if a not in dead]
                out._succ[node.id] = []
                for nid in out.nodes:
                    out._pred[nid] = [a for a in out._pred[nid] if a not in dead]
                node.bound = len(targets) - 1
                for i, dst in enumerate(targets):
                    out.add_arc(node.id, dst, TossGuard(i))
                stats.toss_narrowed += 1
            break  # graph changed: recompute classes before continuing
    out.prune_unreachable()
    out.validate()
    return out, stats


def eliminate_redundant_toss_program(
    cfgs: dict[str, ControlFlowGraph],
) -> tuple[dict[str, ControlFlowGraph], dict[str, MinimizeStats]]:
    """Run the pass over every procedure of a (closed) program."""
    out: dict[str, ControlFlowGraph] = {}
    stats: dict[str, MinimizeStats] = {}
    for proc, cfg in cfgs.items():
        out[proc], stats[proc] = eliminate_redundant_toss(cfg)
    return out, stats
