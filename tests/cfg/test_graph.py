"""Tests for the ControlFlowGraph container itself."""

import pytest

from repro.cfg import (
    ALWAYS,
    BoolGuard,
    CfgError,
    ControlFlowGraph,
    NodeKind,
    TossGuard,
    copy_cfg,
)
from repro.lang import ast


def linear_cfg():
    cfg = ControlFlowGraph(proc_name="p")
    start = cfg.new_node(NodeKind.START)
    assign = cfg.new_node(
        NodeKind.ASSIGN, target=ast.Name("x"), value=ast.IntLit(1)
    )
    ret = cfg.new_node(NodeKind.RETURN)
    cfg.add_arc(start.id, assign.id, ALWAYS)
    cfg.add_arc(assign.id, ret.id, ALWAYS)
    return cfg


class TestConstruction:
    def test_ids_are_unique_and_sequential(self):
        cfg = linear_cfg()
        assert sorted(cfg.nodes) == [0, 1, 2]

    def test_duplicate_start_rejected(self):
        cfg = ControlFlowGraph(proc_name="p")
        cfg.new_node(NodeKind.START)
        with pytest.raises(CfgError):
            cfg.new_node(NodeKind.START)

    def test_arc_to_missing_node_rejected(self):
        cfg = ControlFlowGraph(proc_name="p")
        start = cfg.new_node(NodeKind.START)
        with pytest.raises(CfgError):
            cfg.add_arc(start.id, 99, ALWAYS)

    def test_adjacency(self):
        cfg = linear_cfg()
        assert [a.dst for a in cfg.successors(0)] == [1]
        assert [a.src for a in cfg.predecessors(2)] == [1]


class TestValidation:
    def test_valid_linear_graph(self):
        linear_cfg().validate()

    def test_missing_start(self):
        cfg = ControlFlowGraph(proc_name="p")
        cfg.new_node(NodeKind.RETURN)
        with pytest.raises(CfgError):
            cfg.validate()

    def test_terminal_with_out_arc_rejected(self):
        cfg = ControlFlowGraph(proc_name="p")
        start = cfg.new_node(NodeKind.START)
        ret = cfg.new_node(NodeKind.RETURN)
        cfg.add_arc(start.id, ret.id, ALWAYS)
        cfg.add_arc(ret.id, start.id, ALWAYS)
        with pytest.raises(CfgError):
            cfg.validate()

    def test_nonterminal_without_out_arc_rejected(self):
        cfg = ControlFlowGraph(proc_name="p")
        start = cfg.new_node(NodeKind.START)
        assign = cfg.new_node(NodeKind.ASSIGN, target=ast.Name("x"), value=ast.IntLit(0))
        cfg.add_arc(start.id, assign.id, ALWAYS)
        with pytest.raises(CfgError):
            cfg.validate()

    def test_cond_must_cover_both_branches(self):
        cfg = ControlFlowGraph(proc_name="p")
        start = cfg.new_node(NodeKind.START)
        cond = cfg.new_node(NodeKind.COND, expr=ast.BoolLit(True))
        ret = cfg.new_node(NodeKind.RETURN)
        cfg.add_arc(start.id, cond.id, ALWAYS)
        cfg.add_arc(cond.id, ret.id, BoolGuard(True))
        with pytest.raises(CfgError):
            cfg.validate()

    def test_toss_guards_must_cover_range(self):
        cfg = ControlFlowGraph(proc_name="p")
        start = cfg.new_node(NodeKind.START)
        toss = cfg.new_node(NodeKind.TOSS, bound=1)
        ret = cfg.new_node(NodeKind.RETURN)
        cfg.add_arc(start.id, toss.id, ALWAYS)
        cfg.add_arc(toss.id, ret.id, TossGuard(0))
        with pytest.raises(CfgError):
            cfg.validate()
        cfg.add_arc(toss.id, ret.id, TossGuard(1))
        cfg.validate()

    def test_start_with_incoming_rejected(self):
        cfg = ControlFlowGraph(proc_name="p")
        start = cfg.new_node(NodeKind.START)
        assign = cfg.new_node(NodeKind.ASSIGN, target=ast.Name("x"), value=ast.IntLit(0))
        cfg.add_arc(start.id, assign.id, ALWAYS)
        cfg.add_arc(assign.id, start.id, ALWAYS)
        with pytest.raises(CfgError):
            cfg.validate()


class TestQueries:
    def test_reachable_from_start(self):
        cfg = linear_cfg()
        orphan = cfg.new_node(NodeKind.ASSIGN, target=ast.Name("z"), value=ast.IntLit(0))
        assert orphan.id not in cfg.reachable_from_start()
        assert cfg.start_id in cfg.reachable_from_start()

    def test_prune_unreachable(self):
        cfg = linear_cfg()
        orphan = cfg.new_node(NodeKind.ASSIGN, target=ast.Name("z"), value=ast.IntLit(0))
        removed = cfg.prune_unreachable()
        assert removed == 1
        assert orphan.id not in cfg.nodes
        cfg.validate()

    def test_nodes_of_kind(self):
        cfg = linear_cfg()
        assert len(cfg.nodes_of_kind(NodeKind.ASSIGN)) == 1
        assert len(cfg.nodes_of_kind(NodeKind.ASSIGN, NodeKind.RETURN)) == 2


class TestCopy:
    def test_copy_is_deep_for_structure(self):
        cfg = linear_cfg()
        clone = copy_cfg(cfg)
        clone.nodes[1].value = ast.IntLit(99)
        assert cfg.nodes[1].value.value == 1

    def test_copy_preserves_arcs_and_start(self):
        cfg = linear_cfg()
        clone = copy_cfg(cfg)
        assert clone.start_id == cfg.start_id
        assert [(a.src, a.dst) for a in clone.arcs] == [(a.src, a.dst) for a in cfg.arcs]
        clone.validate()

    def test_copy_allows_extension(self):
        cfg = linear_cfg()
        clone = copy_cfg(cfg)
        extra = clone.new_node(NodeKind.EXIT)
        assert extra.id not in cfg.nodes
