"""Unit tests for CFG node and guard descriptions."""


from repro.cfg import (
    ALWAYS,
    AlwaysGuard,
    BoolGuard,
    CaseGuard,
    DefaultGuard,
    NodeKind,
    TossGuard,
)
from repro.cfg.nodes import Arc, CfgNode
from repro.lang import ast


class TestGuardDescriptions:
    def test_always(self):
        assert ALWAYS.describe() == "always"
        assert AlwaysGuard() == ALWAYS  # frozen dataclass equality

    def test_bool(self):
        assert BoolGuard(True).describe() == "true"
        assert BoolGuard(False).describe() == "false"

    def test_case(self):
        assert CaseGuard(3).describe() == "case 3"
        assert CaseGuard("tag").describe() == "case 'tag'"

    def test_default(self):
        assert DefaultGuard().describe() == "default"

    def test_toss(self):
        assert TossGuard(2).describe() == "toss == 2"

    def test_guards_hashable(self):
        {ALWAYS, BoolGuard(True), CaseGuard(1), DefaultGuard(), TossGuard(0)}


class TestNodeDescriptions:
    def test_start(self):
        assert CfgNode(0, NodeKind.START).describe() == "start"

    def test_assign(self):
        node = CfgNode(
            1, NodeKind.ASSIGN, target=ast.Name("x"), value=ast.IntLit(5)
        )
        assert node.describe() == "x = 5"

    def test_array_decl(self):
        node = CfgNode(1, NodeKind.ASSIGN, target=ast.Name("a"), array_size=4)
        assert node.describe() == "a = new_array(4)"

    def test_cond(self):
        node = CfgNode(
            2,
            NodeKind.COND,
            expr=ast.Binary("<", ast.Name("i"), ast.IntLit(10)),
        )
        assert node.describe() == "cond i < 10"

    def test_call_with_result(self):
        node = CfgNode(
            3,
            NodeKind.CALL,
            callee="recv",
            args=(ast.StrLit("box"),),
            result=ast.Name("v"),
        )
        assert node.describe() == "v = recv('box')"

    def test_call_without_result(self):
        node = CfgNode(3, NodeKind.CALL, callee="sem_v", args=(ast.StrLit("s"),))
        assert node.describe() == "sem_v('s')"

    def test_return_variants(self):
        assert CfgNode(4, NodeKind.RETURN).describe() == "return"
        assert (
            CfgNode(4, NodeKind.RETURN, value=ast.Name("x")).describe() == "return x"
        )

    def test_exit(self):
        assert CfgNode(5, NodeKind.EXIT).describe() == "exit"

    def test_toss(self):
        assert CfgNode(6, NodeKind.TOSS, bound=3).describe() == "cond VS_toss(3)"


class TestArc:
    def test_describe(self):
        arc = Arc(1, 2, BoolGuard(True))
        assert arc.describe() == "1 -[true]-> 2"
