"""Tests for CFG construction."""

import pytest

from repro.cfg import (
    BoolGuard,
    CaseGuard,
    CfgError,
    DefaultGuard,
    NodeKind,
    build_cfgs,
)
from repro.lang.parser import parse_program


def cfg_of(source, proc="main"):
    return build_cfgs(parse_program(source))[proc]


def kinds(cfg):
    counts = {}
    for node in cfg:
        counts[node.kind] = counts.get(node.kind, 0) + 1
    return counts


class TestStraightLine:
    def test_empty_proc(self):
        cfg = cfg_of("proc main() { }")
        # START -> implicit RETURN
        assert kinds(cfg) == {NodeKind.START: 1, NodeKind.RETURN: 1}
        assert cfg.arc_count() == 1

    def test_sequence_of_assignments(self):
        cfg = cfg_of("proc main() { var a = 1; var b = 2; a = b; }")
        assert kinds(cfg)[NodeKind.ASSIGN] == 3
        cfg.validate()

    def test_skip_produces_no_node(self):
        cfg = cfg_of("proc main() { skip; skip; }")
        assert kinds(cfg) == {NodeKind.START: 1, NodeKind.RETURN: 1}

    def test_explicit_return_no_implicit_one(self):
        cfg = cfg_of("proc main() { return; }")
        assert kinds(cfg)[NodeKind.RETURN] == 1

    def test_exit_node(self):
        cfg = cfg_of("proc main() { exit; }")
        assert kinds(cfg)[NodeKind.EXIT] == 1
        assert NodeKind.RETURN not in kinds(cfg)

    def test_dead_code_after_return_dropped(self):
        cfg = cfg_of("proc main() { return; var a = 1; }")
        assert NodeKind.ASSIGN not in kinds(cfg)


class TestConditionals:
    def test_if_has_true_and_false_arcs(self):
        cfg = cfg_of("proc main(x) { if (x == 1) { var a = 1; } }")
        cond = cfg.nodes_of_kind(NodeKind.COND)[0]
        guards = {arc.guard for arc in cfg.successors(cond.id)}
        assert guards == {BoolGuard(True), BoolGuard(False)}

    def test_if_else_merge(self):
        cfg = cfg_of(
            "proc main(x) { if (x == 1) { var a = 1; } else { var b = 2; } var c = 3; }"
        )
        # both branch assignments flow into the same join assignment
        join = next(
            n
            for n in cfg.nodes_of_kind(NodeKind.ASSIGN)
            if n.target.ident == "c"
        )
        assert len(cfg.predecessors(join.id)) == 2

    def test_both_branches_return(self):
        cfg = cfg_of(
            "proc main(x) { if (x == 1) { return; } else { return; } }"
        )
        assert kinds(cfg)[NodeKind.RETURN] == 2

    def test_switch_guards(self):
        cfg = cfg_of(
            """
            proc main(x) {
                switch (x) {
                case 1: var a = 1;
                case 'msg': var b = 2;
                default: var c = 3;
                }
            }
            """
        )
        cond = cfg.nodes_of_kind(NodeKind.COND)[0]
        guards = [arc.guard for arc in cfg.successors(cond.id)]
        case_values = {g.value for g in guards if isinstance(g, CaseGuard)}
        assert case_values == {1, "msg"}
        assert sum(isinstance(g, DefaultGuard) for g in guards) == 1

    def test_switch_without_default_still_has_default_arc(self):
        cfg = cfg_of("proc main(x) { switch (x) { case 1: var a = 1; } var z = 0; }")
        cond = cfg.nodes_of_kind(NodeKind.COND)[0]
        guards = [arc.guard for arc in cfg.successors(cond.id)]
        assert any(isinstance(g, DefaultGuard) for g in guards)


class TestLoops:
    def test_while_loop_back_arc(self):
        cfg = cfg_of("proc main() { var i = 0; while (i < 3) { i = i + 1; } }")
        cond = cfg.nodes_of_kind(NodeKind.COND)[0]
        incr = next(
            n for n in cfg.nodes_of_kind(NodeKind.ASSIGN) if n.describe() == "i = i + 1"
        )
        assert any(arc.dst == cond.id for arc in cfg.successors(incr.id))

    def test_break_exits_loop(self):
        cfg = cfg_of(
            "proc main() { while (true) { break; } var a = 1; }"
        )
        cond = cfg.nodes_of_kind(NodeKind.COND)[0]
        after = next(n for n in cfg.nodes_of_kind(NodeKind.ASSIGN))
        preds = {arc.src for arc in cfg.predecessors(after.id)}
        assert cond.id in preds  # via break edge or false edge

    def test_continue_targets_loop_head(self):
        cfg = cfg_of(
            """
            proc main() {
                var i = 0;
                while (i < 5) {
                    i = i + 1;
                    if (i == 2) { continue; }
                    send(out, i);
                }
            }
            """
        )
        # the loop-head COND must have >= 3 predecessors: init, loop end,
        # and the continue
        head = cfg.nodes_of_kind(NodeKind.COND)[0]
        assert len(cfg.predecessors(head.id)) >= 3

    def test_nested_loop_break_binds_inner(self):
        cfg = cfg_of(
            """
            proc main() {
                var i = 0;
                while (i < 2) {
                    while (true) { break; }
                    i = i + 1;
                }
            }
            """
        )
        cfg.validate()

    def test_infinite_loop_keeps_syntactic_exit(self):
        cfg = cfg_of("proc main() { while (true) { var x = 1; } }")
        # Guards are not constant-folded: the false branch exists
        # syntactically (out-arc guards must be exhaustive), so the
        # implicit return is still built.
        assert kinds(cfg)[NodeKind.RETURN] == 1
        cfg.validate()


class TestCalls:
    def test_call_node_payload(self):
        cfg = cfg_of("proc main() { var r; r = f(1, 2); } proc f(a, b) { return a; }")
        call = cfg.nodes_of_kind(NodeKind.CALL)[0]
        assert call.callee == "f"
        assert len(call.args) == 2
        assert call.result is not None

    def test_builtin_call_node(self):
        cfg = cfg_of("proc main() { send(box, 1); }")
        call = cfg.nodes_of_kind(NodeKind.CALL)[0]
        assert call.callee == "send"


class TestValidation:
    def test_validate_passes_on_all_samples(self):
        for source in [
            "proc main() { }",
            "proc main(x) { if (x == 1) { return; } }",
            "proc main() { var i = 0; while (i < 3) { i = i + 1; } }",
            "proc main(x) { switch (x) { case 1: skip; default: skip; } }",
        ]:
            cfg_of(source).validate()

    def test_break_outside_loop_rejected(self):
        with pytest.raises(CfgError):
            cfg_of("proc main() { break; }")

    def test_continue_outside_loop_rejected(self):
        with pytest.raises(CfgError):
            cfg_of("proc main() { continue; }")

    def test_max_out_degree(self):
        cfg = cfg_of(
            """
            proc main(x) {
                switch (x) {
                case 1: skip;
                case 2: skip;
                case 3: skip;
                default: skip;
                }
            }
            """
        )
        assert cfg.max_out_degree() == 4

    def test_start_has_no_predecessors(self):
        cfg = cfg_of("proc main() { var i = 0; while (true) { i = i + 1; } }")
        assert cfg.predecessors(cfg.start_id) == []
