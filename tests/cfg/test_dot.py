"""Tests for DOT export."""

from repro.cfg import build_cfgs, to_dot
from repro.lang.parser import parse_program


def cfg_of(source, proc="main"):
    return build_cfgs(parse_program(source))[proc]


def test_dot_contains_all_nodes_and_arcs():
    cfg = cfg_of("proc main(x) { if (x == 1) { send(out, 1); } }")
    dot = to_dot(cfg)
    for node in cfg:
        assert f"n{node.id} [" in dot
    assert dot.count("->") == cfg.arc_count()


def test_dot_guard_labels_present():
    cfg = cfg_of("proc main(x) { if (x == 1) { send(out, 1); } }")
    dot = to_dot(cfg)
    assert 'label="true"' in dot
    assert 'label="false"' in dot


def test_dot_highlight():
    from repro.cfg import NodeKind

    cfg = cfg_of("proc main() { var a = 1; }")
    assign = cfg.nodes_of_kind(NodeKind.ASSIGN)[0]
    dot = to_dot(cfg, highlight={assign.id})
    assert "fillcolor" in dot


def test_dot_escapes_quotes():
    cfg = cfg_of("proc main() { send(out, 'a\"b'); }")
    dot = to_dot(cfg)
    assert '\\"' in dot
