"""Tests for explorer work budgets, state counting options, and the
behaviour-matching utilities."""


from tests.helpers import dfs_search
from repro import System
from repro.runtime.values import TOP
from repro.verisoft import (
    behavior_inclusion,
    collect_output_traces,
    matches_with_erasure,
    missing_behaviors,
)


def toss_system(bound=9):
    system = System(
        f"proc main() {{ var t; t = VS_toss({bound}); send(out, t); }}"
    )
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


class TestBudgets:
    def test_max_transitions(self):
        report = dfs_search(toss_system(), max_depth=10, max_transitions=4, por=False)
        assert report.truncated
        assert report.transitions_executed <= 5

    def test_max_seconds_zero_truncates(self):
        from repro.verisoft import Explorer

        report = Explorer(toss_system(), max_depth=10, max_seconds=0.0, por=False).run()
        assert report.truncated
        assert report.paths_explored >= 1

    def test_stop_when_predicate(self):
        calls = []

        def predicate(r):
            calls.append(r.paths_explored)
            return r.paths_explored >= 2

        report = dfs_search(toss_system(), max_depth=10, stop_when=predicate, por=False)
        assert report.paths_explored == 2
        assert calls

    def test_unbudgeted_run_completes(self):
        report = dfs_search(toss_system(3), max_depth=10, por=False)
        assert not report.truncated
        assert report.paths_explored == 4


class TestStateCounting:
    def _two_senders(self, visible_sink):
        system = System("proc sender(tag) { send(out, tag); }")
        system.add_env_sink("out", visible_in_state=visible_sink)
        system.add_process("a", "sender", [1])
        system.add_process("b", "sender", [2])
        return system

    def test_sink_hidden_by_default_merges_states(self):
        hidden = dfs_search(
            self._two_senders(False), max_depth=10, por=False, count_states=True
        )
        visible = dfs_search(
            self._two_senders(True), max_depth=10, por=False, count_states=True
        )
        # With the sink outputs in the fingerprint, interleavings stay
        # distinguishable; hidden, the final states merge.
        assert visible.distinct_states > hidden.distinct_states

    def test_distinct_at_most_visited(self):
        report = dfs_search(toss_system(), max_depth=10, por=False, count_states=True)
        assert report.distinct_states <= report.states_visited


class TestBehaviorMatching:
    def test_exact_match(self):
        assert matches_with_erasure((1, "a"), (1, "a"))

    def test_length_mismatch(self):
        assert not matches_with_erasure((1,), (1, 2))

    def test_top_matches_anything(self):
        assert matches_with_erasure((TOP, 2), (999, 2))
        assert matches_with_erasure((TOP,), ("string",))

    def test_top_on_open_side_does_not_wildcard(self):
        assert not matches_with_erasure((1,), (TOP,))

    def test_inclusion(self):
        open_traces = {(1,), (2,)}
        closed_traces = {(TOP,)}
        assert behavior_inclusion(open_traces, closed_traces)

    def test_inclusion_failure_reported(self):
        open_traces = {(1,), (2, 3)}
        closed_traces = {(1,)}
        assert not behavior_inclusion(open_traces, closed_traces)
        assert missing_behaviors(open_traces, closed_traces) == [(2, 3)]

    def test_collect_output_traces_respects_max_paths(self):
        traces = collect_output_traces(toss_system(), "out", max_depth=10, max_paths=3)
        assert len(traces) == 3
