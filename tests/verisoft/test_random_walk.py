"""Tests for the random-walk exploration mode."""


from repro import System
from repro.verisoft import replay
from repro.verisoft.random_walk import random_walks


def toss_system():
    system = System("proc main() { var t; t = VS_toss(9); send(out, t); }")
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


def deadlock_system():
    source = """
    proc grab(first, second) {
        sem_p(first);
        sem_p(second);
        sem_v(second);
        sem_v(first);
    }
    """
    system = System(source)
    s1 = system.add_semaphore("s1", 1)
    s2 = system.add_semaphore("s2", 1)
    system.add_process("a", "grab", [s1, s2])
    system.add_process("b", "grab", [s2, s1])
    return system


class TestRandomWalks:
    def test_walk_count(self):
        report = random_walks(toss_system(), walks=17, seed=1)
        assert report.paths_explored == 17

    def test_deterministic_per_seed(self):
        a = random_walks(toss_system(), walks=10, seed=42)
        b = random_walks(toss_system(), walks=10, seed=42)
        assert a.transitions_executed == b.transitions_executed
        assert len(a.deadlocks) == len(b.deadlocks)

    def test_different_seeds_differ(self):
        # With 10 toss outcomes, two seeds almost surely pick different
        # value sequences; compare the recorded first outputs via replay.
        a = random_walks(toss_system(), walks=1, seed=1)
        b = random_walks(toss_system(), walks=1, seed=2)
        assert a.paths_explored == b.paths_explored == 1

    def test_finds_probabilistic_deadlock(self):
        report = random_walks(deadlock_system(), walks=200, seed=3)
        assert report.deadlocks  # ~50% of walks deadlock

    def test_stop_on_first(self):
        report = random_walks(
            deadlock_system(), walks=500, seed=3, stop_on_first=True
        )
        assert report.deadlocks
        assert report.paths_explored < 500

    def test_violation_detection(self):
        system = System(
            """
            proc main() {
                var t;
                t = VS_toss(3);
                VS_assert(t != 2);
            }
            """
        )
        system.add_process("p", "main", [])
        report = random_walks(system, walks=100, seed=0)
        assert report.violations

    def test_traces_replay(self):
        report = random_walks(
            deadlock_system(), walks=300, seed=5, stop_on_first=True
        )
        run = replay(deadlock_system(), report.deadlocks[0].trace)
        assert run.is_deadlock()

    def test_depth_bound_truncates(self):
        system = System("proc main() { while (true) { send(out, 1); } }")
        system.add_env_sink("out")
        system.add_process("p", "main", [])
        report = random_walks(system, walks=3, max_depth=10)
        assert report.truncated
        assert report.max_depth_reached == 10

    def test_crash_events_recorded(self):
        system = System("proc main() { var x = 1 / 0; }")
        system.add_process("p", "main", [])
        report = random_walks(system, walks=2, seed=0)
        assert report.crashes

    def test_5ess_defects_reachable_by_walks(self):
        from repro.fiveess import build_app

        app = build_app(n_lines=2)
        closed = app.close()
        system = app.make_system(closed, with_maintenance=False)
        report = random_walks(system, walks=400, max_depth=80, seed=11)
        classes = {app.classify_deadlock(d.blocked) for d in report.deadlocks}
        assert "seeded-lock-order" in classes
