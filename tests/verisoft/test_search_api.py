"""Tests for the unified search API (SearchOptions + run_search)."""

import pytest

import repro
from tests.helpers import dfs_search
from repro import SearchOptions, System, run_search
from repro.verisoft import STRATEGIES, replay
from repro.verisoft.random_walk import random_walks


def toss_system(bound=3):
    system = System(
        f"proc main() {{ var t; t = VS_toss({bound}); send(out, t); }}"
    )
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


def deadlock_system():
    src = """
    proc main() {
        recv(never);
    }
    """
    system = System(src)
    system.add_channel("never", capacity=1)
    system.add_process("p", "main", [])
    return system


class TestDispatch:
    def test_default_strategy_is_dfs(self):
        report = run_search(toss_system())
        assert report.stats.strategy == "dfs"
        assert report.paths_explored == 4

    def test_dfs_matches_direct_explorer(self):
        from repro.verisoft import Explorer

        assert (
            run_search(toss_system(), SearchOptions(strategy="dfs")).summary()
            == Explorer(toss_system()).run().summary()
        )

    def test_random_matches_internal_random_walks(self):
        via_api = run_search(
            toss_system(9), SearchOptions(strategy="random", walks=11, seed=42)
        )
        legacy = random_walks(toss_system(9), walks=11, seed=42)
        assert via_api.summary() == legacy.summary()

    def test_parallel_strategy_dispatches(self):
        report = run_search(
            toss_system(9), SearchOptions(strategy="parallel", jobs=1)
        )
        assert report.stats.strategy == "parallel"
        assert report.summary() == dfs_search(toss_system(9)).summary()

    def test_keyword_overrides(self):
        report = run_search(toss_system(9), max_paths=2)
        assert report.paths_explored == 2
        assert report.truncated

    def test_overrides_do_not_mutate_options(self):
        options = SearchOptions()
        run_search(toss_system(), options, max_paths=1)
        assert options.max_paths is None


class TestProvenance:
    """run_search records how a report was produced (deliverable: seed
    and options inside the report, for trace-file search metadata)."""

    def test_options_recorded_on_report(self):
        options = SearchOptions(strategy="dfs", max_depth=17)
        report = run_search(toss_system(), options)
        assert report.options is options
        assert report.options.as_dict()["max_depth"] == 17

    def test_seed_recorded_for_random(self):
        report = run_search(
            toss_system(), SearchOptions(strategy="random", walks=5, seed=42)
        )
        assert report.seed == 42

    def test_seed_none_for_dfs(self):
        assert run_search(toss_system()).seed is None

    def test_options_recorded_for_parallel(self):
        report = run_search(
            toss_system(), SearchOptions(strategy="parallel", jobs=1)
        )
        assert report.options is not None
        assert report.options.strategy == "parallel"

    def test_as_dict_omits_callbacks(self):
        options = SearchOptions(stop_when=lambda r: True)
        payload = options.as_dict()
        assert "stop_when" not in payload
        assert "on_leaf" not in payload
        assert "progress" not in payload


class TestValidation:
    def test_unknown_strategy_rejected(self):
        with pytest.raises(ValueError, match="unknown search strategy"):
            run_search(toss_system(), SearchOptions(strategy="bfs"))

    def test_strategies_constant(self):
        assert set(STRATEGIES) == {"dfs", "random", "parallel"}

    def test_parallel_rejects_callbacks(self):
        with pytest.raises(ValueError, match="cannot cross process"):
            run_search(
                toss_system(),
                SearchOptions(strategy="parallel", stop_when=lambda r: True),
            )

    def test_bad_depth_rejected(self):
        with pytest.raises(ValueError, match="max_depth"):
            run_search(toss_system(), SearchOptions(max_depth=0))

    def test_negative_jobs_rejected(self):
        with pytest.raises(ValueError, match="jobs"):
            run_search(toss_system(), SearchOptions(strategy="parallel", jobs=-1))


class TestTimeBudget:
    def test_zero_budget_marks_incomplete(self):
        report = run_search(toss_system(9), SearchOptions(time_budget=0.0))
        assert report.incomplete
        assert report.truncated
        assert "INCOMPLETE" in report.summary()

    def test_generous_budget_completes(self):
        report = run_search(toss_system(3), SearchOptions(time_budget=60.0))
        assert not report.incomplete
        assert not report.truncated
        assert report.paths_explored == 4

    def test_budget_checked_within_a_path(self):
        # max_seconds was only checked between paths; time_budget must
        # interrupt even the first execution.
        report = run_search(
            toss_system(9), SearchOptions(time_budget=0.0, max_depth=50)
        )
        assert report.paths_explored == 1
        assert report.incomplete

    def test_explorer_max_seconds_still_truncates_without_incomplete(self):
        from repro.verisoft import Explorer

        report = Explorer(toss_system(9), max_seconds=0.0, por=False).run()
        assert report.truncated
        assert not report.incomplete


class TestExports:
    def test_machinery_names_still_exported(self):
        for name in ("replay", "Explorer", "collect_output_traces"):
            assert hasattr(repro, name) or hasattr(repro.verisoft, name)

    def test_legacy_wrappers_are_gone(self):
        # Removed after a five-release deprecation: the unified
        # run_search() / `repro search` front end replaces them.
        assert not hasattr(repro, "explore")
        assert not hasattr(repro, "random_walks")
        assert "explore" not in repro.__all__
        assert "random_walks" not in repro.__all__

    def test_new_names_reexported_from_top_level(self):
        for name in (
            "run_search",
            "SearchOptions",
            "SearchStats",
            "ProgressPrinter",
            "parallel_search",
        ):
            assert name in repro.__all__
            assert hasattr(repro, name)

    def test_replay_wrapper_roundtrip(self):
        system = deadlock_system()
        report = run_search(system, SearchOptions(max_depth=10))
        assert report.deadlocks
        run = replay(deadlock_system(), report.deadlocks[0].trace)
        assert not run.enabled_processes()
