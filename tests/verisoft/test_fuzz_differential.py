"""Differential fuzzing of the incremental-fingerprint hot loop.

Seeded random closed systems — two processes over a random mix of
channels, semaphores, shared variables and ``VS_toss`` points — are
driven in **lockstep** under every execution/fingerprint configuration,
and the configurations must agree exactly:

* **Engine lockstep** (:class:`TestEngineFingerprintLockstep`): a walk
  run and a compiled run of the same system take the same schedule; the
  canonical state key (incremental fingerprints) must be bit-identical
  between the engines, equal to the full-recompute oracle
  (:func:`repro.statespace.snapshot.snapshot`), and must survive
  random checkpoint/restore (LIFO discipline) — after every single
  transition, toss answer and restore.
* **Search-config lockstep** (:class:`TestSearchConfigLockstep`): the
  exhaustive bounded DFS under walk/replay, walk/restore,
  compiled/replay and compiled/restore must produce identical counters
  *and identical fingerprint sets* — not just equal counts.
* **Crash recovery** (:class:`TestKilledWorkerFuzz`, slow): the same
  randomized systems searched by the work-stealing scheduler with a
  worker SIGKILLed mid-subtree; the re-queued lease must restore the
  exact sequential report, distinct-state fingerprint count included.

The generator emits only bounded loops (no divergence) and avoids
pointers, so every generated system is journalable and compilable and
the incremental fingerprint path (not the pointer-gated fallback) is
the one under test.
"""

from __future__ import annotations

import random

import pytest

from repro import SearchOptions, System, run_search
from repro.service import work_stealing_search
from repro.statespace.snapshot import snapshot
from repro.runtime.fingerprint import decode_canonical
from repro.verisoft.explorer import Explorer

from tests.service.conftest import assert_report_parity

# ---------------------------------------------------------------------------
# Random closed-system generator
# ---------------------------------------------------------------------------

#: Statement templates; ``{v}`` is a scratch variable, ``{i}`` the loop
#: counter of the innermost bounded loop.
_SIMPLE = [
    "send(out, {v});",
    "send(out, {v} + {k});",
    "{v} = {v} + {k};",
    "{v} = VS_toss({t});",
    "write(g, {v});",
    "{v} = read(g);",
    "sem_v(s);",
    "VS_assert({v} < 90);",
]

#: Potentially-blocking statements (channels/semaphores) — kept rarer so
#: most generated schedules make progress on both processes.
_BLOCKING = [
    "send(ch, {v});",
    "{v} = recv(ch);",
    "sem_p(s);",
]


def _statements(rng: random.Random, depth: int) -> list[str]:
    out: list[str] = []
    for _ in range(rng.randint(2, 4)):
        roll = rng.random()
        if roll < 0.15 and depth < 2:
            # Bounded loop: always terminates, fans the schedule out.
            bound = rng.randint(1, 2)
            var = f"i{depth}"
            body = " ".join(_statements(rng, depth + 1))
            out.append(
                f"var {var}; {var} = 0; "
                f"while ({var} < {bound}) {{ {body} {var} = {var} + 1; }}"
            )
        elif roll < 0.3 and depth < 2:
            then = " ".join(_statements(rng, depth + 1))
            other = " ".join(_statements(rng, depth + 1))
            out.append(f"if (v % 2 == 0) {{ {then} }} else {{ {other} }}")
        elif roll < 0.45:
            out.append(rng.choice(_BLOCKING).format(v="v", k=rng.randint(0, 5)))
        else:
            out.append(
                rng.choice(_SIMPLE).format(
                    v="v", k=rng.randint(0, 5), t=rng.randint(1, 2)
                )
            )
    return out


def random_system(seed: int) -> System:
    """A seeded random closed two-process system (journalable,
    compilable, divergence-free)."""
    rng = random.Random(seed)
    procs = []
    for index in range(2):
        body = " ".join(_statements(rng, 0))
        procs.append(
            f"proc work{index}(start) {{ var v; v = start; {body} send(out, v); }}"
        )
    system = System("\n".join(procs))
    system.add_env_sink("out")
    system.add_channel("ch", capacity=rng.randint(1, 2))
    system.add_semaphore("s", initial=1)
    system.add_shared("g", initial=0)
    system.add_process("A", "work0", [rng.randint(0, 3)])
    system.add_process("B", "work1", [rng.randint(0, 3)])
    return system


SEEDS = list(range(8))


# ---------------------------------------------------------------------------
# Engine + fingerprint lockstep
# ---------------------------------------------------------------------------


def _check_keys(runs) -> None:
    """All runs must agree on the canonical key, the key must equal the
    full-recompute oracle, and it must decode to the structured
    fingerprint."""
    keys = [run.state_key() for run in runs]
    assert len(set(keys)) == 1, "engines disagree on the canonical state key"
    for run, key in zip(runs, keys):
        assert key == snapshot(run), "incremental key != full recompute"
        assert decode_canonical(key) == run.state_fingerprint()


class TestEngineFingerprintLockstep:
    @pytest.mark.parametrize("seed", SEEDS)
    def test_walk_and_compiled_agree_after_every_step(self, seed):
        rng = random.Random(1000 + seed)
        runs = []
        for engine in ("walk", "compiled"):
            system = random_system(seed)
            assert system.journalable()
            assert system.compiled_program() is not None
            run = system.start(journal=True, engine=engine)
            run.start_processes()
            runs.append(run)
        checkpoints: list[list] = []
        for _ in range(200):
            _check_keys(runs)
            tossing = [run.toss_pending() for run in runs]
            names = {t.name if t is not None else None for t in tossing}
            assert len(names) == 1, "engines disagree on the pending toss"
            if tossing[0] is not None:
                value = rng.randint(0, tossing[0].toss_request.bound)
                for run, process in zip(runs, tossing):
                    run.answer_toss(process, value)
                continue
            enabled = [
                sorted(p.name for p in run.enabled_processes()) for run in runs
            ]
            assert enabled[0] == enabled[1], "engines disagree on enabledness"
            roll = rng.random()
            if checkpoints and (roll < 0.2 or not enabled[0]):
                # Restore both runs to the same checkpoint; LIFO
                # discipline (younger checkpoints die with the rewind).
                index = rng.randrange(len(checkpoints))
                for run, checkpoint in zip(runs, checkpoints[index]):
                    run.restore(checkpoint)
                del checkpoints[index + 1 :]
                _check_keys(runs)
                continue
            if not enabled[0]:
                break
            if roll > 0.8:
                checkpoints.append([run.checkpoint() for run in runs])
            chosen = rng.choice(enabled[0])
            for run in runs:
                run.execute_visible(run.process_map[chosen])


# ---------------------------------------------------------------------------
# Search-configuration lockstep
# ---------------------------------------------------------------------------

CONFIGS = [
    ("walk", "replay"),
    ("walk", "restore"),
    ("compiled", "replay"),
    ("compiled", "restore"),
]

COUNTERS = (
    "states_visited",
    "transitions_executed",
    "toss_points",
    "paths_explored",
)


class TestSearchConfigLockstep:
    @pytest.mark.parametrize("seed", SEEDS[:4])
    def test_all_configs_identical_counters_and_fingerprints(self, seed):
        results = {}
        for engine, backtrack in CONFIGS:
            fingerprints: set = set()
            report = Explorer(
                random_system(seed),
                max_depth=14,
                engine=engine,
                backtrack=backtrack,
                count_states=True,
                fingerprint_set=fingerprints,
                max_transitions=4000,
            ).run()
            results[(engine, backtrack)] = (report, fingerprints)

        base_report, base_fps = results[("walk", "replay")]
        assert base_report.states_visited > 0
        for config, (report, fingerprints) in results.items():
            for counter in COUNTERS:
                assert getattr(report, counter) == getattr(base_report, counter), (
                    config,
                    counter,
                )
            assert len(report.triage()) == len(base_report.triage()), config
            # The strong form: the *sets of canonical fingerprints* are
            # identical, not merely equinumerous.
            assert fingerprints == base_fps, config


# ---------------------------------------------------------------------------
# Crash recovery: SIGKILL mid-subtree, lease re-queued
# ---------------------------------------------------------------------------


@pytest.mark.slow
class TestKilledWorkerFuzz:
    # Seeds chosen for real path fan-out (hundreds / dozens of paths) so
    # the kill always lands mid-subtree with work left to re-queue.
    @pytest.mark.parametrize("seed", [6, 13])
    def test_killed_worker_report_matches_sequential(self, seed):
        base = run_search(
            random_system(seed),
            SearchOptions(strategy="dfs", count_states=True, max_depth=14),
        )
        report = work_stealing_search(
            random_system(seed),
            SearchOptions(
                strategy="parallel",
                scheduler="steal",
                jobs=2,
                count_states=True,
                max_depth=14,
            ),
            kill_worker_after_paths=2,
        )
        assert report.stats.leases_requeued >= 1
        assert_report_parity(report, base)
