"""Tests for the search-telemetry layer (repro.verisoft.stats)."""

import io

from repro import System
from repro.verisoft import (
    Explorer,
    ProgressPrinter,
    SearchOptions,
    SearchStats,
    run_search,
)
from repro.verisoft.random_walk import random_walks


def toss_system(bound=3):
    system = System(
        f"proc main() {{ var t; t = VS_toss({bound}); send(out, t); }}"
    )
    system.add_env_sink("out")
    system.add_process("p", "main", [])
    return system


def two_proc_system():
    src = """
    proc main(id) {
        send(c, id);
        send(out, id);
    }
    """
    system = System(src)
    system.add_env_sink("out")
    system.add_channel("c", capacity=4)
    system.add_process("p1", "main", [1])
    system.add_process("p2", "main", [2])
    return system


class TestExplorerStats:
    def test_report_carries_stats(self):
        report = Explorer(toss_system()).run()
        stats = report.stats
        assert stats is not None
        assert stats.strategy == "dfs"
        assert stats.states_visited == report.states_visited
        assert stats.transitions_executed == report.transitions_executed
        assert stats.toss_points == report.toss_points
        assert stats.paths_explored == report.paths_explored
        assert stats.max_depth_reached == report.max_depth_reached

    def test_replays_count_backtracking(self):
        report = Explorer(toss_system(bound=3)).run()
        # 4 paths: the first execution is not a replay, the other 3 are.
        assert report.paths_explored == 4
        assert report.stats.replays == 3

    def test_replayed_transitions_counted(self):
        report = Explorer(two_proc_system(), por=False).run()
        assert report.stats.replayed_transitions > 0
        assert report.stats.replay_overhead is not None
        assert 0 < report.stats.replay_overhead < 1

    def test_wall_and_cpu_time_populated(self):
        stats = Explorer(toss_system()).run().stats
        assert stats.wall_time > 0.0
        assert stats.cpu_time >= 0.0
        assert stats.states_per_second > 0.0

    def test_por_reduction_ratio(self):
        # Independent processes: the persistent sets are singletons, so
        # the ratio must show a strict reduction.
        with_por = Explorer(two_proc_system(), por=True).run().stats
        without = Explorer(two_proc_system(), por=False).run().stats
        assert with_por.reduction_ratio is not None
        assert with_por.reduction_ratio < 1.0
        assert without.reduction_ratio == 1.0

    def test_fresh_ratio_none_before_any_state(self):
        assert SearchStats().reduction_ratio is None
        assert SearchStats().replay_overhead is None


class TestRandomWalkStats:
    def test_stats_threaded_through(self):
        report = random_walks(toss_system(), walks=7, seed=1)
        stats = report.stats
        assert stats is not None
        assert stats.strategy == "random"
        assert stats.paths_explored == 7
        assert stats.states_visited == report.states_visited
        assert report.toss_points == 7  # one toss per walk

    def test_time_budget_flags_incomplete(self):
        report = random_walks(toss_system(), walks=10_000, time_budget=0.0)
        assert report.incomplete
        assert report.truncated


class TestProgress:
    def test_progress_callback_invoked(self):
        ticks = []
        run_search(
            toss_system(9),
            SearchOptions(progress=ticks.append, progress_interval=0.0),
        )
        assert ticks
        assert all(isinstance(t, SearchStats) for t in ticks)
        # Monotonic path counts: the callback sees a live object.
        paths = [t.paths_explored for t in ticks]
        assert paths == sorted(paths)

    def test_progress_printer_ticker(self):
        buffer = io.StringIO()
        printer = ProgressPrinter(stream=buffer)
        stats = SearchStats(states_visited=12, paths_explored=3, wall_time=1.0)
        printer(stats)
        printer.finish()
        text = buffer.getvalue()
        assert "states=12" in text
        assert "paths=3" in text
        assert text.endswith("\n")

    def test_printer_finish_idempotent(self):
        buffer = io.StringIO()
        printer = ProgressPrinter(stream=buffer)
        printer.finish()
        assert buffer.getvalue() == ""

    def test_plain_mode_rate_limited(self):
        # StringIO is not a TTY: the printer emits plain newline lines,
        # at most one per plain_interval — except the very first.
        buffer = io.StringIO()
        printer = ProgressPrinter(stream=buffer, plain_interval=3600.0)
        stats = SearchStats(states_visited=1, wall_time=1.0)
        printer(stats)
        printer(stats)
        printer(stats)
        lines = [line for line in buffer.getvalue().splitlines() if line]
        assert len(lines) == 1  # throttled after the first update

    def test_plain_mode_zero_interval_prints_every_tick(self):
        buffer = io.StringIO()
        printer = ProgressPrinter(stream=buffer, plain_interval=0.0)
        stats = SearchStats(states_visited=1, wall_time=1.0)
        printer(stats)
        printer(stats)
        assert buffer.getvalue().count("states=1") == 2

    def test_worker_lines_rendered_below_ticker(self):
        buffer = io.StringIO()
        printer = ProgressPrinter(stream=buffer, plain_interval=0.0)
        printer.worker_lines(["worker 1: busy", "worker 2: idle"])
        printer(SearchStats(states_visited=5, wall_time=1.0))
        ticker, first, second = buffer.getvalue().splitlines()
        assert "states=5" in ticker
        assert first == "  worker 1: busy"
        assert second == "  worker 2: idle"

    def test_warn_gets_own_line(self):
        buffer = io.StringIO()
        printer = ProgressPrinter(stream=buffer)
        printer.warn("worker 7 stalled")
        assert buffer.getvalue() == "warning: worker 7 stalled\n"

    def test_tty_mode_redraws_in_place(self):
        class FakeTty(io.StringIO):
            def isatty(self):
                return True

        buffer = FakeTty()
        printer = ProgressPrinter(stream=buffer)
        stats = SearchStats(states_visited=2, wall_time=1.0)
        printer(stats)
        printer(stats)
        printer.finish()
        text = buffer.getvalue()
        assert "\r\x1b[2K" in text  # erase sequence between redraws
        assert text.endswith("\n")


class TestAggregation:
    def test_merged_sums_counters(self):
        a = SearchStats(states_visited=10, transitions_executed=9, cpu_time=1.0,
                        max_depth_reached=5, sleep_prunes=2)
        b = SearchStats(states_visited=5, transitions_executed=4, cpu_time=0.5,
                        max_depth_reached=8, sleep_prunes=1)
        merged = SearchStats.merged([a, b], strategy="parallel", jobs=2)
        assert merged.states_visited == 15
        assert merged.transitions_executed == 13
        assert merged.cpu_time == 1.5
        assert merged.max_depth_reached == 8
        assert merged.sleep_prunes == 3
        assert merged.strategy == "parallel"
        assert merged.jobs == 2

    def test_describe_and_ticker(self):
        stats = SearchStats(
            states_visited=100,
            enabled_transitions=50,
            persistent_transitions=25,
            wall_time=2.0,
        )
        assert "POR ratio:       0.500" in stats.describe()
        assert "por=0.50" in stats.ticker_line()
        assert "50 states/s" in stats.ticker_line()

    def test_ticker_shows_coverage_and_frontier_gauges(self):
        stats = SearchStats(
            states_visited=10,
            wall_time=1.0,
            coverage_nodes=9,
            coverage_nodes_total=12,
            frontier_pending=4,
        )
        line = stats.ticker_line()
        assert "cov=75%" in line
        assert "pending=4" in line
        # Gauges are absent when unset — the ticker stays compact.
        quiet = SearchStats(states_visited=10, wall_time=1.0).ticker_line()
        assert "cov=" not in quiet and "pending=" not in quiet

    def test_coverage_gauges_not_summed_on_merge(self):
        parts = [
            SearchStats(coverage_nodes=5, coverage_nodes_total=12, frontier_pending=2),
            SearchStats(coverage_nodes=7, coverage_nodes_total=12, frontier_pending=3),
        ]
        merged = SearchStats.merged(parts, strategy="parallel", jobs=2)
        # Worker shards can overlap; the merged gauges are re-derived
        # from the merged collector, never summed across shards.
        assert merged.coverage_nodes == 0
        assert merged.coverage_nodes_total == 0
        assert merged.frontier_pending == 0

    def test_json_dict_derives_coverage_percent(self):
        stats = SearchStats(coverage_nodes=6, coverage_nodes_total=12)
        payload = stats.json_dict()
        assert payload["coverage_percent"] == 50.0
        assert SearchStats().json_dict()["coverage_percent"] is None

    def test_as_dict_roundtrip(self):
        stats = SearchStats(states_visited=3)
        assert stats.as_dict()["states_visited"] == 3
        assert SearchStats(**stats.as_dict()) == stats

    def test_merged_empty_parts(self):
        merged = SearchStats.merged([], strategy="parallel", jobs=4)
        assert merged.states_visited == 0
        assert merged.strategy == "parallel"
        assert merged.jobs == 4

    def test_merged_single_part_is_copy(self):
        part = SearchStats(states_visited=7, max_depth_reached=3)
        merged = SearchStats.merged([part])
        assert merged.states_visited == 7
        merged.states_visited = 99
        assert part.states_visited == 7  # no aliasing

    def test_add_wall_time_not_summed(self):
        # Parallel workers overlap in wall time: add() must not turn
        # N overlapping seconds into N summed seconds (the coordinator
        # overwrites wall_time with its own measurement).
        a = SearchStats(wall_time=2.0, cpu_time=2.0)
        a.add(SearchStats(wall_time=3.0, cpu_time=3.0))
        assert a.wall_time == 2.0
        assert a.cpu_time == 5.0

    def test_add_adopts_cache_mode_only_when_off(self):
        a = SearchStats(state_cache="off")
        a.add(SearchStats(state_cache="exact", cache_hits=4))
        assert a.state_cache == "exact"
        assert a.cache_hits == 4
        # An already-set mode is kept even if parts disagree.
        a.add(SearchStats(state_cache="bitstate", cache_hits=1))
        assert a.state_cache == "exact"
        assert a.cache_hits == 5

    def test_add_keeps_receiver_identity_fields(self):
        a = SearchStats(strategy="parallel", jobs=4, prefixes=8)
        a.add(SearchStats(strategy="dfs", jobs=1, prefixes=0))
        assert a.strategy == "parallel"
        assert a.jobs == 4
        assert a.prefixes == 8
